//! Sequence-comparison workloads from the paper's motivation: sparse LCS for
//! similarity and the GAP recurrence for block-indel alignment of two DNA-like
//! strings (Sec. 3 and Sec. 5.2).
//!
//! Run with `cargo run --release --example dna_alignment -- [n]`.

use parallel_dp::prelude::*;
use parallel_dp::workloads;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    // Two related DNA-like strings (alphabet {A,C,G,T} = 4 symbols).
    let (a, b) = workloads::gap_strings(n, n - n / 20, 4, 7);

    // Sparse LCS similarity.
    let pairs = matching_pairs(&a, &b);
    let lcs = parallel_sparse_lcs(&pairs);
    println!(
        "strings: |A| = {}, |B| = {}, matching pairs L = {}",
        a.len(),
        b.len(),
        pairs.len()
    );
    println!(
        "LCS length = {} ({:.1}% of |B|), cordon rounds = {}",
        lcs.length,
        100.0 * lcs.length as f64 / b.len() as f64,
        lcs.metrics.rounds
    );

    // GAP alignment with a convex (affine + quadratic) block-deletion penalty.
    let small = 600.min(n);
    let inst = convex_gap_instance(&a[..small], &b[..small.min(b.len())], 12, 1, 1);
    let par = parallel_gap(&inst);
    let seq = sequential_gap(&inst);
    assert_eq!(par.cost, seq.cost);
    println!(
        "GAP alignment cost of the first {small} characters = {} (parallel == sequential)",
        par.cost
    );

    // Cross-check the sparse LCS against the dense quadratic DP on a prefix.
    let check = 800.min(a.len()).min(b.len());
    let dense = dense_lcs(&a[..check], &b[..check]);
    let sparse = parallel_lcs_of(&a[..check], &b[..check]);
    assert_eq!(dense.length, sparse.length);
    println!("dense-DP cross-check on a {check}-character prefix: OK");
}
