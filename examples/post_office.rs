//! The paper's running example (Sec. 4): choose post-office locations along a
//! road to minimize opening plus service costs.  Demonstrates the parallel
//! convex GLWS (Algorithm 1), the unconstrained vs fixed-k variants, and the
//! agreement between the parallel, sequential and naive solvers.
//!
//! Run with `cargo run --release --example post_office -- [n] [k]`.

use parallel_dp::prelude::*;
use parallel_dp::workloads;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);

    let inst = workloads::post_office_instance(n, k, 2024);
    let problem = PostOfficeProblem::new(inst.coords.clone(), inst.open_cost);

    let par = parallel_convex_glws(&problem);
    let seq = sequential_convex_glws(&problem);
    assert_eq!(par.d, seq.d, "parallel and sequential must agree");

    println!("villages: {n}, planted clusters: {k}");
    println!("optimal total cost: {}", par.d[n]);
    println!("offices used:       {}", par.decision_depth(n));
    println!(
        "cordon rounds:      {} (equals #offices — Lemma 4.5)",
        par.metrics.rounds
    );
    println!(
        "work proxy:         parallel {} vs sequential {} (near work-efficiency)",
        par.metrics.work_proxy(),
        seq.metrics.work_proxy()
    );

    // Fixed-budget variant (Sec. 5.4): what if we may open only 3 offices?
    let budget = 3usize.min(n);
    let fixed = parallel_kglws(&problem, budget);
    println!(
        "with a budget of {budget} offices the best cost is {} (cluster boundaries {:?}...)",
        fixed.total_cost(),
        &fixed.cluster_boundaries()[..budget.min(4)]
    );

    // Sanity check against the quadratic oracle on a small prefix.
    let small = PostOfficeProblem::new(inst.coords[..500.min(n)].to_vec(), inst.open_cost);
    assert_eq!(parallel_convex_glws(&small).d, naive_glws(&small).d);
    println!("naive-oracle check on a 500-village prefix: OK");
}
