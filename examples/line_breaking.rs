//! Paragraph line breaking (Knuth–Plass) as a convex GLWS instance — one of
//! the classic applications of decision monotonicity cited in Sec. 4.
//!
//! States are word boundaries; a transition j -> i means "put words j+1..=i on
//! one line" and costs the cubed deviation from the target line width.  The
//! convex cost gives decision monotonicity, so the parallel cordon algorithm
//! applies directly.
//!
//! Run with `cargo run --release --example line_breaking`.

use parallel_dp::glws::ClosureCost;
use parallel_dp::prelude::*;

const TEXT: &str = "the idea of dynamic programming proposed by bellman in the fifties is one \
of the most important algorithmic techniques and is covered in classic textbooks and basic \
algorithm classes and is widely used in research and industry across many different fields";

fn main() {
    let width: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(38);
    let words: Vec<&str> = TEXT.split_whitespace().collect();
    let n = words.len();
    // Prefix sums of word lengths so a line's width is O(1) to evaluate.
    let mut pre = vec![0i64; n + 1];
    for (i, w) in words.iter().enumerate() {
        pre[i + 1] = pre[i] + w.len() as i64;
    }
    let line_len = move |j: usize, i: usize| pre[i] - pre[j] + (i - j - 1) as i64;
    // Badness: cubed deviation from the target width (convex in the line span).
    let badness = move |j: usize, i: usize| {
        let dev = (line_len(j, i) - width).abs();
        dev * dev * dev
    };
    let problem = ClosureCost::new(n, 0, badness, |d, _| d);

    let par = parallel_convex_glws(&problem);
    let seq = sequential_convex_glws(&problem);
    assert_eq!(par.d, seq.d);

    // Recover the break points from the best-decision chain.
    let mut breaks = vec![n];
    let mut cur = n;
    while cur != 0 {
        cur = par.best[cur];
        breaks.push(cur);
    }
    breaks.reverse();

    println!("target width {width}, total badness {}", par.d[n]);
    println!("lines ({} cordon rounds):", par.metrics.rounds);
    for pair in breaks.windows(2) {
        let line = words[pair[0]..pair[1]].join(" ");
        println!("  [{:>2}] {line}", line.len());
    }
}
