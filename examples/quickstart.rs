//! Quick tour of the library: one call per headline algorithm.
//!
//! Run with `cargo run --release --example quickstart`.

use parallel_dp::prelude::*;

fn main() {
    // --- LIS (Sec. 3, Theorem 3.1) -----------------------------------------
    let a = vec![7i64, 3, 6, 8, 1, 4, 2, 5];
    let lis = parallel_lis(&a);
    println!(
        "LIS of {a:?} = {} (cordon rounds = {})",
        lis.length, lis.metrics.rounds
    );

    // --- Sparse LCS (Sec. 3, Theorem 3.2) ----------------------------------
    let x = b"the quick brown fox jumps over the lazy dog".to_vec();
    let y = b"the lazy brown dog sleeps under the quick fox".to_vec();
    let lcs = parallel_lcs_of(&x, &y);
    println!(
        "LCS length of the two sentences = {} ({} matching pairs processed)",
        lcs.length,
        lcs.pair_values.len()
    );

    // --- Convex GLWS / post offices (Sec. 4, Algorithm 1) ------------------
    let villages = vec![0, 2, 3, 50, 52, 55, 120, 121, 125, 127];
    let problem = PostOfficeProblem::new(villages, 30);
    let plan = parallel_convex_glws(&problem);
    println!(
        "post-office plan: total cost {} with {} offices ({} cordon rounds)",
        plan.d[problem.n()],
        plan.decision_depth(problem.n()),
        plan.metrics.rounds
    );

    // --- GAP edit distance (Sec. 5.2) ---------------------------------------
    let s1 = b"ACCGTTGACCA".to_vec();
    let s2 = b"ACGTTGAACCA".to_vec();
    let gap = parallel_gap(&convex_gap_instance(&s1, &s2, 4, 1, 1));
    println!("GAP alignment cost of {s1:?} vs {s2:?} = {}", gap.cost);

    // --- Optimal alphabetic tree (Sec. 5.1) ---------------------------------
    let freqs = vec![40u64, 10, 8, 30, 2, 2, 5, 3];
    let oat = garsia_wachs(&freqs);
    println!(
        "optimal alphabetic tree: cost {}, height {} (Lemma 5.1 bound {})",
        oat.cost,
        oat.height,
        oat_height_bound(&freqs)
    );
}
