//! Optimal alphabetic codes: build an order-preserving prefix code for a
//! symbol alphabet from observed frequencies (the OAT application of
//! Sec. 5.1), and compare its cost with the entropy lower bound and with a
//! balanced (depth-⌈log n⌉) code.
//!
//! Run with `cargo run --release --example alphabetic_coding -- [n]`.

use parallel_dp::prelude::*;
use parallel_dp::workloads;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let freqs = workloads::skewed_weights(n, 1 << 16, 8, 3);
    let total: u64 = freqs.iter().sum();

    let oat = garsia_wachs(&freqs);
    assert_eq!(
        oat.cost,
        interval_dp_oat(&freqs),
        "Garsia–Wachs must be optimal"
    );

    let balanced_depth = (n as f64).log2().ceil() as u64;
    let balanced_cost = total * balanced_depth;
    let entropy: f64 = freqs
        .iter()
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum();

    println!("alphabet size {n}, total frequency {total}");
    println!(
        "optimal alphabetic code: {:.4} bits/symbol (tree height {}, bound {})",
        oat.cost as f64 / total as f64,
        oat.height,
        oat_height_bound(&freqs)
    );
    println!(
        "balanced code:           {:.4} bits/symbol",
        balanced_cost as f64 / total as f64
    );
    println!("entropy lower bound:     {entropy:.4} bits/symbol");
    println!(
        "first five code lengths: {:?}",
        &oat.depths[..5.min(oat.depths.len())]
    );
}
