//! The Cordon Algorithm framework (the paper's primary contribution, Sec. 2.3).
//!
//! A dynamic-programming recurrence `D[i] = min/max_j f_{i,j}(D[j])` induces a
//! DP DAG whose vertices are states and whose edges are transitions.  The
//! *Cordon Algorithm* is a phase-parallel schedule for such a DAG:
//!
//! 1. all states start *tentative* with their boundary values;
//! 2. every tentative state tries to relax every other tentative state; each
//!    state that would be improved receives a *sentinel*;
//! 3. a tentative state is *ready* if no sentinel sits on any of its
//!    ancestors (inclusive); the ready states form the round's *frontier*;
//! 4. frontier states are finalized, they relax their descendants, all
//!    sentinels are cleared, and the next round begins.
//!
//! [`explicit`] contains a direct, executable transcription of this schedule
//! for explicitly-given DAGs.  It is not work-efficient (it exists to validate
//! Theorem 2.1 and to serve as a testing oracle); the per-problem crates
//! (`pardp-lis`, `pardp-lcs`, `pardp-glws`, `pardp-gap`, `pardp-oat`,
//! `pardp-treedp`, `pardp-obst`) instantiate the same schedule with
//! problem-specific data structures that make each round cheap, exactly as the
//! paper does.
//!
//! [`doubling`] provides the prefix-doubling cordon search shared by the
//! decision-monotone algorithms (Alg. 1's `FindCordon` skeleton), and
//! [`phase`] the thin phase-parallel driver plus round accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doubling;
pub mod explicit;
pub mod phase;

pub use doubling::{prefix_doubling_cordon, DoublingStats};
pub use explicit::{EdgeWeightedDag, Objective};
pub use phase::{
    run_phase_parallel, try_run_phase_parallel, try_run_phase_parallel_with_budget, EitherCordon,
    FrontierArena, PhaseParallel, StallError, STALL_BUDGET_MSG, STALL_NO_PROGRESS_MSG,
};
