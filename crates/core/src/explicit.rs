//! Reference Cordon Algorithm over explicitly-given DP DAGs.
//!
//! This module is a direct, executable transcription of Sec. 2.3: states,
//! weighted transitions `f_{i,j}(D[j]) = D[j] + w_{j,i}`, sentinels placed on
//! every tentative state that a tentative state can improve, frontier = the
//! tentative states with no sentinel on any ancestor.  It is *not*
//! work-efficient — each round scans every remaining edge and recomputes the
//! blocked set — but it is the most faithful rendering of the framework and it
//! serves three purposes:
//!
//! * it validates Theorem 2.1 (the cordon schedule computes the same DP values
//!   as a topological-order evaluation) on arbitrary DAGs in tests;
//! * it measures the *effective depth* of a DAG (number of cordon rounds),
//!   which the per-problem span bounds are stated in terms of;
//! * it is the oracle the work-efficient algorithms are property-tested
//!   against.

use crate::phase::{run_phase_parallel, FrontierArena, PhaseParallel};
use pardp_parutils::{Metrics, MetricsCollector};
use rayon::prelude::*;

/// Whether the recurrence takes a minimum or a maximum over its decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// `D[i] = min_j D[j] + w(j, i)` (values start at `+inf` unless boundary).
    Minimize,
    /// `D[i] = max_j D[j] + w(j, i)` (values start at `-inf` unless boundary).
    Maximize,
}

impl Objective {
    #[inline]
    fn better(self, candidate: i64, current: i64) -> bool {
        match self {
            Objective::Minimize => candidate < current,
            Objective::Maximize => candidate > current,
        }
    }

    #[inline]
    fn worst(self) -> i64 {
        match self {
            Objective::Minimize => i64::MAX / 4,
            Objective::Maximize => i64::MIN / 4,
        }
    }
}

/// An explicitly-represented DP DAG with additive edge transitions.
#[derive(Debug, Clone)]
pub struct EdgeWeightedDag {
    n: usize,
    objective: Objective,
    /// Boundary value of each state, or `None` for states whose value must be
    /// derived from transitions.
    boundary: Vec<Option<i64>>,
    /// `out_edges[j]` lists `(i, w)` meaning `D[i]` may be updated from
    /// `D[j] + w`.
    out_edges: Vec<Vec<(usize, i64)>>,
    /// `in_deg[i]` = number of incoming transitions.
    in_deg: Vec<usize>,
}

impl EdgeWeightedDag {
    /// Create a DAG with `n` states and no edges.
    pub fn new(n: usize, objective: Objective) -> Self {
        EdgeWeightedDag {
            n,
            objective,
            boundary: vec![None; n],
            out_edges: vec![Vec::new(); n],
            in_deg: vec![0; n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the DAG has no states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Set the boundary (initial) value of state `i`.
    pub fn set_boundary(&mut self, i: usize, value: i64) {
        self.boundary[i] = Some(value);
    }

    /// Add a transition `j -> i` with additive weight `w`.  `j` must precede
    /// `i` in the (integer) topological order, i.e. `j < i`.
    pub fn add_edge(&mut self, j: usize, i: usize, w: i64) {
        assert!(
            j < i,
            "states must be numbered in topological order (j < i)"
        );
        assert!(i < self.n);
        self.out_edges[j].push((i, w));
        self.in_deg[i] += 1;
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Evaluate the recurrence sequentially in topological (index) order.
    ///
    /// States with neither a boundary value nor an incoming edge keep the
    /// objective's worst value.
    pub fn solve_topological(&self) -> Vec<i64> {
        let worst = self.objective.worst();
        let mut d: Vec<i64> = (0..self.n)
            .map(|i| self.boundary[i].unwrap_or(worst))
            .collect();
        for j in 0..self.n {
            if d[j] == worst {
                // Unreachable states do not propagate values.
                continue;
            }
            for &(i, w) in &self.out_edges[j] {
                let cand = d[j] + w;
                if self.objective.better(cand, d[i]) {
                    d[i] = cand;
                }
            }
        }
        d
    }

    /// Evaluate the recurrence with the Cordon Algorithm (Sec. 2.3 steps 1–5),
    /// driven by the shared phase-parallel engine ([`run_phase_parallel`]).
    ///
    /// Returns the DP values together with the per-round frontiers (the round
    /// count is the DAG's effective depth) and the collected metrics.
    pub fn solve_cordon(&self) -> CordonRun {
        let metrics = MetricsCollector::new();
        let (values, frontiers) = run_phase_parallel(ExplicitCordon::new(self), &metrics);
        CordonRun {
            values,
            frontiers,
            metrics: metrics.snapshot(),
        }
    }
}

/// [`PhaseParallel`] instance for the reference Cordon Algorithm on an
/// explicit DAG: one `round()` is one full sentinel/blocked/relax/finalize
/// cycle of Sec. 2.3.
pub struct ExplicitCordon<'a> {
    dag: &'a EdgeWeightedDag,
    d: Vec<i64>,
    finalized: Vec<bool>,
    frontiers: Vec<Vec<usize>>,
    remaining: usize,
    /// Reused sentinel/blocked scratch (one flag per state, cleared per round).
    marks: Vec<bool>,
}

impl<'a> ExplicitCordon<'a> {
    /// Step 1: every state starts tentative with its boundary value.
    pub fn new(dag: &'a EdgeWeightedDag) -> Self {
        let worst = dag.objective.worst();
        let d: Vec<i64> = (0..dag.n)
            .map(|i| dag.boundary[i].unwrap_or(worst))
            .collect();
        ExplicitCordon {
            dag,
            d,
            finalized: vec![false; dag.n],
            frontiers: Vec::new(),
            remaining: dag.n,
            marks: vec![false; dag.n],
        }
    }
}

impl PhaseParallel for ExplicitCordon<'_> {
    /// Final DP values plus the per-round frontiers.
    type Output = (Vec<i64>, Vec<Vec<usize>>);

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        // Standalone rounds (outside the driver) get a throwaway arena.
        let mut arena = FrontierArena::new();
        self.round_with(metrics, &mut arena)
    }

    fn round_with(&mut self, metrics: &MetricsCollector, arena: &mut FrontierArena) -> usize {
        let dag = self.dag;
        let worst = dag.objective.worst();

        // Step 2: place sentinels.  A tentative state j places a sentinel on a
        // tentative state i if relaxing i through j would improve i's
        // tentative value.  (States that still hold the `worst` value cannot
        // relax anyone — they have not received any value yet.)  The flag
        // buffer is round-to-round scratch, reused without reallocation.
        let mut sentinel = std::mem::take(&mut self.marks);
        sentinel.clear();
        sentinel.resize(dag.n, false);
        let mut edge_count = 0u64;
        for j in 0..dag.n {
            if self.finalized[j] || self.d[j] == worst {
                continue;
            }
            for &(i, w) in &dag.out_edges[j] {
                if self.finalized[i] {
                    continue;
                }
                edge_count += 1;
                if dag.objective.better(self.d[j] + w, self.d[i]) {
                    sentinel[i] = true;
                }
            }
        }
        metrics.add_edges(edge_count);

        // A sentinel blocks the state it sits on and all its descendants.
        let mut blocked = sentinel;
        for j in 0..dag.n {
            if self.finalized[j] {
                continue;
            }
            if blocked[j] {
                for &(i, _) in &dag.out_edges[j] {
                    if !self.finalized[i] {
                        blocked[i] = true;
                    }
                }
            }
        }

        // Ready states: tentative and not blocked, staged in the driver's
        // reusable arena buffer.  An empty frontier is reported to the
        // driver, whose stall guard rejects it.
        let frontier = arena.next_mut();
        frontier.extend((0..dag.n).filter(|&i| !self.finalized[i] && !blocked[i]));
        self.marks = blocked;
        if frontier.is_empty() {
            return 0;
        }
        let frontier: &[usize] = frontier;

        // Step 3: ready states relax their descendants.
        let d_ref = &self.d;
        let finalized_ref = &self.finalized;
        let updates: Vec<(usize, i64)> = frontier
            .par_iter()
            .filter(|&&j| d_ref[j] != worst)
            .flat_map_iter(|&j| {
                dag.out_edges[j]
                    .iter()
                    .filter(|&&(i, _)| !finalized_ref[i])
                    .map(move |&(i, w)| (i, d_ref[j] + w))
            })
            // analyze: allow(hot-round-alloc): the reference DAG engine's
            // per-round update list is inherent to its formulation (updates
            // are applied serially after the parallel scan); the tuned
            // instantiations, not this baseline, carry the zero-alloc
            // contract.
            .collect();
        metrics.add_edges(updates.len() as u64);
        for (i, cand) in updates {
            if dag.objective.better(cand, self.d[i]) {
                self.d[i] = cand;
            }
        }

        // Step 4: finalize the frontier (sentinels are recomputed from scratch
        // next round).
        for &i in frontier {
            self.finalized[i] = true;
        }
        self.remaining -= frontier.len();
        let size = frontier.len();
        // The per-round frontier log is part of this instance's output, so
        // the copy out of the arena is inherent.
        // analyze: allow(hot-round-alloc): see above — the arena slice dies
        // at round end, but the log must own its rounds.
        self.frontiers.push(frontier.to_vec());
        size
    }

    fn finish(self) -> Self::Output {
        (self.d, self.frontiers)
    }

    fn round_budget(&self) -> Option<u64> {
        // At least one state is finalized per round.
        Some(self.dag.n as u64)
    }
}

/// Result of running the reference Cordon Algorithm on an explicit DAG.
#[derive(Debug, Clone)]
pub struct CordonRun {
    /// Final DP values.
    pub values: Vec<i64>,
    /// The frontier (set of states finalized) of each round, in order.
    pub frontiers: Vec<Vec<usize>>,
    /// Work/round counters.
    pub metrics: Metrics,
}

impl CordonRun {
    /// Number of cordon rounds, i.e. the effective depth of the schedule.
    pub fn rounds(&self) -> usize {
        self.frontiers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the LIS DAG of an input sequence: state i has boundary 1 and an
    /// edge from every j < i with a[j] < a[i] of weight 1 (Recurrence 2).
    fn lis_dag(a: &[i64]) -> EdgeWeightedDag {
        let mut dag = EdgeWeightedDag::new(a.len(), Objective::Maximize);
        for i in 0..a.len() {
            dag.set_boundary(i, 1);
            for j in 0..i {
                if a[j] < a[i] {
                    dag.add_edge(j, i, 1);
                }
            }
        }
        dag
    }

    #[test]
    fn cordon_matches_topological_on_paper_example() {
        let a = [7i64, 3, 6, 8, 1, 4, 2, 5];
        let dag = lis_dag(&a);
        let topo = dag.solve_topological();
        let run = dag.solve_cordon();
        assert_eq!(run.values, topo);
        // DP values from Fig. 2(a): 1 1 2 3 1 2 2 3.
        assert_eq!(run.values, vec![1, 1, 2, 3, 1, 2, 2, 3]);
        // The cordon finishes in LIS-length rounds (= 3 here).
        assert_eq!(run.rounds(), 3);
    }

    #[test]
    fn chain_dag_has_linear_depth() {
        // A path 0 -> 1 -> ... -> n-1: every round finalizes exactly one state.
        let n = 16;
        let mut dag = EdgeWeightedDag::new(n, Objective::Minimize);
        dag.set_boundary(0, 0);
        for i in 1..n {
            dag.add_edge(i - 1, i, 1);
        }
        let run = dag.solve_cordon();
        assert_eq!(run.values, (0..n as i64).collect::<Vec<_>>());
        assert_eq!(run.rounds(), n);
        for (r, f) in run.frontiers.iter().enumerate() {
            assert_eq!(f, &vec![r]);
        }
    }

    #[test]
    fn independent_states_finish_in_one_round() {
        let n = 10;
        let mut dag = EdgeWeightedDag::new(n, Objective::Minimize);
        for i in 0..n {
            dag.set_boundary(i, i as i64);
        }
        let run = dag.solve_cordon();
        assert_eq!(run.rounds(), 1);
        assert_eq!(run.values, (0..n as i64).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_min_paths() {
        // 0 -> {1,2} -> 3 with asymmetric weights; shortest path DP.
        let mut dag = EdgeWeightedDag::new(4, Objective::Minimize);
        dag.set_boundary(0, 0);
        dag.add_edge(0, 1, 5);
        dag.add_edge(0, 2, 1);
        dag.add_edge(1, 3, 1);
        dag.add_edge(2, 3, 10);
        let topo = dag.solve_topological();
        let run = dag.solve_cordon();
        assert_eq!(run.values, topo);
        assert_eq!(run.values[3], 6);
        // 1 and 2 are both ready after round 1, 3 after round 2... but note 3
        // depends on both so it needs max over the frontier rounds of its
        // decisions + 1 = 3 rounds total? Actually 0 finalizes in round 1,
        // {1,2} in round 2, {3} in round 3.
        assert_eq!(run.rounds(), 3);
    }

    #[test]
    fn random_dags_cordon_equals_topological() {
        // Pseudo-random layered DAGs, both objectives.
        for seed in 0..6u64 {
            for &obj in &[Objective::Minimize, Objective::Maximize] {
                let n = 40;
                let mut dag = EdgeWeightedDag::new(n, obj);
                let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                dag.set_boundary(0, 0);
                for i in 1..n {
                    if next() % 4 == 0 {
                        dag.set_boundary(i, (next() % 20) as i64);
                    }
                    // Random back edges.
                    for j in 0..i {
                        if next() % 5 == 0 {
                            dag.add_edge(j, i, (next() % 15) as i64 - 5);
                        }
                    }
                }
                let topo = dag.solve_topological();
                let run = dag.solve_cordon();
                assert_eq!(run.values, topo, "seed {seed}, objective {obj:?}");
                assert!(run.rounds() <= n);
            }
        }
    }

    #[test]
    fn metrics_are_populated() {
        let a = [3i64, 1, 4, 1, 5, 9, 2, 6];
        let run = lis_dag(&a).solve_cordon();
        assert_eq!(run.metrics.rounds as usize, run.rounds());
        assert_eq!(run.metrics.states_finalized as usize, a.len());
        assert!(run.metrics.edges_relaxed > 0);
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn rejects_non_topological_edges() {
        let mut dag = EdgeWeightedDag::new(3, Objective::Minimize);
        dag.add_edge(2, 1, 0);
    }
}
