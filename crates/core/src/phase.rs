//! Phase-parallel driver.
//!
//! The phase-parallel framework (Shen et al. [81], adapted to DP in Sec. 2.3)
//! repeatedly identifies a frontier of mutually independent operations and
//! processes it in parallel.  The driver below is deliberately thin: the whole
//! difficulty of the paper lies in making `round()` cheap for each concrete
//! problem, and that logic lives in the problem crates.  Centralizing the loop
//! here gives every algorithm identical round accounting and a single place to
//! guard against non-termination.

use pardp_parutils::MetricsCollector;

/// A problem instance that can be advanced one cordon round at a time.
pub trait PhaseParallel {
    /// Final result produced once all states are finalized.
    type Output;

    /// Whether every state has been finalized.
    fn is_done(&self) -> bool;

    /// Execute one cordon round: identify the frontier, finalize it, update
    /// the auxiliary structures.  Returns the number of states finalized in
    /// this round (the frontier size), which must be positive while
    /// [`PhaseParallel::is_done`] is false.
    fn round(&mut self) -> usize;

    /// Consume the instance and return the output.
    fn finish(self) -> Self::Output;
}

/// Run `instance` to completion, recording rounds and frontier sizes in
/// `metrics`.
///
/// # Panics
///
/// Panics if a round finalizes zero states while the instance reports it is
/// not done — that would mean the cordon failed to make progress, which the
/// correctness proof of Theorem 2.1 rules out for well-formed instances, so we
/// surface it loudly instead of looping forever.
pub fn run_phase_parallel<P: PhaseParallel>(
    mut instance: P,
    metrics: &MetricsCollector,
) -> P::Output {
    while !instance.is_done() {
        let frontier = instance.round();
        assert!(
            frontier > 0,
            "cordon round made no progress; the instance violates the framework's preconditions"
        );
        metrics.add_round();
        metrics.add_states(frontier as u64);
    }
    instance.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardp_parutils::MetricsCollector;

    /// Toy instance: counts down `remaining` in frontier chunks of `step`.
    struct Countdown {
        remaining: usize,
        step: usize,
        finalized: usize,
    }

    impl PhaseParallel for Countdown {
        type Output = usize;
        fn is_done(&self) -> bool {
            self.remaining == 0
        }
        fn round(&mut self) -> usize {
            let f = self.step.min(self.remaining);
            self.remaining -= f;
            self.finalized += f;
            f
        }
        fn finish(self) -> usize {
            self.finalized
        }
    }

    #[test]
    fn runs_until_done_and_counts_rounds() {
        let metrics = MetricsCollector::new();
        let out = run_phase_parallel(
            Countdown {
                remaining: 10,
                step: 3,
                finalized: 0,
            },
            &metrics,
        );
        assert_eq!(out, 10);
        let m = metrics.snapshot();
        assert_eq!(m.rounds, 4); // 3 + 3 + 3 + 1
        assert_eq!(m.states_finalized, 10);
    }

    #[test]
    fn empty_instance_runs_zero_rounds() {
        let metrics = MetricsCollector::new();
        let out = run_phase_parallel(
            Countdown {
                remaining: 0,
                step: 5,
                finalized: 0,
            },
            &metrics,
        );
        assert_eq!(out, 0);
        assert_eq!(metrics.snapshot().rounds, 0);
    }

    struct Stuck;
    impl PhaseParallel for Stuck {
        type Output = ();
        fn is_done(&self) -> bool {
            false
        }
        fn round(&mut self) -> usize {
            0
        }
        fn finish(self) {}
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn stalled_instance_panics() {
        let metrics = MetricsCollector::new();
        run_phase_parallel(Stuck, &metrics);
    }
}
