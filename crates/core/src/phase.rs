//! Phase-parallel driver.
//!
//! The phase-parallel framework (Shen et al. [81], adapted to DP in Sec. 2.3)
//! repeatedly identifies a frontier of mutually independent operations and
//! processes it in parallel.  The driver below is deliberately thin: the whole
//! difficulty of the paper lies in making `round()` cheap for each concrete
//! problem, and that logic lives in the problem crates.  Centralizing the loop
//! here gives every algorithm identical round accounting — one
//! [`MetricsCollector::record_round`] per round, which also logs the frontier
//! size — and a single place to guard against non-termination:
//!
//! * a **progress guard**: a round that finalizes zero states while the
//!   instance is not done is a [`StallError::NoProgress`];
//! * a **round-budget guard**: every instance knows an upper bound on its
//!   round count (at most one round per state, and usually much tighter, e.g.
//!   `k` for k-GLWS); exceeding it is a [`StallError::BudgetExhausted`] even
//!   if each round technically made progress.
//!
//! [`run_phase_parallel`] panics on a stall (the historical behaviour, now
//! with a typed message constant); [`try_run_phase_parallel`] returns the
//! error for callers that want to handle it.

use pardp_parutils::{with_grain_policy, GrainPolicy, MetricsCollector};

/// Reusable double-buffered frontier storage owned by the phase-parallel
/// driver.
///
/// Cordon instances that build an explicit frontier each round historically
/// allocated a fresh `Vec` per round.  The driver now owns one arena per run
/// and threads it through [`PhaseParallel::round_with`]; instances that opt in
/// build the next frontier in [`FrontierArena::next_mut`], call
/// [`FrontierArena::swap`], and read the current frontier from
/// [`FrontierArena::current`].  Buffers are `clear()`-ed, never shrunk, so
/// after the first few rounds reach the high-water mark the driver loop
/// performs zero heap allocation per round (asserted by the counting-allocator
/// test in `tests/alloc_counting.rs`).
///
/// Two index buffers cover the frontier itself; [`FrontierArena::values_mut`]
/// is a general `i64` scratch for per-round DP rows (OBST diagonals, GAP row
/// segments) via `collect_into_vec`.
#[derive(Debug, Default)]
pub struct FrontierArena {
    current: Vec<usize>,
    next: Vec<usize>,
    values: Vec<i64>,
    pairs: Vec<(u64, u64)>,
}

impl FrontierArena {
    /// Empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The frontier finalized by the previous [`FrontierArena::swap`].
    pub fn current(&self) -> &[usize] {
        &self.current
    }

    /// Cleared buffer for building the next frontier (capacity retained).
    pub fn next_mut(&mut self) -> &mut Vec<usize> {
        self.next.clear();
        &mut self.next
    }

    /// Borrow both frontier buffers at once: the current (read) frontier and
    /// the cleared next (write) buffer.
    pub fn buffers(&mut self) -> (&[usize], &mut Vec<usize>) {
        self.next.clear();
        (&self.current, &mut self.next)
    }

    /// Promote the next frontier to current.  The old current buffer becomes
    /// the next round's write buffer without deallocating.
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.current, &mut self.next);
    }

    /// Cleared `i64` scratch row (capacity retained), for `collect_into_vec`.
    pub fn values_mut(&mut self) -> &mut Vec<i64> {
        self.values.clear();
        &mut self.values
    }

    /// Cleared `(u64, u64)` scratch row (capacity retained), for rounds that
    /// stage two packed words per frontier element via `collect_into_vec` —
    /// e.g. the HLD Tree-GLWS settle phase stages each node's prepared
    /// envelope push here before committing them in order.
    pub fn pairs_mut(&mut self) -> &mut Vec<(u64, u64)> {
        self.pairs.clear();
        &mut self.pairs
    }

    /// Drop all contents but keep every buffer's capacity.
    pub fn clear(&mut self) {
        self.current.clear();
        self.next.clear();
        self.values.clear();
        self.pairs.clear();
    }
}

/// Panic/format prefix used when a cordon round makes no progress.  Exposed as
/// a constant so tests and callers match on the type's message rather than a
/// hand-copied string.
pub const STALL_NO_PROGRESS_MSG: &str =
    "cordon round made no progress; the instance violates the framework's preconditions";

/// Panic/format prefix used when the round budget is exhausted.
pub const STALL_BUDGET_MSG: &str =
    "cordon exceeded its round budget; the instance violates its own span bound";

/// Why a phase-parallel run failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallError {
    /// A round finalized zero states while the instance reported it was not
    /// done.  Theorem 2.1 rules this out for well-formed instances.
    NoProgress {
        /// Rounds successfully executed before the stall.
        rounds_completed: u64,
    },
    /// The instance executed more rounds than its declared
    /// [`PhaseParallel::round_budget`] (or the caller-supplied override).
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
        /// States finalized before the run was aborted.
        states_finalized: u64,
    },
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallError::NoProgress { rounds_completed } => write!(
                f,
                "{STALL_NO_PROGRESS_MSG} (after {rounds_completed} completed rounds)"
            ),
            StallError::BudgetExhausted {
                budget,
                states_finalized,
            } => write!(
                f,
                "{STALL_BUDGET_MSG} (budget {budget}, {states_finalized} states finalized)"
            ),
        }
    }
}

impl std::error::Error for StallError {}

/// A problem instance that can be advanced one cordon round at a time.
///
/// Implementations exist in every problem crate (`LisCordon`, `LcsCordon`,
/// `ConvexGlwsCordon`, `ConcaveGlwsCordon`, `KGlwsCordon`, `GapCordon`,
/// `TreeGlwsCordon` and its work-efficient sibling `HldTreeGlwsCordon`,
/// `ObstCordon`, and `core::explicit`'s reference instance); the facade's
/// `CordonSolver` runs any of them through this one driver.
pub trait PhaseParallel {
    /// Final result produced once all states are finalized.
    type Output;

    /// Whether every state has been finalized.
    fn is_done(&self) -> bool;

    /// Execute one cordon round: identify the frontier, finalize it, update
    /// the auxiliary structures.  Returns the number of states finalized in
    /// this round (the frontier size), which must be positive while
    /// [`PhaseParallel::is_done`] is false.
    ///
    /// Fine-grained work counters (edges, probes, wasted states) should be
    /// recorded on `metrics`; round/state/frontier accounting is the driver's
    /// job and must *not* be duplicated here.
    fn round(&mut self, metrics: &MetricsCollector) -> usize;

    /// Like [`PhaseParallel::round`], with access to the driver's reusable
    /// [`FrontierArena`].  Instances whose rounds build explicit frontiers or
    /// per-round DP rows override this to stage them in the arena's buffers
    /// instead of allocating; the default simply delegates to `round`.
    fn round_with(&mut self, metrics: &MetricsCollector, arena: &mut FrontierArena) -> usize {
        let _ = arena;
        self.round(metrics)
    }

    /// Consume the instance and return the output.
    fn finish(self) -> Self::Output;

    /// Upper bound on the number of rounds this instance may execute, used by
    /// the driver's stall guard.  Every cordon instance finalizes at least one
    /// state per round, so the number of remaining states is always a valid
    /// bound; problem crates override this with their theorem-level bounds
    /// (LIS length ≤ n, k layers for k-GLWS, n − 1 diagonals for OBST, ...).
    /// `None` disables the budget guard.
    fn round_budget(&self) -> Option<u64> {
        None
    }
}

/// Run-time choice between two [`PhaseParallel`] implementations with the
/// same output type, itself a [`PhaseParallel`] instance.
///
/// Routers that pick a cordon per instance — e.g. the shape-adaptive
/// Tree-GLWS router, which probes the tree and chooses between the
/// `O(n·h)` baseline cordon and the heavy-light envelope cordon — return
/// this combinator so the choice stays a value the caller can hand to any
/// driver (`run_phase_parallel`, the facade's `CordonSolver`, budget-guarded
/// variants) without boxing or dynamic dispatch.
#[derive(Debug)]
pub enum EitherCordon<A, B> {
    /// The first alternative.
    First(A),
    /// The second alternative.
    Second(B),
}

impl<A, B> PhaseParallel for EitherCordon<A, B>
where
    A: PhaseParallel,
    B: PhaseParallel<Output = A::Output>,
{
    type Output = A::Output;

    fn is_done(&self) -> bool {
        match self {
            EitherCordon::First(a) => a.is_done(),
            EitherCordon::Second(b) => b.is_done(),
        }
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        match self {
            EitherCordon::First(a) => a.round(metrics),
            EitherCordon::Second(b) => b.round(metrics),
        }
    }

    fn round_with(&mut self, metrics: &MetricsCollector, arena: &mut FrontierArena) -> usize {
        match self {
            EitherCordon::First(a) => a.round_with(metrics, arena),
            EitherCordon::Second(b) => b.round_with(metrics, arena),
        }
    }

    fn finish(self) -> Self::Output {
        match self {
            EitherCordon::First(a) => a.finish(),
            EitherCordon::Second(b) => b.finish(),
        }
    }

    fn round_budget(&self) -> Option<u64> {
        match self {
            EitherCordon::First(a) => a.round_budget(),
            EitherCordon::Second(b) => b.round_budget(),
        }
    }
}

/// Run `instance` to completion, recording rounds and frontier sizes in
/// `metrics`.
///
/// # Panics
///
/// Panics with [`STALL_NO_PROGRESS_MSG`] if a round finalizes zero states
/// while the instance reports it is not done, and with [`STALL_BUDGET_MSG`] if
/// the instance exceeds its [`PhaseParallel::round_budget`] — both would mean
/// the cordon failed to make progress, which the correctness proof of
/// Theorem 2.1 rules out for well-formed instances, so we surface it loudly
/// instead of looping forever.
pub fn run_phase_parallel<P: PhaseParallel>(instance: P, metrics: &MetricsCollector) -> P::Output {
    match try_run_phase_parallel(instance, metrics) {
        Ok(output) => output,
        // analyze: allow(no-panics): documented panicking facade over the
        // typed `try_run_phase_parallel` — a stall is a broken instance
        // contract, not a recoverable condition (see the `# Panics` docs).
        Err(err) => panic!("{err}"),
    }
}

/// Like [`run_phase_parallel`] but returns a typed [`StallError`] instead of
/// panicking, using the instance's own [`PhaseParallel::round_budget`].
pub fn try_run_phase_parallel<P: PhaseParallel>(
    instance: P,
    metrics: &MetricsCollector,
) -> Result<P::Output, StallError> {
    try_run_phase_parallel_with_budget(instance, metrics, None)
}

/// Like [`try_run_phase_parallel`] with an additional caller-supplied round
/// budget; the effective budget is the tighter of the override and the
/// instance's own hint.
pub fn try_run_phase_parallel_with_budget<P: PhaseParallel>(
    mut instance: P,
    metrics: &MetricsCollector,
    budget_override: Option<u64>,
) -> Result<P::Output, StallError> {
    let budget = match (budget_override, instance.round_budget()) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    if let Some(budget) = budget {
        // Pre-size the frontier log so `record_round` never allocates inside
        // the round loop.
        metrics.reserve_rounds(budget as usize);
    }
    let mut policy = GrainPolicy::new();
    let mut arena = FrontierArena::new();
    let mut rounds: u64 = 0;
    let mut states: u64 = 0;
    while !instance.is_done() {
        if let Some(budget) = budget {
            if rounds >= budget {
                return Err(StallError::BudgetExhausted {
                    budget,
                    states_finalized: states,
                });
            }
        }
        let frontier = with_grain_policy(&policy, || instance.round_with(metrics, &mut arena));
        if frontier == 0 {
            return Err(StallError::NoProgress {
                rounds_completed: rounds,
            });
        }
        policy.observe(frontier as u64);
        rounds += 1;
        states += frontier as u64;
        metrics.record_round(frontier as u64);
    }
    Ok(instance.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardp_parutils::MetricsCollector;

    /// Toy instance: counts down `remaining` in frontier chunks of `step`.
    struct Countdown {
        remaining: usize,
        step: usize,
        finalized: usize,
    }

    impl PhaseParallel for Countdown {
        type Output = usize;
        fn is_done(&self) -> bool {
            self.remaining == 0
        }
        fn round(&mut self, _metrics: &MetricsCollector) -> usize {
            let f = self.step.min(self.remaining);
            self.remaining -= f;
            self.finalized += f;
            f
        }
        fn finish(self) -> usize {
            self.finalized
        }
        fn round_budget(&self) -> Option<u64> {
            Some(self.remaining as u64)
        }
    }

    #[test]
    fn runs_until_done_and_counts_rounds() {
        let metrics = MetricsCollector::new();
        let out = run_phase_parallel(
            Countdown {
                remaining: 10,
                step: 3,
                finalized: 0,
            },
            &metrics,
        );
        assert_eq!(out, 10);
        let m = metrics.snapshot();
        assert_eq!(m.rounds, 4); // 3 + 3 + 3 + 1
        assert_eq!(m.states_finalized, 10);
        assert_eq!(m.frontier_sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn empty_instance_runs_zero_rounds() {
        let metrics = MetricsCollector::new();
        let out = run_phase_parallel(
            Countdown {
                remaining: 0,
                step: 5,
                finalized: 0,
            },
            &metrics,
        );
        assert_eq!(out, 0);
        assert_eq!(metrics.snapshot().rounds, 0);
        assert!(metrics.snapshot().frontier_sizes.is_empty());
    }

    struct Stuck;
    impl PhaseParallel for Stuck {
        type Output = ();
        fn is_done(&self) -> bool {
            false
        }
        fn round(&mut self, _metrics: &MetricsCollector) -> usize {
            0
        }
        fn finish(self) {}
    }

    #[test]
    fn stalled_instance_returns_typed_error() {
        let metrics = MetricsCollector::new();
        let err = try_run_phase_parallel(Stuck, &metrics).unwrap_err();
        assert_eq!(
            err,
            StallError::NoProgress {
                rounds_completed: 0
            }
        );
        assert!(err.to_string().contains(STALL_NO_PROGRESS_MSG));
    }

    #[test]
    fn stalled_instance_panics_with_the_message_constant() {
        let metrics = MetricsCollector::new();
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_phase_parallel(Stuck, &metrics)
        }))
        .unwrap_err();
        let message = panic
            .downcast_ref::<String>()
            .expect("panic payload should be the formatted StallError");
        assert!(
            message.contains(STALL_NO_PROGRESS_MSG),
            "panic message {message:?} must embed the typed constant"
        );
    }

    /// Claims progress every round but never finishes: caught by the budget.
    struct Spinner;
    impl PhaseParallel for Spinner {
        type Output = ();
        fn is_done(&self) -> bool {
            false
        }
        fn round(&mut self, _metrics: &MetricsCollector) -> usize {
            1
        }
        fn finish(self) {}
        fn round_budget(&self) -> Option<u64> {
            Some(16)
        }
    }

    #[test]
    fn round_budget_stops_a_spinner() {
        let metrics = MetricsCollector::new();
        let err = try_run_phase_parallel(Spinner, &metrics).unwrap_err();
        assert_eq!(
            err,
            StallError::BudgetExhausted {
                budget: 16,
                states_finalized: 16
            }
        );
        assert!(err.to_string().contains(STALL_BUDGET_MSG));
    }

    #[test]
    fn caller_budget_override_tightens_the_instance_hint() {
        let metrics = MetricsCollector::new();
        let err = try_run_phase_parallel_with_budget(Spinner, &metrics, Some(4)).unwrap_err();
        assert_eq!(
            err,
            StallError::BudgetExhausted {
                budget: 4,
                states_finalized: 4
            }
        );
        // A loose override keeps the instance's own (tighter) budget.
        let metrics = MetricsCollector::new();
        let err = try_run_phase_parallel_with_budget(Spinner, &metrics, Some(1000)).unwrap_err();
        assert_eq!(
            err,
            StallError::BudgetExhausted {
                budget: 16,
                states_finalized: 16
            }
        );
    }

    /// Builds each round's frontier in the driver's arena and checks the
    /// double-buffering contract: what was written to `next` last round is
    /// readable as `current` this round, and capacities are retained.
    struct ArenaUser {
        remaining: usize,
        cap_high_water: usize,
    }

    impl PhaseParallel for ArenaUser {
        type Output = usize;
        fn is_done(&self) -> bool {
            self.remaining == 0
        }
        fn round(&mut self, _metrics: &MetricsCollector) -> usize {
            unreachable!("the driver must call round_with, not round")
        }
        fn round_with(&mut self, _metrics: &MetricsCollector, arena: &mut FrontierArena) -> usize {
            let (current, next) = arena.buffers();
            assert_eq!(
                current.len(),
                self.remaining.min(3),
                "current frontier is last round's next"
            );
            let f = self.remaining.min(3);
            self.remaining -= f;
            next.extend(0..self.remaining.min(3));
            self.cap_high_water = self.cap_high_water.max(next.capacity());
            assert!(
                next.capacity() >= self.cap_high_water || self.remaining == 0,
                "arena buffers must never shrink"
            );
            arena.swap();
            f
        }
        fn finish(self) -> usize {
            self.remaining
        }
        fn round_budget(&self) -> Option<u64> {
            Some(self.remaining as u64)
        }
    }

    #[test]
    fn driver_threads_the_arena_through_round_with() {
        let metrics = MetricsCollector::new();
        let mut arena = FrontierArena::new();
        arena.next_mut().extend(0..3); // seed the first round's frontier
        arena.swap();
        // The driver builds its own arena, so drive manually-seeded state via
        // the default path: a fresh instance whose first round expects an
        // empty current frontier.
        let out = run_phase_parallel(
            ArenaUser {
                remaining: 0,
                cap_high_water: 0,
            },
            &metrics,
        );
        assert_eq!(out, 0);

        // Full run: 10 states in frontiers of ≤ 3; first round sees an empty
        // current buffer (nothing swapped in yet), later rounds see what the
        // previous round staged.
        let metrics = MetricsCollector::new();
        let mut instance = ArenaUser {
            remaining: 10,
            cap_high_water: 0,
        };
        let mut arena = FrontierArena::new();
        arena.next_mut().extend(0..3);
        arena.swap();
        let mut total = 0;
        while !instance.is_done() {
            total += instance.round_with(&metrics, &mut arena);
        }
        assert_eq!(total, 10);
        assert!(instance.cap_high_water >= 3);
    }

    #[test]
    fn arena_clear_retains_capacity() {
        let mut arena = FrontierArena::new();
        arena.next_mut().extend(0..1024);
        arena.values_mut().extend(0..1024);
        arena.swap(); // big buffer now in `current`
        arena.swap(); // ... and back in `next`
        arena.clear();
        assert!(arena.current().is_empty());
        assert!(arena.next_mut().capacity() >= 1024);
        assert!(arena.values_mut().capacity() >= 1024);
    }

    #[test]
    fn budget_equal_to_needed_rounds_succeeds() {
        let metrics = MetricsCollector::new();
        let out = try_run_phase_parallel_with_budget(
            Countdown {
                remaining: 9,
                step: 3,
                finalized: 0,
            },
            &metrics,
            Some(3),
        );
        assert_eq!(out, Ok(9));
    }
}
