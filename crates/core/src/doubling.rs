//! Prefix-doubling cordon search (the `FindCordon` skeleton of Alg. 1).
//!
//! The decision-monotone algorithms (convex/concave GLWS, GAP, Tree-GLWS)
//! cannot afford to test every tentative state for readiness: most of them are
//! far beyond the cordon.  The paper's fix (Sec. 4.2.1) is *prefix doubling*:
//! probe batches of geometrically growing size `2^{t-1}` starting right after
//! the last finalized state, stop as soon as the best sentinel found so far
//! falls inside (or immediately after) the probed region.  The number of
//! probed-but-unready states is then at most the number of states finalized in
//! the round, so the waste amortizes to `O(n)` over the whole run.

/// Statistics reported by one [`prefix_doubling_cordon`] invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoublingStats {
    /// Number of doubling sub-steps executed.
    pub substeps: usize,
    /// Total number of states probed across all sub-steps.
    pub probed: usize,
    /// Number of probed states at or beyond the returned cordon (the "wasted"
    /// probes the amortization argument charges to this round).
    pub wasted: usize,
}

/// Find the cordon position after `now` using prefix doubling.
///
/// States are indexed `1..=n`; `now` is the last finalized state (`0` before
/// the first round).  `probe_batch(l, r)` must examine the tentative states
/// `l..=r` and return the smallest sentinel position any of them produces
/// (i.e. the smallest state index that one of them can successfully relax), or
/// `None` if the batch produces no sentinel.  Sentinel positions may lie
/// beyond `r`.
///
/// Returns `(cordon, stats)` where `cordon` is the smallest sentinel position
/// found overall, or `n + 1` when no tentative state can relax any other —
/// in that case every remaining state is ready.
pub fn prefix_doubling_cordon<F>(now: usize, n: usize, mut probe_batch: F) -> (usize, DoublingStats)
where
    F: FnMut(usize, usize) -> Option<usize>,
{
    let mut cordon = n + 1;
    let mut stats = DoublingStats::default();
    let mut width = 1usize;
    let mut l = now + 1;
    while l <= n {
        let r = (l + width - 1).min(n).min(cordon.saturating_sub(1));
        if r < l {
            break;
        }
        stats.substeps += 1;
        stats.probed += r - l + 1;
        if let Some(sentinel) = probe_batch(l, r) {
            debug_assert!(
                sentinel > now,
                "a sentinel can only be placed on a tentative state"
            );
            cordon = cordon.min(sentinel);
        }
        // Stop once the cordon lies within or immediately after the probed
        // prefix: everything in [now+1, cordon-1] has been probed and is ready.
        if cordon <= r + 1 {
            break;
        }
        l = r + 1;
        width *= 2;
    }
    // Probes at or beyond the cordon were wasted; the doubling schedule keeps
    // this below the number of useful probes.
    stats.wasted = stats
        .probed
        .saturating_sub(cordon.saturating_sub(now + 1).min(stats.probed));
    (cordon, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle model: state `i` places a sentinel on `sentinel_of[i]` (or none).
    fn run_model(now: usize, n: usize, sentinel_of: &[Option<usize>]) -> (usize, DoublingStats) {
        prefix_doubling_cordon(now, n, |l, r| (l..=r).filter_map(|j| sentinel_of[j]).min())
    }

    #[test]
    fn no_sentinels_means_everything_ready() {
        let n = 20;
        let sentinels = vec![None; n + 1];
        let (cordon, stats) = run_model(0, n, &sentinels);
        assert_eq!(cordon, n + 1);
        assert_eq!(stats.probed, n);
        assert_eq!(stats.wasted, 0);
    }

    #[test]
    fn immediate_sentinel_stops_after_first_batch() {
        // State 1 can relax state 2: the cordon is 2, only state 1 is ready.
        let n = 100;
        let mut sentinels = vec![None; n + 1];
        sentinels[1] = Some(2);
        let (cordon, stats) = run_model(0, n, &sentinels);
        assert_eq!(cordon, 2);
        assert_eq!(stats.substeps, 1);
        assert_eq!(stats.probed, 1);
    }

    #[test]
    fn wasted_probes_bounded_by_useful_ones() {
        // Cordon at 10: states 1..=9 ready. Doubling probes 1,2,4,8,16 -> but
        // batches clip at cordon-1 once known; the waste must stay <= useful.
        let n = 1000;
        let mut sentinels = vec![None; n + 1];
        sentinels[7] = Some(10);
        let (cordon, stats) = run_model(0, n, &sentinels);
        assert_eq!(cordon, 10);
        assert!(stats.wasted <= 9, "wasted {} > useful 9", stats.wasted);
    }

    #[test]
    fn respects_now_offset() {
        let n = 50;
        let mut sentinels = vec![None; n + 1];
        sentinels[30] = Some(33);
        let (cordon, _) = run_model(25, n, &sentinels);
        assert_eq!(cordon, 33);
        // Nothing before `now` is probed.
        let (cordon, stats) = run_model(40, n, &sentinels);
        assert_eq!(cordon, n + 1);
        assert_eq!(stats.probed, 10);
    }

    #[test]
    fn sentinel_exactly_after_batch_terminates() {
        // First batch is [1,1]; if it reports sentinel 2, cordon <= r+1 and we
        // stop without probing further.
        let n = 8;
        let mut calls = 0;
        let (cordon, stats) = prefix_doubling_cordon(0, n, |l, r| {
            calls += 1;
            assert_eq!((l, r), (1, 1));
            Some(2)
        });
        assert_eq!(cordon, 2);
        assert_eq!(calls, 1);
        assert_eq!(stats.substeps, 1);
    }

    #[test]
    fn now_equal_n_probes_nothing() {
        let (cordon, stats) = prefix_doubling_cordon(5, 5, |_, _| panic!("no batch expected"));
        assert_eq!(cordon, 6);
        assert_eq!(stats.substeps, 0);
    }

    #[test]
    fn batches_double_in_size() {
        let n = 64;
        let mut seen = Vec::new();
        let _ = prefix_doubling_cordon(0, n, |l, r| {
            seen.push((l, r));
            None
        });
        assert_eq!(seen[0], (1, 1));
        assert_eq!(seen[1], (2, 3));
        assert_eq!(seen[2], (4, 7));
        assert_eq!(seen[3], (8, 15));
        assert_eq!(seen[5], (32, 63));
        // The final batch is clipped to n.
        assert_eq!(*seen.last().unwrap(), (64, 64));
    }
}
