//! Longest Increasing Subsequence (Sec. 3, Theorem 3.1).
//!
//! Three implementations of the LIS recurrence
//! `D[i] = max(1, max_{j < i, A[j] < A[i]} D[j] + 1)`:
//!
//! * [`naive_lis`] — the quadratic textbook DP (test oracle / baseline),
//! * [`sequential_lis`] — the `O(n log k)` optimized algorithm: a Fenwick tree
//!   over value ranks answers "best DP value among smaller elements to the
//!   left" in `O(log n)`, so only `n` transitions are processed,
//! * [`parallel_lis`] — the Cordon Algorithm instantiation: in round `r` the
//!   ready states are exactly the prefix-minimum elements of the remaining
//!   sequence (their DP value is `r`), and a tournament tree extracts and
//!   removes them in `O(l log(n/l))` work per round.  This is the
//!   parallelization of [47] the paper derives in Sec. 3; the number of rounds
//!   equals the LIS length `k`, matching the `O(k log n)` span bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{Metrics, MetricsCollector};
use pardp_tournament::{StaircaseCordon, TieRule};

/// Result of an LIS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LisResult {
    /// `d[i]` = length of the longest increasing subsequence ending at `i`.
    pub d: Vec<u32>,
    /// The LIS length (`max(d)`, `0` for an empty input).
    pub length: u32,
    /// Work / round counters.
    pub metrics: Metrics,
}

impl LisResult {
    /// Reconstruct one longest increasing subsequence (as indices) from the
    /// per-element DP values.
    pub fn reconstruct_indices(&self, a: &[i64]) -> Vec<usize> {
        assert_eq!(a.len(), self.d.len());
        let mut out = Vec::with_capacity(self.length as usize);
        let mut need = self.length;
        let mut upper = i64::MAX;
        for i in (0..a.len()).rev() {
            if need == 0 {
                break;
            }
            if self.d[i] == need && a[i] < upper {
                out.push(i);
                upper = a[i];
                need -= 1;
            }
        }
        out.reverse();
        out
    }
}

/// Quadratic reference LIS.
pub fn naive_lis(a: &[i64]) -> LisResult {
    let metrics = MetricsCollector::new();
    let n = a.len();
    let mut d = vec![1u32; n];
    let mut edges = 0u64;
    for i in 0..n {
        for j in 0..i {
            edges += 1;
            if a[j] < a[i] && d[j] + 1 > d[i] {
                d[i] = d[j] + 1;
            }
        }
    }
    metrics.add_edges(edges);
    metrics.add_states(n as u64);
    let length = d.iter().copied().max().unwrap_or(0);
    LisResult {
        d,
        length,
        metrics: metrics.snapshot(),
    }
}

/// Sequential `O(n log k)`-style LIS using a Fenwick (binary indexed) tree
/// over value ranks for prefix maxima.
pub fn sequential_lis(a: &[i64]) -> LisResult {
    let metrics = MetricsCollector::new();
    let n = a.len();
    if n == 0 {
        return LisResult {
            d: Vec::new(),
            length: 0,
            metrics: metrics.snapshot(),
        };
    }
    // Coordinate-compress the values.
    let mut sorted: Vec<i64> = a.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let rank = |x: i64| sorted.partition_point(|&v| v < x); // 0-based rank

    let mut fenwick = FenwickMax::new(sorted.len());
    let mut d = vec![1u32; n];
    let mut probes = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let r = rank(ai);
        // Best DP value among elements with value strictly smaller than a[i].
        let best_before = if r == 0 {
            0
        } else {
            fenwick.prefix_max(r - 1, &mut probes)
        };
        d[i] = best_before + 1;
        fenwick.update(r, d[i], &mut probes);
        metrics.add_edges(1);
    }
    metrics.add_probes(probes);
    metrics.add_states(n as u64);
    let length = d.iter().copied().max().unwrap_or(0);
    LisResult {
        d,
        length,
        metrics: metrics.snapshot(),
    }
}

/// Parallel LIS via the Cordon Algorithm and a tournament tree (Theorem 3.1).
///
/// Round `r` extracts every remaining prefix-minimum element; those elements
/// all have DP value `r`.  The number of rounds equals the LIS length.
///
/// Runs [`LisCordon`] through the shared phase-parallel driver, which supplies
/// the round accounting, frontier telemetry and stall guard.
pub fn parallel_lis(a: &[i64]) -> LisResult {
    let metrics = MetricsCollector::new();
    let (d, length) = run_phase_parallel(LisCordon::new(a), &metrics);
    LisResult {
        d,
        length,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for parallel LIS: one round extracts every
/// prefix-minimum record from the tournament tree and assigns the current
/// round number as its DP value.
pub struct LisCordon(StaircaseCordon<i64>);

impl LisCordon {
    /// Build the tournament tree over the input sequence.
    pub fn new(a: &[i64]) -> Self {
        // Ties do not block: A[j] < A[i] is required for a transition, so an
        // equal element to the left does not prevent readiness.
        LisCordon(StaircaseCordon::new(a, TieRule::TiesAreRecords))
    }
}

impl PhaseParallel for LisCordon {
    /// Per-element DP values plus the LIS length (rounds == length,
    /// Theorem 3.1).
    type Output = (Vec<u32>, u32);

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        self.0.round(metrics)
    }

    fn finish(self) -> Self::Output {
        self.0.finish()
    }

    fn round_budget(&self) -> Option<u64> {
        self.0.round_budget()
    }
}

/// Fenwick tree for prefix maxima over `0..len` (used by [`sequential_lis`]).
struct FenwickMax {
    tree: Vec<u32>,
}

impl FenwickMax {
    fn new(len: usize) -> Self {
        FenwickMax {
            tree: vec![0; len + 1],
        }
    }

    /// max over ranks `0..=idx`.
    fn prefix_max(&self, idx: usize, probes: &mut u64) -> u32 {
        let mut i = idx + 1;
        let mut best = 0;
        while i > 0 {
            *probes += 1;
            best = best.max(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        best
    }

    fn update(&mut self, idx: usize, value: u32, probes: &mut u64) {
        let mut i = idx + 1;
        while i < self.tree.len() {
            *probes += 1;
            if self.tree[i] < value {
                self.tree[i] = value;
            }
            i += i & i.wrapping_neg();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64, modulo: u64) -> Vec<i64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % modulo) as i64
            })
            .collect()
    }

    #[test]
    fn paper_example_figure2() {
        let a = [7i64, 3, 6, 8, 1, 4, 2, 5];
        for r in [naive_lis(&a), sequential_lis(&a), parallel_lis(&a)] {
            assert_eq!(r.d, vec![1, 1, 2, 3, 1, 2, 2, 3]);
            assert_eq!(r.length, 3);
        }
    }

    #[test]
    fn all_three_agree_on_random_inputs() {
        for seed in 0..10 {
            for &m in &[5u64, 100, 1_000_000] {
                let a = pseudo_random(300, seed, m);
                let want = naive_lis(&a);
                let seq = sequential_lis(&a);
                let par = parallel_lis(&a);
                assert_eq!(seq.d, want.d, "seed {seed} m {m}");
                assert_eq!(par.d, want.d, "seed {seed} m {m}");
                assert_eq!(par.length, want.length);
            }
        }
    }

    #[test]
    fn sorted_and_reverse_sorted() {
        let inc: Vec<i64> = (0..500).collect();
        assert_eq!(parallel_lis(&inc).length, 500);
        assert_eq!(sequential_lis(&inc).length, 500);
        let dec: Vec<i64> = (0..500).rev().collect();
        let r = parallel_lis(&dec);
        assert_eq!(r.length, 1);
        assert_eq!(r.metrics.rounds, 1, "a decreasing input needs one round");
    }

    #[test]
    fn duplicates_are_not_increasing() {
        let a = vec![5i64; 100];
        for r in [naive_lis(&a), sequential_lis(&a), parallel_lis(&a)] {
            assert_eq!(r.length, 1);
        }
    }

    #[test]
    fn rounds_equal_lis_length() {
        for seed in 0..5 {
            let a = pseudo_random(1000, seed, 10_000);
            let r = parallel_lis(&a);
            assert_eq!(r.metrics.rounds, r.length as u64);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(parallel_lis(&[]).length, 0);
        assert_eq!(sequential_lis(&[]).length, 0);
        assert_eq!(naive_lis(&[]).length, 0);
        let one = [42i64];
        assert_eq!(parallel_lis(&one).length, 1);
        assert_eq!(parallel_lis(&one).d, vec![1]);
    }

    #[test]
    fn reconstruction_is_a_valid_lis() {
        for seed in 0..5 {
            let a = pseudo_random(200, seed, 500);
            let r = parallel_lis(&a);
            let idx = r.reconstruct_indices(&a);
            assert_eq!(idx.len(), r.length as usize);
            for w in idx.windows(2) {
                assert!(w[0] < w[1]);
                assert!(a[w[0]] < a[w[1]]);
            }
        }
    }

    #[test]
    fn sequential_work_is_near_linear() {
        let a = pseudo_random(20_000, 3, 1_000_000);
        let r = sequential_lis(&a);
        assert!(r.metrics.probes < 20_000 * 40);
        assert_eq!(r.metrics.edges_relaxed, 20_000);
    }

    #[test]
    fn negative_values_are_fine() {
        let a = vec![-5i64, -10, -3, 0, -1, 2];
        let want = naive_lis(&a);
        assert_eq!(parallel_lis(&a).d, want.d);
        assert_eq!(sequential_lis(&a).d, want.d);
        assert_eq!(want.length, 4); // -10, -3, 0 (or -1), 2
    }
}
