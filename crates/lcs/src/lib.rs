//! Sparse Longest Common Subsequence (Sec. 3, Theorem 3.2).
//!
//! Given `A[1..n]` and `B[1..m]`, only the `L` *matching pairs* `(i, j)` with
//! `A[i] = B[j]` can contribute to the LCS (the sparsification of
//! Apostolico–Guerra / Hunt–Szymanski).  Sorting the pairs by column `i`
//! ascending and row `j` descending turns the LCS into an LIS over the `j`
//! keys of the sorted list — the "interesting finding" at the end of Sec. 3 —
//! so the same cordon/tournament-tree machinery applies:
//!
//! * [`dense_lcs`] — the classic `O(nm)` dynamic program (test oracle),
//! * [`sequential_sparse_lcs`] — Hunt–Szymanski in `O(L log n)` (the paper's
//!   sequential baseline in Fig. 6),
//! * [`parallel_sparse_lcs`] — the Cordon Algorithm: round `r` extracts every
//!   matching pair on the current cordon staircase (exactly the pairs whose
//!   LCS value is `r`) with a tournament tree; `k` rounds total, `O(L log n)`
//!   work and `O(k log n)` span.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{par_sort_by_key, round_min_grain, Metrics, MetricsCollector};
use pardp_tournament::{StaircaseCordon, TieRule};
use rayon::prelude::*;
use std::collections::HashMap;

/// A matching pair: position `i` in the first string matches position `j` in
/// the second string (`A[i] == B[j]`, both 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchPair {
    /// Position in the first sequence.
    pub i: u32,
    /// Position in the second sequence.
    pub j: u32,
}

/// Result of an LCS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcsResult {
    /// LCS length.
    pub length: u32,
    /// For the sparse algorithms: the DP value (LCS length of the prefix
    /// ending at that pair) of every matching pair, in the canonical sorted
    /// order (`i` ascending, `j` descending).  Empty for [`dense_lcs`].
    pub pair_values: Vec<u32>,
    /// Work / round counters.
    pub metrics: Metrics,
}

/// Enumerate all matching pairs of `a` and `b`, sorted by `i` ascending and
/// `j` descending (the canonical order used by the sparse algorithms).
///
/// Runs in `O(n + m + L)` expected work (hash bucketing by symbol) plus the
/// sort.
pub fn matching_pairs<T: Eq + std::hash::Hash + Copy + Sync>(a: &[T], b: &[T]) -> Vec<MatchPair> {
    let mut positions: HashMap<T, Vec<u32>> = HashMap::new();
    for (j, &x) in b.iter().enumerate() {
        positions.entry(x).or_default().push(j as u32);
    }
    let mut pairs: Vec<MatchPair> = a
        .par_iter()
        .enumerate()
        .with_min_len(round_min_grain(a.len()))
        .flat_map_iter(|(i, x)| {
            positions
                .get(x)
                .map(|js| {
                    js.iter()
                        .rev() // j descending within the same i
                        .map(move |&j| MatchPair { i: i as u32, j })
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        })
        .collect();
    // The flat_map already yields i-ascending / j-descending order, but sort
    // defensively so callers can pass arbitrary pair lists.
    par_sort_by_key(&mut pairs, |p| (p.i, std::cmp::Reverse(p.j)));
    pairs
}

/// Classic `O(nm)` dense LCS (the unsparsified textbook DP).  Oracle for the
/// sparse implementations and the "no-optimization" baseline.
pub fn dense_lcs<T: Eq>(a: &[T], b: &[T]) -> LcsResult {
    let metrics = MetricsCollector::new();
    let (n, m) = (a.len(), b.len());
    let mut prev = vec![0u32; m + 1];
    let mut cur = vec![0u32; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            cur[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    metrics.add_edges((n * m) as u64);
    metrics.add_states((n * m) as u64);
    LcsResult {
        length: prev[m],
        pair_values: Vec::new(),
        metrics: metrics.snapshot(),
    }
}

/// Hunt–Szymanski sparse LCS: processes the matching pairs in the canonical
/// order and maintains the "threshold" array with binary searches,
/// `O(L log n)` work.  Also reports the DP value of every pair.
pub fn sequential_sparse_lcs(pairs: &[MatchPair]) -> LcsResult {
    let metrics = MetricsCollector::new();
    debug_assert!(pairs_are_canonically_sorted(pairs));
    // thresholds[t] = smallest j that ends an increasing (in j) chain of
    // length t+1 seen so far.
    let mut thresholds: Vec<u32> = Vec::new();
    let mut pair_values = Vec::with_capacity(pairs.len());
    let mut probes = 0u64;
    for p in pairs {
        // Length of the longest chain ending strictly below j, plus one.
        let pos = thresholds.partition_point(|&t| t < p.j);
        probes += (thresholds.len().max(2)).ilog2() as u64;
        let value = pos as u32 + 1;
        if pos == thresholds.len() {
            thresholds.push(p.j);
        } else if p.j < thresholds[pos] {
            thresholds[pos] = p.j;
        }
        pair_values.push(value);
        metrics.add_edges(1);
    }
    metrics.add_probes(probes);
    metrics.add_states(pairs.len() as u64);
    LcsResult {
        length: thresholds.len() as u32,
        pair_values,
        metrics: metrics.snapshot(),
    }
}

/// Parallel sparse LCS via the Cordon Algorithm (Theorem 3.2).
///
/// The pairs must be in the canonical order (as produced by
/// [`matching_pairs`]).  Round `r` extracts every pair on the current cordon —
/// exactly the pairs with DP value `r` — using a tournament tree keyed by `j`.
pub fn parallel_sparse_lcs(pairs: &[MatchPair]) -> LcsResult {
    let metrics = MetricsCollector::new();
    let (pair_values, length) = run_phase_parallel(LcsCordon::new(pairs), &metrics);
    LcsResult {
        length,
        pair_values,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for parallel sparse LCS: one round extracts
/// every pair on the current cordon staircase (the pairs with DP value equal
/// to the round number) from a tournament tree keyed by `j`.
pub struct LcsCordon(StaircaseCordon<u32>);

impl LcsCordon {
    /// Build the tournament tree over the `j` keys of canonically sorted
    /// pairs.
    pub fn new(pairs: &[MatchPair]) -> Self {
        debug_assert!(pairs_are_canonically_sorted(pairs));
        let keys: Vec<u32> = pairs.iter().map(|p| p.j).collect();
        // A pair relaxes a later pair only with a strictly smaller j (and
        // strictly smaller i, which the canonical order guarantees for smaller
        // j values on the prefix-minimum staircase), so ties do not block.
        LcsCordon(StaircaseCordon::new(&keys, TieRule::TiesAreRecords))
    }
}

impl PhaseParallel for LcsCordon {
    /// Per-pair DP values plus the LCS length (rounds == length,
    /// Theorem 3.2).
    type Output = (Vec<u32>, u32);

    fn is_done(&self) -> bool {
        self.0.is_done()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        self.0.round(metrics)
    }

    fn finish(self) -> Self::Output {
        self.0.finish()
    }

    fn round_budget(&self) -> Option<u64> {
        self.0.round_budget()
    }
}

/// Convenience wrapper: enumerate the pairs of `a` and `b` and run the
/// parallel sparse LCS.
pub fn parallel_lcs_of<T: Eq + std::hash::Hash + Copy + Sync>(a: &[T], b: &[T]) -> LcsResult {
    let pairs = matching_pairs(a, b);
    parallel_sparse_lcs(&pairs)
}

fn pairs_are_canonically_sorted(pairs: &[MatchPair]) -> bool {
    pairs
        .windows(2)
        .all(|w| (w[0].i, std::cmp::Reverse(w[0].j)) <= (w[1].i, std::cmp::Reverse(w[1].j)))
}

/// Reconstruct one LCS (as a vector of `(i, j)` index pairs) from the pair DP
/// values produced by the sparse algorithms.
pub fn reconstruct_lcs(pairs: &[MatchPair], values: &[u32], length: u32) -> Vec<MatchPair> {
    assert_eq!(pairs.len(), values.len());
    let mut out: Vec<MatchPair> = Vec::with_capacity(length as usize);
    let mut need = length;
    let mut max_i = u32::MAX;
    let mut max_j = u32::MAX;
    for idx in (0..pairs.len()).rev() {
        if need == 0 {
            break;
        }
        let p = pairs[idx];
        if values[idx] == need && p.i < max_i && p.j < max_j {
            out.push(p);
            max_i = p.i;
            max_j = p.j;
            need -= 1;
        }
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_string(n: usize, seed: u64, alphabet: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % alphabet) as u8
            })
            .collect()
    }

    #[test]
    fn hand_checked_small_case() {
        let a = b"ABCBDAB".to_vec();
        let b = b"BDCABA".to_vec();
        // LCS is "BCBA" or "BDAB": length 4.
        assert_eq!(dense_lcs(&a, &b).length, 4);
        let pairs = matching_pairs(&a, &b);
        assert_eq!(sequential_sparse_lcs(&pairs).length, 4);
        assert_eq!(parallel_sparse_lcs(&pairs).length, 4);
    }

    #[test]
    fn lis_reduction_from_paper_figure2() {
        // The LIS instance of Fig. 2 as an LCS: A = permutation, B = identity.
        let a: Vec<u8> = vec![7, 3, 6, 8, 1, 4, 2, 5];
        let b: Vec<u8> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let pairs = matching_pairs(&a, &b);
        assert_eq!(pairs.len(), 8); // L = n for a permutation
        let r = parallel_sparse_lcs(&pairs);
        assert_eq!(r.length, 3);
        assert_eq!(r.metrics.rounds, 3);
    }

    #[test]
    fn all_algorithms_agree_on_random_strings() {
        for seed in 0..8 {
            for &alpha in &[2u64, 4, 16, 64] {
                let a = pseudo_string(120, seed, alpha);
                let b = pseudo_string(140, seed + 100, alpha);
                let want = dense_lcs(&a, &b).length;
                let pairs = matching_pairs(&a, &b);
                let seq = sequential_sparse_lcs(&pairs);
                let par = parallel_sparse_lcs(&pairs);
                assert_eq!(seq.length, want, "seed {seed} alpha {alpha}");
                assert_eq!(par.length, want, "seed {seed} alpha {alpha}");
                assert_eq!(
                    par.pair_values, seq.pair_values,
                    "seed {seed} alpha {alpha}"
                );
            }
        }
    }

    #[test]
    fn matching_pairs_are_canonical_and_complete() {
        let a = b"ABAB".to_vec();
        let b = b"BABA".to_vec();
        let pairs = matching_pairs(&a, &b);
        assert!(pairs_are_canonically_sorted(&pairs));
        assert_eq!(pairs.len(), 8); // every A matches 2 As, every B matches 2 Bs
        for p in &pairs {
            assert_eq!(a[p.i as usize], b[p.j as usize]);
        }
    }

    #[test]
    fn identical_strings_have_full_lcs() {
        let a = pseudo_string(200, 1, 8);
        let pairs = matching_pairs(&a, &a);
        let r = parallel_sparse_lcs(&pairs);
        assert_eq!(r.length, 200);
        assert_eq!(r.metrics.rounds, 200);
    }

    #[test]
    fn disjoint_alphabets_have_empty_lcs() {
        let a = vec![1u8; 50];
        let b = vec![2u8; 60];
        let pairs = matching_pairs(&a, &b);
        assert!(pairs.is_empty());
        assert_eq!(parallel_sparse_lcs(&pairs).length, 0);
        assert_eq!(dense_lcs(&a, &b).length, 0);
    }

    #[test]
    fn pair_values_match_between_seq_and_par() {
        let a = pseudo_string(300, 9, 6);
        let b = pseudo_string(300, 10, 6);
        let pairs = matching_pairs(&a, &b);
        let seq = sequential_sparse_lcs(&pairs);
        let par = parallel_sparse_lcs(&pairs);
        assert_eq!(seq.pair_values, par.pair_values);
        // The rounds of the cordon algorithm equal the LCS length.
        assert_eq!(par.metrics.rounds, par.length as u64);
    }

    #[test]
    fn reconstruction_is_a_common_subsequence() {
        let a = pseudo_string(150, 4, 5);
        let b = pseudo_string(170, 5, 5);
        let pairs = matching_pairs(&a, &b);
        let r = parallel_sparse_lcs(&pairs);
        let chain = reconstruct_lcs(&pairs, &r.pair_values, r.length);
        assert_eq!(chain.len(), r.length as usize);
        for w in chain.windows(2) {
            assert!(w[0].i < w[1].i && w[0].j < w[1].j);
        }
        for p in &chain {
            assert_eq!(a[p.i as usize], b[p.j as usize]);
        }
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u8> = vec![];
        let b = b"XYZ".to_vec();
        assert_eq!(dense_lcs(&empty, &b).length, 0);
        assert!(matching_pairs(&empty, &b).is_empty());
        assert_eq!(parallel_sparse_lcs(&[]).length, 0);
        assert_eq!(sequential_sparse_lcs(&[]).length, 0);
    }

    #[test]
    fn works_with_u32_alphabet() {
        let a: Vec<u32> = (0..100).map(|i| i % 10).collect();
        let b: Vec<u32> = (0..100).map(|i| (i * 3) % 10).collect();
        let want = dense_lcs(&a, &b).length;
        assert_eq!(parallel_lcs_of(&a, &b).length, want);
    }
}
