//! Deterministic, seeded workload generators for every experiment.
//!
//! The paper's evaluation controls two knobs per experiment: the input size
//! `n` (and `L` for sparse LCS) and the *depth* of the DP DAG — the LIS/LCS
//! length `k`, or the number of post offices in the optimal GLWS solution.
//! The generators below construct inputs whose depth is (exactly or very
//! nearly) a requested value, so the benchmark harness can sweep `k` the same
//! way Figures 6 and 7 do.  All generators are seeded with ChaCha so every
//! run, test and benchmark sees identical inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

use pardp_parutils::par_sort_by_key_with;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Construct the seeded RNG used by all generators.
fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------------
// LIS
// ---------------------------------------------------------------------------

/// A sequence of length `n` whose LIS length is exactly `k` (requires
/// `1 <= k <= n`).
///
/// The sequence is a concatenation of `k` strictly decreasing blocks whose
/// value ranges strictly increase from block to block: any increasing
/// subsequence can use at most one element per block (so LIS ≤ k), and taking
/// one element from each block gives an increasing subsequence of length `k`.
/// Block lengths are randomized around `n / k`.
pub fn lis_with_length(n: usize, k: usize, seed: u64) -> Vec<i64> {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut r = rng(seed);
    let boundaries = random_partition(n, k, &mut r);
    let mut out = Vec::with_capacity(n);
    let mut value_base = 0i64;
    for b in 0..k {
        let len = boundaries[b];
        // Strictly decreasing block occupying [value_base, value_base + len).
        for t in 0..len {
            out.push(value_base + (len - 1 - t) as i64);
        }
        value_base += len as i64;
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// A uniformly random sequence over `0..modulus` (expected LIS length
/// `Θ(√n)` for a large modulus).
pub fn random_sequence(n: usize, modulus: i64, seed: u64) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..modulus)).collect()
}

// ---------------------------------------------------------------------------
// Sparse LCS (Fig. 6)
// ---------------------------------------------------------------------------

/// A sparse-LCS workload given directly as matching pairs `(i, j)` in the
/// canonical order (`i` ascending, `j` descending within equal `i`), with
/// exactly `l` pairs and LCS length exactly `k`.
///
/// This mirrors the paper's Fig. 6 setup, which controls `L` and `k` directly
/// and excludes pair-finding preprocessing from the measured time.  The `j`
/// keys follow the same k-block construction as [`lis_with_length`]; the `i`
/// keys are strictly increasing so each pair sits in its own column.
pub fn lcs_pairs_with(l: usize, k: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(k >= 1 && k <= l, "need 1 <= k <= l");
    let js = lis_with_length(l, k, seed);
    js.into_iter()
        .enumerate()
        .map(|(i, j)| (i as u32, j as u32))
        .collect()
}

/// Two strings of length `n` over the given alphabet size, with a planted
/// common subsequence of length `k`.  Used by the examples; the resulting LCS
/// length is at least `k` (and close to it for large alphabets).
pub fn strings_with_common_subsequence(
    n: usize,
    k: usize,
    alphabet: u32,
    seed: u64,
) -> (Vec<u32>, Vec<u32>) {
    assert!(k <= n);
    assert!(alphabet >= 2);
    let mut r = rng(seed);
    // The planted subsequence uses symbols from the lower half of the
    // alphabet; filler symbols come from the upper half of each string's
    // disjoint alphabet slice so they cannot accidentally match.
    let planted: Vec<u32> = (0..k).map(|_| r.gen_range(0..alphabet / 2)).collect();
    let make = |r: &mut ChaCha8Rng, filler_lo: u32, filler_hi: u32| -> Vec<u32> {
        let mut positions: Vec<usize> = rand::seq::index::sample(r, n, k).into_vec();
        positions.sort_unstable();
        let mut out = vec![0u32; n];
        let mut next_planted = 0usize;
        for (idx, slot) in out.iter_mut().enumerate() {
            if next_planted < k && positions[next_planted] == idx {
                *slot = planted[next_planted];
                next_planted += 1;
            } else {
                *slot = r.gen_range(filler_lo..filler_hi);
            }
        }
        out
    };
    let half = alphabet / 2;
    let quarter = (alphabet - half) / 2;
    let a = make(&mut r, half, half + quarter.max(1));
    let b = make(
        &mut r,
        half + quarter.max(1),
        alphabet.max(half + quarter.max(1) + 1),
    );
    (a, b)
}

// ---------------------------------------------------------------------------
// GLWS / post office (Fig. 7)
// ---------------------------------------------------------------------------

/// A post-office instance (village coordinates plus opening cost) whose
/// optimal solution uses exactly `k` post offices.
///
/// Villages form `k` tight clusters (intra-cluster gaps of 1 or 2) separated
/// by wide gaps.  The opening cost is chosen above the largest possible
/// saving from splitting a cluster and far below the cost of spanning an
/// inter-cluster gap, so the optimum places exactly one office per cluster.
pub fn post_office_instance(n: usize, k: usize, seed: u64) -> PostOfficeInstance {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut r = rng(seed);
    let sizes = random_partition(n, k, &mut r);
    // analyze: allow(no-panics): `random_partition(n, k)` returns exactly
    // `k >= 1` sizes (asserted above), so the max exists.
    let max_cluster = *sizes.iter().max().unwrap();
    // Largest possible intra-cluster span (gap at most 2 per step).
    let max_span = 2 * max_cluster as i64;
    let open_cost = max_span * max_span + 1;
    let cluster_gap = 4 * max_span + 4; // gap² dwarfs open_cost + spans
    let mut coords = Vec::with_capacity(n);
    let mut x = 0i64;
    for (c, &len) in sizes.iter().enumerate() {
        if c > 0 {
            x += cluster_gap;
        }
        for _ in 0..len {
            x += r.gen_range(1..=2);
            coords.push(x);
        }
    }
    PostOfficeInstance {
        coords,
        open_cost,
        clusters: k,
    }
}

/// Output of [`post_office_instance`].
#[derive(Debug, Clone)]
pub struct PostOfficeInstance {
    /// Sorted village coordinates.
    pub coords: Vec<i64>,
    /// Opening cost per post office.
    pub open_cost: i64,
    /// Number of clusters (the intended optimal number of offices).
    pub clusters: usize,
}

/// A concave GLWS workload: `n` states with a capped-linear gap cost whose cap
/// controls how long the optimal segments are (`cap` elements per segment).
pub fn concave_instance(n: usize, cap: usize, seed: u64) -> ConcaveInstance {
    let mut r = rng(seed);
    ConcaveInstance {
        n,
        cap: cap.max(1),
        base: r.gen_range(1..100),
    }
}

/// Output of [`concave_instance`]: parameters of a capped-linear concave cost.
#[derive(Debug, Clone, Copy)]
pub struct ConcaveInstance {
    /// Number of states.
    pub n: usize,
    /// Segment-length cap.
    pub cap: usize,
    /// Per-element cost scale.
    pub base: i64,
}

// ---------------------------------------------------------------------------
// OAT / OBST
// ---------------------------------------------------------------------------

/// Random positive integer leaf weights in `1..=max_weight` (OAT and OBST
/// workloads; bounded weights keep the OAT height logarithmic per Lemma 5.1).
pub fn positive_weights(n: usize, max_weight: u64, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(1..=max_weight.max(1))).collect()
}

/// Heavily skewed weights (Zipf-like): weight of the `i`-th leaf is
/// `max_weight / (1 + (i % period))`, shuffled.  Produces deeper optimal trees
/// than uniform weights.
pub fn skewed_weights(n: usize, max_weight: u64, period: usize, seed: u64) -> Vec<u64> {
    use rand::seq::SliceRandom;
    let mut r = rng(seed);
    let mut w: Vec<u64> = (0..n)
        .map(|i| (max_weight / (1 + (i % period.max(1)) as u64)).max(1))
        .collect();
    w.shuffle(&mut r);
    w
}

/// Equal weights: the OAT degenerates to a balanced tree and every
/// Garsia–Wachs combine is wall-adjacent — the adversarial profile for the
/// valley cordon's parallel phase (everything falls to the sequential sweep).
pub fn equal_weights(n: usize, weight: u64) -> Vec<u64> {
    vec![weight.max(1); n]
}

/// Exponentially growing weights `base^(i mod cap)` (capped to avoid
/// overflow): the optimal alphabetic tree is a caterpillar, the deepest shape
/// Lemma 5.1 admits for the weight range.
pub fn exponential_weights(n: usize, base: u64, cap: u32) -> Vec<u64> {
    let base = base.max(2);
    // Cap the exponent so the total weight stays far below u64::MAX.
    let log2_base = (63 - base.leading_zeros()).max(1);
    let cap = cap.clamp(1, (50 / log2_base).max(1));
    (0..n).map(|i| base.pow(i as u32 % cap)).collect()
}

/// A single-valley weight profile: random weights sorted descending on the
/// left half and ascending on the right — one Cartesian-tree leaf, two long
/// monotone slopes.  Sorting goes through the reusable-scratch parallel sort
/// ([`pardp_parutils::par_sort_by_key_with`]); both halves share one scratch.
pub fn valley_weights(n: usize, max_weight: u64, seed: u64) -> Vec<u64> {
    let mut w = positive_weights(n, max_weight, seed);
    let mid = n / 2;
    let mut scratch = Vec::new();
    let (left, right) = w.split_at_mut(mid);
    par_sort_by_key_with(left, &mut scratch, |&x| core::cmp::Reverse(x));
    par_sort_by_key_with(right, &mut scratch, |&x| x);
    w
}

/// A single-mountain weight profile (the reverse of [`valley_weights`]):
/// ascending then descending, so every proper valley sits at the ends.
pub fn mountain_weights(n: usize, max_weight: u64, seed: u64) -> Vec<u64> {
    let mut w = valley_weights(n, max_weight, seed);
    w.reverse();
    w
}

// ---------------------------------------------------------------------------
// GAP edit distance
// ---------------------------------------------------------------------------

/// Two strings for the GAP problem: a base string of length `n` and a mutated
/// copy of length about `m`, produced by deleting blocks and substituting
/// symbols, so realistic block indels dominate (the workload GAP costs model).
pub fn gap_strings(n: usize, m: usize, alphabet: u8, seed: u64) -> (Vec<u8>, Vec<u8>) {
    assert!(alphabet >= 2);
    let mut r = rng(seed);
    let a: Vec<u8> = (0..n).map(|_| r.gen_range(0..alphabet)).collect();
    // Derive b from a: copy with block deletions and occasional substitutions,
    // then pad/truncate to m.
    let mut b = Vec::with_capacity(m);
    let mut idx = 0usize;
    while idx < n && b.len() < m {
        if r.gen_ratio(1, 20) {
            // Delete a block of up to 8 symbols.
            idx += r.gen_range(1..=8);
            continue;
        }
        let mut c = a[idx];
        if r.gen_ratio(1, 15) {
            c = r.gen_range(0..alphabet);
        }
        b.push(c);
        idx += 1;
    }
    while b.len() < m {
        b.push(r.gen_range(0..alphabet));
    }
    b.truncate(m);
    (a, b)
}

// ---------------------------------------------------------------------------
// Trees (Tree-GLWS)
// ---------------------------------------------------------------------------

/// A random rooted tree on `n + 1` nodes (node 0 is the root) given as a
/// parent array: `parent[v]` for `v in 1..=n`, with `parent[v] < v`.
///
/// `chain_bias` in `0..=100` controls the shape: 100 yields a path (maximum
/// depth), 0 yields an almost-star (minimum depth).
pub fn random_tree(n: usize, chain_bias: u32, seed: u64) -> Vec<usize> {
    assert!(chain_bias <= 100);
    let mut r = rng(seed);
    let mut parent = vec![0usize; n + 1];
    for v in 1..=n {
        parent[v] = if v == 1 || r.gen_range(0..100) < chain_bias {
            v - 1
        } else {
            r.gen_range(0..v)
        };
    }
    parent
}

/// Edge lengths for a tree given as a parent array (positive integers).
pub fn tree_edge_lengths(n: usize, max_len: u64, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..=n).map(|_| r.gen_range(1..=max_len.max(1))).collect()
}

/// A path on `n + 1` nodes: the deepest tree shape (`h = n`), where the
/// baseline Tree-GLWS cordon degenerates to quadratic work.
pub fn path_tree(n: usize) -> Vec<usize> {
    (0..=n).map(|v| v.saturating_sub(1)).collect()
}

/// A star on `n + 1` nodes: the shallowest tree shape (`h = 1`), a single
/// one-frontier cordon round.
pub fn star_tree(n: usize) -> Vec<usize> {
    vec![0; n + 1]
}

/// A caterpillar: a spine path of `spine` nodes with the remaining `n - spine`
/// leg leaves attached to random spine nodes.  Depth ≈ `spine` with wide
/// frontiers along the way — the adversarial shape for ancestor rescans
/// (`h ≈ n` with many nodes per level).
pub fn caterpillar_tree(n: usize, spine: usize, seed: u64) -> Vec<usize> {
    assert!(spine >= 1 && spine <= n, "need 1 <= spine <= n");
    let mut r = rng(seed);
    let mut parent = vec![0usize; n + 1];
    for v in 1..=spine {
        parent[v] = v - 1;
    }
    for v in spine + 1..=n {
        parent[v] = r.gen_range(1..=spine);
    }
    parent
}

/// A complete `arity`-ary tree on `n + 1` nodes in level order
/// (`h = Θ(log n)`, geometrically growing frontiers).
pub fn balanced_tree(n: usize, arity: usize) -> Vec<usize> {
    assert!(arity >= 2, "need arity >= 2");
    (0..=n).map(|v| v.saturating_sub(1) / arity).collect()
}

/// A random-attachment (recursive) tree: every node picks a uniformly random
/// earlier node as its parent, giving expected height `Θ(log n)`.
pub fn random_attachment_tree(n: usize, seed: u64) -> Vec<usize> {
    let mut r = rng(seed);
    let mut parent = vec![0usize; n + 1];
    for v in 2..=n {
        parent[v] = r.gen_range(0..v);
    }
    parent
}

/// Edge height of a tree given as a parent array (0 for a lone root), the
/// round count of the depth-frontier Tree-GLWS cordons.  Asserts the
/// `parent[v] < v` invariant every generator above guarantees.
pub fn tree_height(parent: &[usize]) -> usize {
    let mut depth = vec![0usize; parent.len()];
    let mut h = 0;
    for v in 1..parent.len() {
        assert!(parent[v] < v, "parents must precede children");
        depth[v] = depth[parent[v]] + 1;
        h = h.max(depth[v]);
    }
    h
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Split `n` items into `k` non-empty parts of random sizes.
fn random_partition(n: usize, k: usize, r: &mut ChaCha8Rng) -> Vec<usize> {
    debug_assert!(k >= 1 && k <= n);
    let base = n / k;
    let mut sizes = vec![base; k];
    let mut extra = n - base * k;
    while extra > 0 {
        let idx = r.gen_range(0..k);
        sizes[idx] += 1;
        extra -= 1;
    }
    // Jitter sizes while keeping all parts non-empty and the total fixed.
    for _ in 0..k {
        let a = r.gen_range(0..k);
        let b = r.gen_range(0..k);
        if a != b && sizes[a] > 1 {
            sizes[a] -= 1;
            sizes[b] += 1;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lis_workload_has_exact_length() {
        for &(n, k) in &[(10usize, 1usize), (10, 10), (100, 7), (1000, 33)] {
            let a = lis_with_length(n, k, 42);
            assert_eq!(a.len(), n);
            assert_eq!(lis_length_oracle(&a), k, "n {n} k {k}");
        }
    }

    #[test]
    fn lis_workload_is_deterministic() {
        assert_eq!(lis_with_length(500, 20, 7), lis_with_length(500, 20, 7));
        assert_ne!(lis_with_length(500, 20, 7), lis_with_length(500, 20, 8));
    }

    #[test]
    fn lcs_pairs_are_canonical_with_exact_k() {
        let pairs = lcs_pairs_with(300, 12, 3);
        assert_eq!(pairs.len(), 300);
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "i must be strictly increasing here");
        }
        let js: Vec<i64> = pairs.iter().map(|p| p.1 as i64).collect();
        assert_eq!(lis_length_oracle(&js), 12);
    }

    #[test]
    fn post_office_instance_is_sorted_with_k_clusters() {
        let inst = post_office_instance(200, 9, 11);
        assert_eq!(inst.coords.len(), 200);
        assert!(inst.coords.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(inst.clusters, 9);
        // The gap structure: exactly k-1 gaps larger than the open-cost scale.
        let big_gaps = inst.coords.windows(2).filter(|w| w[1] - w[0] > 2).count();
        assert_eq!(big_gaps, 8);
    }

    #[test]
    fn strings_share_a_long_subsequence() {
        let (a, b) = strings_with_common_subsequence(500, 50, 64, 5);
        assert_eq!(a.len(), 500);
        assert_eq!(b.len(), 500);
        // The planted subsequence guarantees LCS >= 50; verify with a dense DP.
        assert!(dense_lcs_len(&a, &b) >= 50);
    }

    #[test]
    fn gap_strings_have_requested_lengths() {
        let (a, b) = gap_strings(400, 350, 4, 9);
        assert_eq!(a.len(), 400);
        assert_eq!(b.len(), 350);
        assert!(a.iter().all(|&c| c < 4));
        assert!(b.iter().all(|&c| c < 4));
    }

    #[test]
    fn random_tree_parents_are_valid() {
        for bias in [0u32, 50, 100] {
            let parent = random_tree(300, bias, 3);
            assert_eq!(parent.len(), 301);
            for v in 1..=300usize {
                assert!(parent[v] < v);
            }
        }
        // Full chain bias gives a path.
        let chain = random_tree(50, 100, 1);
        for v in 1..=50usize {
            assert_eq!(chain[v], v - 1);
        }
    }

    #[test]
    fn tree_shapes_have_expected_heights() {
        assert_eq!(tree_height(&path_tree(100)), 100);
        assert_eq!(tree_height(&star_tree(100)), 1);
        let cat = caterpillar_tree(200, 80, 7);
        assert_eq!(cat.len(), 201);
        let ch = tree_height(&cat);
        assert!(
            (80..=81).contains(&ch),
            "caterpillar height {ch} should track its spine"
        );
        let bal = balanced_tree(1000, 4);
        assert!(
            tree_height(&bal) <= 6,
            "4-ary tree on 1001 nodes is shallow"
        );
        let ra = random_attachment_tree(10_000, 3);
        let rh = tree_height(&ra);
        assert!(rh <= 64, "random attachment height {rh} should be Θ(log n)");
        // Determinism.
        assert_eq!(caterpillar_tree(200, 80, 7), caterpillar_tree(200, 80, 7));
        assert_eq!(
            random_attachment_tree(500, 9),
            random_attachment_tree(500, 9)
        );
        assert_ne!(
            random_attachment_tree(500, 9),
            random_attachment_tree(500, 10)
        );
    }

    #[test]
    fn weights_are_positive_and_bounded() {
        let w = positive_weights(1000, 1 << 20, 4);
        assert!(w.iter().all(|&x| (1..=1 << 20).contains(&x)));
        let s = skewed_weights(1000, 1 << 20, 64, 4);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&x| x >= 1));
    }

    #[test]
    fn oat_weight_profiles_have_their_shapes() {
        let eq = equal_weights(100, 7);
        assert!(eq.iter().all(|&x| x == 7));
        let ex = exponential_weights(100, 2, 40);
        assert_eq!(ex[0], 1);
        assert_eq!(ex[39], 1 << 39);
        assert_eq!(ex[40], 1, "exponent wraps at the cap");
        // Large-base exponents are clamped to keep totals far from overflow.
        let big = exponential_weights(64, 1 << 25, 60);
        assert!(big.iter().all(|&x| x < 1 << 51));
        let v = valley_weights(5000, 1 << 20, 3);
        assert_eq!(v.len(), 5000);
        assert!(
            v[..2500].windows(2).all(|w| w[0] >= w[1]),
            "left slope descends"
        );
        assert!(
            v[2500..].windows(2).all(|w| w[0] <= w[1]),
            "right slope ascends"
        );
        let m = mountain_weights(5000, 1 << 20, 3);
        let mut rev = v.clone();
        rev.reverse();
        assert_eq!(m, rev);
        // Determinism across calls (the shared-scratch sort is stable).
        assert_eq!(v, valley_weights(5000, 1 << 20, 3));
    }

    #[test]
    fn partition_is_exact_and_nonempty() {
        let mut r = rng(123);
        for &(n, k) in &[(10usize, 3usize), (1000, 1), (1000, 999), (57, 57)] {
            let parts = random_partition(n, k, &mut r);
            assert_eq!(parts.len(), k);
            assert_eq!(parts.iter().sum::<usize>(), n);
            assert!(parts.iter().all(|&p| p >= 1));
        }
    }

    // -- small oracles used only by these tests ---------------------------

    fn lis_length_oracle(a: &[i64]) -> usize {
        let mut tails: Vec<i64> = Vec::new();
        for &x in a {
            let pos = tails.partition_point(|&t| t < x);
            if pos == tails.len() {
                tails.push(x);
            } else {
                tails[pos] = x;
            }
        }
        tails.len()
    }

    fn dense_lcs_len(a: &[u32], b: &[u32]) -> usize {
        let mut prev = vec![0usize; b.len() + 1];
        let mut cur = vec![0usize; b.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                cur[j] = if a[i - 1] == b[j - 1] {
                    prev[j - 1] + 1
                } else {
                    prev[j].max(cur[j - 1])
                };
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }
}
