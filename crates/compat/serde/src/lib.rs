//! Offline marker-trait stand-in for `serde` (see `crates/compat/README.md`).
//!
//! `Serialize` here is an empty marker trait, and `#[derive(Serialize)]`
//! (re-exported from the sibling no-op `serde_derive`) expands to nothing, so
//! code annotated for serde compiles unchanged.  All real serialization in
//! this workspace is explicit formatting code.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
