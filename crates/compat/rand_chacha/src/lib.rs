//! Offline stand-in for `rand_chacha::ChaCha8Rng`.
//!
//! Same determinism contract as the real crate — the stream is a pure function
//! of the seed — but the underlying generator is xoshiro256** seeded through
//! splitmix64 rather than actual ChaCha.  Everything in this workspace only
//! relies on seeded determinism, never on the specific stream, so the two are
//! interchangeable here (see `crates/compat/README.md`).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator mirroring `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        ChaCha8Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let x: u64 = r.gen_range(10u64..20);
        assert!((10..20).contains(&x));
    }
}
