//! API-compatible stand-in for the subset of [rayon] this workspace uses —
//! now with a real thread pool.
//!
//! The build environment has no access to crates.io, so the workspace routes
//! `rayon = { path = ... }` at this crate instead (see `crates/compat/README.md`).
//! With the default `threads` feature the shim executes work on a lazily
//! created `std::thread` worker pool with chunked work-stealing deques
//! ([`mod@pool`]): `join` forks its second closure onto the pool, and the
//! `ParIter` combinators split their input into grains that workers (and the
//! calling thread, which always helps) execute concurrently.  The pool size
//! comes from `RAYON_NUM_THREADS` or [`std::thread::available_parallelism`],
//! and `ThreadPoolBuilder::num_threads` + `ThreadPool::install` override it
//! for a closure's dynamic extent exactly like real rayon.
//!
//! Without the `threads` feature every combinator degrades to the original
//! sequential shim: `join` runs its closures back to back and the iterators
//! drive a plain `std` iterator on the calling thread.
//!
//! # Execution model
//!
//! A pipeline is a [`Producer`] — a splittable description of the input plus
//! the fused adaptor closures.  A terminal operation picks a *grain size*
//! from the input length, the effective thread count, and the
//! [`ParIter::with_min_len`] / [`ParIter::with_max_len`] hints (real
//! granularity controls here, not no-ops), then recursively `join`-splits the
//! producer down to grains.  Grain results are always combined **in order**,
//! so order-sensitive terminals (`collect`, `min`, `reduce_with` with a
//! positional tie-break) return the same value for every thread count and
//! grain size as long as the combining operation is associative — the
//! determinism contract the engine's tests pin down.
//!
//! # Semantic fine print (matching real rayon)
//!
//! * [`ParIter::reduce`] may invoke its identity closure **once per grain**
//!   (plus once for the final fold), not exactly once: the identity must be a
//!   true neutral element of `op`, or results will vary with the grain count.
//! * [`ParIter::min`] keeps the **first** minimum and [`ParIter::max`] the
//!   **last** maximum (the `std::iter` tie rules), independent of splitting.
//! * Adaptor closures need `Fn + Send + Sync` because grains run on pool
//!   threads; the sequential build imposes the same bounds so both feature
//!   configurations compile the same call sites.
//!
//! [rayon]: https://docs.rs/rayon

#![deny(unsafe_code)]

use std::marker::PhantomData;
#[cfg(feature = "threads")]
use std::sync::Arc;

#[cfg(feature = "threads")]
#[allow(unsafe_code)]
mod pool;

/// Run both closures, returning both results; with the `threads` feature the
/// second closure is queued on the pool (and reclaimed by the caller if no
/// worker picked it up — the work-stealing fast path).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    #[cfg(feature = "threads")]
    {
        if pool::effective_threads() > 1 {
            return pool::join(a, b);
        }
    }
    (a(), b())
}

/// Number of threads parallel work may currently use: the innermost
/// [`ThreadPool::install`] override, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism (always 1 without the `threads` feature).
pub fn current_num_threads() -> usize {
    #[cfg(feature = "threads")]
    {
        pool::effective_threads()
    }
    #[cfg(not(feature = "threads"))]
    {
        1
    }
}

/// Cumulative pool dispatch diagnostics: `(injector pushes, worker wakeups)`.
///
/// Not part of the real rayon API — a shim extension used to *prove* the
/// per-round dispatch fast path: code that must bypass the pool (sub-grain
/// cordon rounds, the `SEQ_CUTOFF` sequential path) asserts that the deltas
/// across the region are zero.  Both counters are monotone process-global
/// totals; always `(0, 0)` without the `threads` feature.
pub fn dispatch_diagnostics() -> (u64, u64) {
    #[cfg(feature = "threads")]
    {
        pool::dispatch_counters()
    }
    #[cfg(not(feature = "threads"))]
    {
        (0, 0)
    }
}

/// Scoped task spawning, mirroring `rayon::scope`: tasks may borrow the
/// enclosing stack frame and are all guaranteed to finish before `scope`
/// returns (on panic too).  Tasks run on the pool when `threads` is enabled
/// and more than one thread is effective; inline otherwise.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    #[cfg(feature = "threads")]
    {
        // Wait for outstanding jobs even if `f` unwinds: the jobs borrow the
        // caller's frame, so leaving before they finish would be unsound.
        struct WaitGuard(Option<Arc<pool::ScopeCore>>);
        impl Drop for WaitGuard {
            fn drop(&mut self) {
                if let Some(core) = self.0.take() {
                    core.wait_jobs();
                }
            }
        }
        let core = pool::ScopeCore::new();
        let scope = Scope {
            core: Arc::clone(&core),
            marker: PhantomData,
        };
        let mut guard = WaitGuard(Some(core));
        let result = f(&scope);
        let core = guard.0.take().expect("scope guard consumed twice");
        drop(guard);
        core.wait_jobs();
        if let Some(payload) = core.take_panic() {
            std::panic::resume_unwind(payload);
        }
        result
    }
    #[cfg(not(feature = "threads"))]
    {
        f(&Scope {
            marker: PhantomData,
        })
    }
}

/// Mirrors `rayon::Scope`; handed to the `scope` closure and to every spawned
/// task so tasks can spawn further tasks.
pub struct Scope<'scope> {
    #[cfg(feature = "threads")]
    core: Arc<pool::ScopeCore>,
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the scope; it runs concurrently with the caller and
    /// completes before the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        #[cfg(feature = "threads")]
        {
            if pool::effective_threads() > 1 {
                let core = Arc::clone(&self.core);
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let inner = Scope {
                        core,
                        marker: PhantomData,
                    };
                    body(&inner);
                });
                // SAFETY(contract): `scope()` waits on this core's latch
                // before returning, on the normal and the unwind path alike,
                // so the job cannot outlive the frame it borrows.
                // analyze: allow(unsafe-whitelist): the one caller of the
                // pool's lifetime-erasing `spawn_erased`; the unsafety is
                // discharged by the latch contract documented above.
                #[allow(unsafe_code)]
                unsafe {
                    self.core.spawn_erased(job)
                };
                return;
            }
        }
        body(self);
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError`; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Create a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request an explicit thread count (0 keeps the global default).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool handle; never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// A handle configuring how many threads parallel work inside
/// [`ThreadPool::install`] may use.  All handles share the one global worker
/// set (grown on demand), like rayon pools share a global registry per pool.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the effective parallelism.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        #[cfg(feature = "threads")]
        {
            let _guard = pool::install_threads(self.num_threads);
            f()
        }
        #[cfg(not(feature = "threads"))]
        {
            f()
        }
    }

    /// The thread count the pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Producers: splittable pipeline descriptions.
// ---------------------------------------------------------------------------

/// A splittable, exactly-once-consumable description of a parallel pipeline:
/// the input range/slice plus the fused adaptor closures.
///
/// `len` is the exact element count for [`IndexedProducer`]s and an upper
/// bound (a splitting hint) for filtering/flattening producers.
#[allow(clippy::len_without_is_empty)] // `len` is a splitting hint, not a container size
pub trait Producer: Sized + Send {
    /// Element type produced.
    type Item: Send;
    /// Sequential iterator driving one grain.
    type IntoIter: Iterator<Item = Self::Item>;
    /// Exact length (indexed) or upper-bound splitting hint (unindexed).
    fn len(&self) -> usize;
    /// Split into `[0, index)` and `[index, len)` (indices of the *base*
    /// input for unindexed producers).
    fn split_at(self, index: usize) -> (Self, Self);
    /// Consume this producer sequentially.
    fn into_seq(self) -> Self::IntoIter;
}

/// Marker for producers whose [`Producer::len`] is exact and whose items have
/// fixed positions — required by `enumerate`, `zip` and `collect_into_vec`
/// (mirrors rayon's `IndexedParallelIterator`).
pub trait IndexedProducer: Producer {}

/// Pick the grain size for an input of `len` items: roughly
/// `len / (4 × threads)` — a few grains per thread so work stealing can
/// balance uneven grains — clamped to the `with_min_len`/`with_max_len`
/// hints.
fn grain_size(len: usize, min_len: usize, max_len: usize) -> usize {
    let threads = current_num_threads().max(1);
    let balanced = len.div_ceil(threads * 4).max(1);
    let floor = min_len.max(1);
    balanced.clamp(floor, max_len.max(floor))
}

/// Split `p` into grains of at most `grain` items, run `map` on each grain,
/// and fold the grain results **in order** with `combine`.
#[cfg(feature = "threads")]
fn map_reduce<P, T, M, C>(p: P, grain: usize, map: &M, combine: &C) -> T
where
    P: Producer,
    T: Send,
    M: Fn(P) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let len = p.len();
    if len <= grain.max(1) {
        return map(p);
    }
    // Split at a grain multiple so grain boundaries are a function of the
    // input length alone, not of the recursion path.
    let half_grains = len.div_ceil(grain).div_ceil(2);
    let mid = (half_grains * grain).min(len - 1).max(1);
    let (left, right) = p.split_at(mid);
    let (tl, tr) = pool::join(
        || map_reduce(left, grain, map, combine),
        || map_reduce(right, grain, map, combine),
    );
    combine(tl, tr)
}

/// Write every item of `p` into `out` at its index, splitting in parallel.
#[cfg(feature = "threads")]
fn fill_slots<P>(p: P, grain: usize, out: &mut [std::mem::MaybeUninit<P::Item>])
where
    P: IndexedProducer,
{
    debug_assert_eq!(p.len(), out.len());
    if p.len() <= grain.max(1) {
        for (slot, item) in out.iter_mut().zip(p.into_seq()) {
            slot.write(item);
        }
        return;
    }
    let mid = p.len() / 2;
    let (pl, pr) = p.split_at(mid);
    let (ol, or) = out.split_at_mut(mid);
    pool::join(|| fill_slots(pl, grain, ol), || fill_slots(pr, grain, or));
}

// --- base producer: numeric ranges -----------------------------------------

/// Integer types accepted by `into_par_iter()` on ranges.
pub trait RangeInt: Copy + PartialOrd + Send + Sync {
    /// `self + n`, where `n` is known to stay within the original range.
    fn offset(self, n: usize) -> Self;
    /// Elements in `self..end` (0 when `end <= self`).
    fn distance_to(self, end: Self) -> usize;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn offset(self, n: usize) -> Self {
                self + n as $t
            }
            #[inline]
            fn distance_to(self, end: Self) -> usize {
                if end > self { (end - self) as usize } else { 0 }
            }
        }
    )*};
}

impl_range_int!(usize, u32, u64, i32, i64);

/// Producer over a numeric range.
pub struct RangeProducer<T> {
    next: T,
    remaining: usize,
}

impl<T: RangeInt> Producer for RangeProducer<T> {
    type Item = T;
    type IntoIter = RangeSeq<T>;

    fn len(&self) -> usize {
        self.remaining
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        debug_assert!(index <= self.remaining);
        (
            RangeProducer {
                next: self.next,
                remaining: index,
            },
            RangeProducer {
                next: self.next.offset(index),
                remaining: self.remaining - index,
            },
        )
    }

    fn into_seq(self) -> RangeSeq<T> {
        RangeSeq {
            next: self.next,
            remaining: self.remaining,
        }
    }
}

impl<T: RangeInt> IndexedProducer for RangeProducer<T> {}

/// Sequential counterpart of [`RangeProducer`].
pub struct RangeSeq<T> {
    next: T,
    remaining: usize,
}

impl<T: RangeInt> Iterator for RangeSeq<T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        if self.remaining == 0 {
            return None;
        }
        let value = self.next;
        self.next = value.offset(1);
        self.remaining -= 1;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

// --- base producers: slices -------------------------------------------------

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceProducer { slice: l }, SliceProducer { slice: r })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

impl<T: Sync> IndexedProducer for SliceProducer<'_, T> {}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: l }, SliceMutProducer { slice: r })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

impl<T: Send> IndexedProducer for SliceMutProducer<'_, T> {}

/// Producer over `chunk_size`-sized pieces of `&[T]` (split indices are in
/// chunk units).
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elem = (index * self.chunk_size).min(self.slice.len());
        let (l, r) = self.slice.split_at(elem);
        (
            ChunksProducer {
                slice: l,
                chunk_size: self.chunk_size,
            },
            ChunksProducer {
                slice: r,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks(self.chunk_size)
    }
}

impl<T: Sync> IndexedProducer for ChunksProducer<'_, T> {}

/// Producer over `chunk_size`-sized mutable pieces of `&mut [T]`.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elem = (index * self.chunk_size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elem);
        (
            ChunksMutProducer {
                slice: l,
                chunk_size: self.chunk_size,
            },
            ChunksMutProducer {
                slice: r,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.chunk_size)
    }
}

impl<T: Send> IndexedProducer for ChunksMutProducer<'_, T> {}

// --- adaptor producers ------------------------------------------------------

/// `map` adaptor: applies `f` to every item.
pub struct MapProducer<P, F, R> {
    base: P,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<P, F, R> Producer for MapProducer<P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync + Clone,
    R: Send,
{
    type Item = R;
    type IntoIter = MapSeq<P::IntoIter, F, R>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapProducer {
                base: l,
                f: self.f.clone(),
                _r: PhantomData,
            },
            MapProducer {
                base: r,
                f: self.f,
                _r: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        MapSeq {
            inner: self.base.into_seq(),
            f: self.f,
            _r: PhantomData,
        }
    }
}

impl<P, F, R> IndexedProducer for MapProducer<P, F, R>
where
    P: IndexedProducer,
    F: Fn(P::Item) -> R + Send + Sync + Clone,
    R: Send,
{
}

/// Sequential counterpart of [`MapProducer`].
pub struct MapSeq<I, F, R> {
    inner: I,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<I, F, R> Iterator for MapSeq<I, F, R>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    #[inline]
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// `filter` adaptor (unindexed: `len` becomes an upper bound).
pub struct FilterProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync + Clone,
{
    type Item = P::Item;
    type IntoIter = FilterSeq<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterProducer {
                base: l,
                f: self.f.clone(),
            },
            FilterProducer { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        FilterSeq {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential counterpart of [`FilterProducer`].
pub struct FilterSeq<I, F> {
    inner: I,
    f: F,
}

impl<I, F> Iterator for FilterSeq<I, F>
where
    I: Iterator,
    F: Fn(&I::Item) -> bool,
{
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.inner.by_ref().find(|x| (self.f)(x))
    }
}

/// `filter_map` adaptor (unindexed).
pub struct FilterMapProducer<P, F, R> {
    base: P,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<P, F, R> Producer for FilterMapProducer<P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> Option<R> + Send + Sync + Clone,
    R: Send,
{
    type Item = R;
    type IntoIter = FilterMapSeq<P::IntoIter, F, R>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterMapProducer {
                base: l,
                f: self.f.clone(),
                _r: PhantomData,
            },
            FilterMapProducer {
                base: r,
                f: self.f,
                _r: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        FilterMapSeq {
            inner: self.base.into_seq(),
            f: self.f,
            _r: PhantomData,
        }
    }
}

/// Sequential counterpart of [`FilterMapProducer`].
pub struct FilterMapSeq<I, F, R> {
    inner: I,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<I, F, R> Iterator for FilterMapSeq<I, F, R>
where
    I: Iterator,
    F: Fn(I::Item) -> Option<R>,
{
    type Item = R;

    #[inline]
    fn next(&mut self) -> Option<R> {
        for x in self.inner.by_ref() {
            if let Some(y) = (self.f)(x) {
                return Some(y);
            }
        }
        None
    }
}

/// `flat_map_iter` adaptor: flat-maps through a *serial* iterator per item
/// (unindexed; `len` counts base items, as a splitting hint).
pub struct FlatMapIterProducer<P, F, U: IntoIterator> {
    base: P,
    f: F,
    _u: PhantomData<fn() -> U>,
}

impl<P, F, U> Producer for FlatMapIterProducer<P, F, U>
where
    P: Producer,
    F: Fn(P::Item) -> U + Send + Sync + Clone,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;
    type IntoIter = FlatMapIterSeq<P::IntoIter, F, U>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMapIterProducer {
                base: l,
                f: self.f.clone(),
                _u: PhantomData,
            },
            FlatMapIterProducer {
                base: r,
                f: self.f,
                _u: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        FlatMapIterSeq {
            inner: self.base.into_seq(),
            f: self.f,
            current: None,
        }
    }
}

/// Sequential counterpart of [`FlatMapIterProducer`].
pub struct FlatMapIterSeq<I, F, U: IntoIterator> {
    inner: I,
    f: F,
    current: Option<U::IntoIter>,
}

impl<I, F, U> Iterator for FlatMapIterSeq<I, F, U>
where
    I: Iterator,
    F: Fn(I::Item) -> U,
    U: IntoIterator,
{
    type Item = U::Item;

    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(cur) = &mut self.current {
                if let Some(item) = cur.next() {
                    return Some(item);
                }
            }
            match self.inner.next() {
                Some(x) => self.current = Some((self.f)(x).into_iter()),
                None => return None,
            }
        }
    }
}

/// `flatten` adaptor (unindexed; `len` counts outer items).
pub struct FlattenProducer<P> {
    base: P,
}

impl<P> Producer for FlattenProducer<P>
where
    P: Producer,
    P::Item: IntoIterator,
    <P::Item as IntoIterator>::Item: Send,
{
    type Item = <P::Item as IntoIterator>::Item;
    type IntoIter = FlattenSeq<P::IntoIter, P::Item>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (FlattenProducer { base: l }, FlattenProducer { base: r })
    }

    fn into_seq(self) -> Self::IntoIter {
        FlattenSeq {
            inner: self.base.into_seq(),
            current: None,
        }
    }
}

/// Sequential counterpart of [`FlattenProducer`].
pub struct FlattenSeq<I, U: IntoIterator> {
    inner: I,
    current: Option<U::IntoIter>,
}

impl<I, U> Iterator for FlattenSeq<I, U>
where
    I: Iterator<Item = U>,
    U: IntoIterator,
{
    type Item = U::Item;

    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(cur) = &mut self.current {
                if let Some(item) = cur.next() {
                    return Some(item);
                }
            }
            match self.inner.next() {
                Some(x) => self.current = Some(x.into_iter()),
                None => return None,
            }
        }
    }
}

/// `enumerate` adaptor; splitting offsets the right half's base index.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: IndexedProducer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateSeq<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        EnumerateSeq {
            inner: self.base.into_seq(),
            index: self.offset,
        }
    }
}

impl<P: IndexedProducer> IndexedProducer for EnumerateProducer<P> {}

/// Sequential counterpart of [`EnumerateProducer`].
pub struct EnumerateSeq<I> {
    inner: I,
    index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    #[inline]
    fn next(&mut self) -> Option<(usize, I::Item)> {
        let item = self.inner.next()?;
        let index = self.index;
        self.index += 1;
        Some((index, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// `zip` adaptor over two indexed producers (truncates to the shorter).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedProducer, B: IndexedProducer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

impl<A: IndexedProducer, B: IndexedProducer> IndexedProducer for ZipProducer<A, B> {}

/// `cloned` adaptor.
pub struct ClonedProducer<P> {
    base: P,
}

impl<'a, T, P> Producer for ClonedProducer<P>
where
    T: Clone + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Cloned<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (ClonedProducer { base: l }, ClonedProducer { base: r })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.base.into_seq().cloned()
    }
}

impl<'a, T, P> IndexedProducer for ClonedProducer<P>
where
    T: Clone + Send + Sync + 'a,
    P: IndexedProducer<Item = &'a T>,
{
}

/// `copied` adaptor.
pub struct CopiedProducer<P> {
    base: P,
}

impl<'a, T, P> Producer for CopiedProducer<P>
where
    T: Copy + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Copied<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (CopiedProducer { base: l }, CopiedProducer { base: r })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.base.into_seq().copied()
    }
}

impl<'a, T, P> IndexedProducer for CopiedProducer<P>
where
    T: Copy + Send + Sync + 'a,
    P: IndexedProducer<Item = &'a T>,
{
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing pipeline handle.
// ---------------------------------------------------------------------------

/// The parallel-iterator facade over a [`Producer`], carrying the granularity
/// hints.  Terminal operations split the producer into grains and run them
/// across the pool (see the crate docs for the execution model).
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
    max_len: usize,
}

fn par<P: Producer>(producer: P) -> ParIter<P> {
    ParIter {
        producer,
        min_len: 1,
        max_len: usize::MAX,
    }
}

impl<P: Producer> ParIter<P> {
    /// Run `map` on every grain and fold the grain results in order.
    fn drive<T, M, C>(self, map: M, combine: C) -> T
    where
        T: Send,
        M: Fn(P) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        let len = self.producer.len();
        let grain = grain_size(len, self.min_len, self.max_len);
        #[cfg(feature = "threads")]
        {
            if pool::effective_threads() > 1 && len > grain {
                return map_reduce(self.producer, grain, &map, &combine);
            }
        }
        let _ = (grain, &combine);
        map(self.producer)
    }

    // --- adaptors ---------------------------------------------------------

    /// Apply `f` to every item.
    pub fn map<R, F>(self, f: F) -> ParIter<MapProducer<P, F, R>>
    where
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        let producer = MapProducer {
            base: self.producer,
            f,
            _r: PhantomData,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Keep only the items matching `f`.
    pub fn filter<F>(self, f: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        ParIter {
            producer: FilterProducer {
                base: self.producer,
                f,
            },
            min_len,
            max_len,
        }
    }

    /// Map-and-filter in one pass.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<FilterMapProducer<P, F, R>>
    where
        F: Fn(P::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        let producer = FilterMapProducer {
            base: self.producer,
            f,
            _r: PhantomData,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// rayon's `flat_map_iter`: flat-map each item through a *serial*
    /// iterator (the parallelism stays at the outer level).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<FlatMapIterProducer<P, F, U>>
    where
        F: Fn(P::Item) -> U + Send + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        let producer = FlatMapIterProducer {
            base: self.producer,
            f,
            _u: PhantomData,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Flatten nested iterables (outer level parallel, inner serial).
    pub fn flatten(self) -> ParIter<FlattenProducer<P>>
    where
        P::Item: IntoIterator,
        <P::Item as IntoIterator>::Item: Send,
    {
        let producer = FlattenProducer {
            base: self.producer,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair every item with its index (requires an indexed pipeline).
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>>
    where
        P: IndexedProducer,
    {
        let producer = EnumerateProducer {
            base: self.producer,
            offset: 0,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair items positionally with `other` (both sides indexed; truncates to
    /// the shorter input).
    pub fn zip<Q>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>>
    where
        P: IndexedProducer,
        Q: IndexedProducer,
    {
        let producer = ZipProducer {
            a: self.producer,
            b: other.producer,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Clone out of `&T` items.
    pub fn cloned<'a, T>(self) -> ParIter<ClonedProducer<P>>
    where
        T: Clone + Send + Sync + 'a,
        P: Producer<Item = &'a T>,
    {
        let producer = ClonedProducer {
            base: self.producer,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Copy out of `&T` items.
    pub fn copied<'a, T>(self) -> ParIter<CopiedProducer<P>>
    where
        T: Copy + Send + Sync + 'a,
        P: Producer<Item = &'a T>,
    {
        let producer = CopiedProducer {
            base: self.producer,
        };
        ParIter {
            producer,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Never split below `min` items per grain: small inputs run sequentially
    /// on the calling thread with no pool round-trip.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Never let one grain exceed `max` items.
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max.max(1);
        self
    }

    // --- terminal operations ---------------------------------------------

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        self.drive(|grain| grain.into_seq().for_each(&f), |(), ()| ());
    }

    /// Collect into any `FromIterator` container, preserving input order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = self.drive(
            |grain| {
                let mut out = Vec::with_capacity(grain.len());
                out.extend(grain.into_seq());
                out
            },
            |mut left, right: Vec<P::Item>| {
                left.extend(right);
                left
            },
        );
        C::from_iter(parts)
    }

    /// Reduce with an identity.  The identity closure may run **once per
    /// grain** (grain count varies with thread count and the
    /// `with_min_len`/`with_max_len` hints), so it must produce a true
    /// neutral element of `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        self.drive(|grain| grain.into_seq().fold(identity(), &op), &op)
    }

    /// Reduce without an identity; `None` when the pipeline is empty.
    pub fn reduce_with<OP>(self, op: OP) -> Option<P::Item>
    where
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        self.drive(
            |grain| grain.into_seq().reduce(&op),
            |left, right| match (left, right) {
                (Some(l), Some(r)) => Some(op(l, r)),
                (l, r) => l.or(r),
            },
        )
    }

    /// Minimum item; ties keep the **first** (leftmost) occurrence, matching
    /// `std::iter::Iterator::min` for every thread count.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.drive(
            |grain| grain.into_seq().min(),
            |left, right| match (left, right) {
                (Some(l), Some(r)) => Some(if r < l { r } else { l }),
                (l, r) => l.or(r),
            },
        )
    }

    /// Maximum item; ties keep the **last** (rightmost) occurrence, matching
    /// `std::iter::Iterator::max` for every thread count.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.drive(
            |grain| grain.into_seq().max(),
            |left, right| match (left, right) {
                (Some(l), Some(r)) => Some(if r >= l { r } else { l }),
                (l, r) => l.or(r),
            },
        )
    }

    /// Sum the items (partial sums are combined left to right).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        self.drive(
            |grain| grain.into_seq().sum::<S>(),
            |left, right| std::iter::once(left).chain(std::iter::once(right)).sum(),
        )
    }

    /// Number of items produced.
    pub fn count(self) -> usize {
        self.drive(|grain| grain.into_seq().count(), |a, b| a + b)
    }
}

impl<P: IndexedProducer> ParIter<P> {
    /// Exact number of items this indexed pipeline will produce.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// Collect into `target`, reusing its allocation: the buffer is cleared
    /// and grown at most once, and each grain writes its items directly into
    /// the final positions.  With warm (pre-sized) buffers this performs no
    /// heap allocation — the engine's zero-allocation round path.
    ///
    /// If a pipeline closure panics, `target` is left empty and the items
    /// already written are leaked (never dropped), as with real rayon.
    #[allow(unsafe_code)]
    pub fn collect_into_vec(self, target: &mut Vec<P::Item>) {
        let len = self.producer.len();
        target.clear();
        target.reserve(len);
        #[cfg(feature = "threads")]
        {
            let grain = grain_size(len, self.min_len, self.max_len);
            if pool::effective_threads() > 1 && len > grain {
                let spare = &mut target.spare_capacity_mut()[..len];
                fill_slots(self.producer, grain, spare);
                // SAFETY: `fill_slots` wrote every one of the `len` reserved
                // slots exactly once (indexed producers yield exactly `len`
                // items); on panic we never get here and `target` stays empty.
                // analyze: allow(unsafe-whitelist): `set_len` after a fully
                // initialized spare-capacity fill — the shim's zero-alloc
                // collect path, justified by the SAFETY note above.
                unsafe { target.set_len(len) };
                return;
            }
        }
        target.extend(self.producer.into_seq());
    }
}

// ---------------------------------------------------------------------------
// Conversion traits.
// ---------------------------------------------------------------------------

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// The element type.
    type Item: Send;
    /// Convert into the parallel facade.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParIter<RangeProducer<$t>>;
            type Item = $t;
            fn into_par_iter(self) -> Self::Iter {
                par(RangeProducer {
                    next: self.start,
                    remaining: self.start.distance_to(self.end),
                })
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Iter = ParIter<RangeProducer<$t>>;
            type Item = $t;
            fn into_par_iter(self) -> Self::Iter {
                let (start, end) = self.into_inner();
                // `start.distance_to(end) + 1` would overflow only for a
                // range covering the full usize domain, which no DP index
                // space here reaches.
                let remaining = if start > end {
                    0
                } else {
                    start.distance_to(end) + 1
                };
                par(RangeProducer {
                    next: start,
                    remaining,
                })
            }
        }
    )*};
}

impl_range_into_par_iter!(usize, u32, u64, i32, i64);

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data [T] {
    type Iter = ParIter<SliceProducer<'data, T>>;
    type Item = &'data T;
    fn into_par_iter(self) -> Self::Iter {
        par(SliceProducer { slice: self })
    }
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data Vec<T> {
    type Iter = ParIter<SliceProducer<'data, T>>;
    type Item = &'data T;
    fn into_par_iter(self) -> Self::Iter {
        par(SliceProducer { slice: self })
    }
}

impl<'data, T: Send + 'data> IntoParallelIterator for &'data mut [T] {
    type Iter = ParIter<SliceMutProducer<'data, T>>;
    type Item = &'data mut T;
    fn into_par_iter(self) -> Self::Iter {
        par(SliceMutProducer { slice: self })
    }
}

impl<'data, T: Send + 'data> IntoParallelIterator for &'data mut Vec<T> {
    type Iter = ParIter<SliceMutProducer<'data, T>>;
    type Item = &'data mut T;
    fn into_par_iter(self) -> Self::Iter {
        par(SliceMutProducer { slice: self })
    }
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Iter = Self;
    type Item = P::Item;
    fn into_par_iter(self) -> Self {
        self
    }
}

/// `par_iter` on shared references, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;
    /// The element type (a shared reference).
    type Item: Send + 'data;
    /// Iterate over shared references.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoParallelIterator,
{
    type Iter = <&'data T as IntoParallelIterator>::Iter;
    type Item = <&'data T as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut` on unique references, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The parallel iterator type.
    type Iter;
    /// The element type (a unique reference).
    type Item: Send + 'data;
    /// Iterate over unique references.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoParallelIterator,
{
    type Iter = <&'data mut T as IntoParallelIterator>::Iter;
    type Item = <&'data mut T as IntoParallelIterator>::Item;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Chunked iteration over shared slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Iterate over `chunk_size`-sized chunks (the last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must not be zero");
        par(ChunksProducer {
            slice: self,
            chunk_size,
        })
    }
}

/// Chunked iteration over mutable slices, mirroring
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Iterate over `chunk_size`-sized mutable chunks (the last may be
    /// shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must not be zero");
        par(ChunksMutProducer {
            slice: self,
            chunk_size,
        })
    }
}

/// Everything call sites normally get from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Run `f` under an installed pool of `n` threads (no-op without the
    /// `threads` feature, where everything is sequential anyway).
    fn at_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap();
        pool.install(f)
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_spawned_tasks_complete_before_return() {
        let hits = AtomicUsize::new(0);
        at_threads(4, || {
            super::scope(|s| {
                for _ in 0..32 {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_scope_spawns_complete() {
        let hits = AtomicUsize::new(0);
        at_threads(4, || {
            super::scope(|s| {
                s.spawn(|s| {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn par_iter_combinators_match_std() {
        let v = vec![3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        assert_eq!(v.par_iter().copied().min(), Some(1));
        let total: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(total, 45);
        assert_eq!((0..5usize).into_par_iter().reduce(|| 0, |a, b| a + b), 10);
        assert_eq!(
            v.par_iter().map(|&x| x).reduce_with(|a, b| a.min(b)),
            Some(1)
        );
    }

    #[test]
    fn par_iter_mut_and_chunks() {
        let mut v = vec![0usize; 10];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i);
        assert_eq!(v[9], 9);
        let sums: Vec<usize> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
        v.par_chunks_mut(5).for_each(|c| c[0] = 100);
        assert_eq!(v[0], 100);
        assert_eq!(v[5], 100);
    }

    #[test]
    fn thread_pool_installs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        #[cfg(feature = "threads")]
        assert_eq!(pool.install(super::current_num_threads), 4);
    }

    #[test]
    fn threaded_map_collect_preserves_order() {
        let n = 10_000usize;
        let expect: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 8] {
            let got: Vec<usize> = at_threads(threads, || {
                (0..n).into_par_iter().map(|i| i * 3 + 1).collect()
            });
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn min_max_tie_rules_are_thread_count_independent() {
        // Equal keys with distinct payloads expose the tie rule: min keeps
        // the first occurrence, max the last, like std::iter.
        let items: Vec<(u32, usize)> = (0..5000).map(|i| (0, i)).collect();
        for threads in [1, 2, 8] {
            let (min, max) = at_threads(threads, || {
                let min = items.par_iter().map(|&(k, _)| (k, ())).min();
                let max = items.par_iter().map(|&(k, _)| (k, ())).max();
                (min, max)
            });
            assert_eq!(min, Some((0, ())), "threads {threads}");
            assert_eq!(max, Some((0, ())), "threads {threads}");
        }
        // Payload-carrying comparison: total order makes ties impossible, so
        // min/max agree exactly across thread counts.
        for threads in [1, 2, 8] {
            let min = at_threads(threads, || items.par_iter().copied().min());
            assert_eq!(min, Some((0, 0)), "threads {threads}");
            let max = at_threads(threads, || items.par_iter().copied().max());
            assert_eq!(max, Some((0, 4999)), "threads {threads}");
        }
    }

    #[test]
    fn reduce_identity_runs_once_per_grain() {
        let n = 8192usize;
        let calls = AtomicUsize::new(0);
        let sum = at_threads(8, || {
            (0..n).into_par_iter().with_max_len(1024).reduce(
                || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    0
                },
                |a, b| a + b,
            )
        });
        assert_eq!(sum, n * (n - 1) / 2);
        // The identity ran at least once; under the threaded pool it runs
        // once per grain (n / max_len = 8 grains here).
        let grains = calls.load(Ordering::Relaxed);
        assert!(grains >= 1);
        #[cfg(feature = "threads")]
        assert!(grains >= 8, "expected >= 8 identity calls, got {grains}");
    }

    #[test]
    fn with_min_len_forces_sequential_execution() {
        let n = 8192usize;
        let calls = AtomicUsize::new(0);
        let sum = at_threads(8, || {
            (0..n).into_par_iter().with_min_len(n).reduce(
                || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    0
                },
                |a, b| a + b,
            )
        });
        assert_eq!(sum, n * (n - 1) / 2);
        // One grain -> the identity ran exactly once: the granularity hint is
        // a real control, not a no-op.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn filter_and_flat_map_iter_preserve_order_across_threads() {
        let n = 6000usize;
        let expect: Vec<usize> = (0..n)
            .filter(|i| i % 3 == 0)
            .flat_map(|i| [i, i + 1])
            .collect();
        for threads in [1, 2, 8] {
            let got: Vec<usize> = at_threads(threads, || {
                (0..n)
                    .into_par_iter()
                    .filter(|i| i % 3 == 0)
                    .flat_map_iter(|i| [i, i + 1])
                    .collect()
            });
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn zip_and_enumerate_line_up() {
        let a: Vec<u32> = (0..5000).collect();
        let mut b: Vec<u64> = vec![0; 5000];
        at_threads(8, || {
            b.par_iter_mut()
                .zip(a.par_iter())
                .enumerate()
                .for_each(|(i, (slot, &x))| *slot = (i as u64) * 1000 + x as u64);
        });
        for (i, &v) in b.iter().enumerate() {
            assert_eq!(v, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn collect_into_vec_reuses_the_allocation() {
        let n = 40_000usize;
        let mut buf: Vec<usize> = Vec::new();
        at_threads(8, || {
            (0..n)
                .into_par_iter()
                .map(|i| i ^ 1)
                .collect_into_vec(&mut buf);
        });
        assert_eq!(buf.len(), n);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i ^ 1));
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        at_threads(8, || {
            (0..n)
                .into_par_iter()
                .map(|i| i ^ 2)
                .collect_into_vec(&mut buf);
        });
        assert_eq!(buf.as_ptr(), ptr, "warm buffer must not reallocate");
        assert_eq!(buf.capacity(), cap);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i ^ 2));
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // deliberately exercises an empty `..=` range
    fn inclusive_and_signed_ranges_work() {
        let got: Vec<usize> = (10..=14usize).into_par_iter().collect();
        assert_eq!(got, vec![10, 11, 12, 13, 14]);
        let got: Vec<i64> = (-3i64..3).into_par_iter().collect();
        assert_eq!(got, vec![-3, -2, -1, 0, 1, 2]);
        let empty: Vec<usize> = (5..=4usize).into_par_iter().collect();
        assert!(empty.is_empty());
    }

    #[test]
    #[cfg(feature = "threads")]
    fn panics_in_parallel_closures_propagate() {
        let result = std::panic::catch_unwind(|| {
            at_threads(4, || {
                (0..10_000usize)
                    .into_par_iter()
                    .for_each(|i| assert!(i < 5000, "boom"));
            })
        });
        assert!(result.is_err());
    }
}
