//! Sequential, API-compatible stand-in for the subset of [rayon] this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace routes
//! `rayon = { path = ... }` at this crate instead (see `crates/compat/README.md`).
//! Every combinator executes eagerly on the calling thread: `join` runs its
//! closures back to back, and the `par_*` iterators are thin wrappers over the
//! corresponding `std` iterators.  This preserves the *work* of every
//! algorithm exactly — which is what the repo's tests and metrics assert — and
//! degrades only the span.  Swapping the real rayon back in requires nothing
//! but a manifest change, because the API surface mirrored here is the real
//! one.
//!
//! [rayon]: https://docs.rs/rayon

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Run both closures and return their results ("fork-join" with no fork).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Scoped task spawning: tasks run immediately when spawned.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        marker: PhantomData,
    })
}

/// Mirrors `rayon::Scope`; `spawn` executes the task inline.
pub struct Scope<'scope> {
    marker: PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Run `body` immediately.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        body(self);
    }
}

/// Number of worker threads in the "pool" (always 1 in the sequential shim).
pub fn current_num_threads() -> usize {
    1
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError`; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Create a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the requested thread count (informational only).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the (sequential) pool; never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// A "thread pool" that runs everything on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` "inside" the pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        f()
    }

    /// The thread count the pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The parallel-iterator facade: wraps a std iterator and forwards the
/// rayon-flavoured combinators to it.
#[derive(Debug, Clone)]
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Wrap an iterator in the parallel facade.
    pub fn new(inner: I) -> Self {
        ParIter(inner)
    }

    /// See [`Iterator::map`].
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// See [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// See [`Iterator::filter`].
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// See [`Iterator::filter_map`].
    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// rayon's `flat_map_iter`: flat-map through a *serial* iterator.
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// See [`Iterator::flatten`].
    pub fn flatten(self) -> ParIter<std::iter::Flatten<I>>
    where
        I::Item: IntoIterator,
    {
        ParIter(self.0.flatten())
    }

    /// See [`Iterator::zip`].
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other))
    }

    /// See [`Iterator::cloned`].
    pub fn cloned<'a, T>(self) -> ParIter<std::iter::Cloned<I>>
    where
        T: 'a + Clone,
        I: Iterator<Item = &'a T>,
    {
        ParIter(self.0.cloned())
    }

    /// See [`Iterator::copied`].
    pub fn copied<'a, T>(self) -> ParIter<std::iter::Copied<I>>
    where
        T: 'a + Copy,
        I: Iterator<Item = &'a T>,
    {
        ParIter(self.0.copied())
    }

    /// See [`Iterator::min`].
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// See [`Iterator::max`].
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// See [`Iterator::sum`].
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// See [`Iterator::count`].
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// See [`Iterator::collect`].
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// See [`Iterator::for_each`].
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon's `reduce`: fold with an identity-producing closure.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// rayon's `reduce_with`: reduce without an identity; `None` when empty.
    pub fn reduce_with<F>(self, op: F) -> Option<I::Item>
    where
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.reduce(op)
    }

    /// Granularity hint; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Granularity hint; a no-op here.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The wrapped iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Convert into the parallel facade.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter` on shared references, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The wrapped iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: 'data;
    /// Iterate over shared references.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
    <&'data T as IntoIterator>::Item: 'data,
{
    type Iter = <&'data T as IntoIterator>::IntoIter;
    type Item = <&'data T as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter_mut` on unique references, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The wrapped iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a unique reference).
    type Item: 'data;
    /// Iterate over unique references.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoIterator,
    <&'data mut T as IntoIterator>::Item: 'data,
{
    type Iter = <&'data mut T as IntoIterator>::IntoIter;
    type Item = <&'data mut T as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Chunked iteration over shared slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Iterate over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Chunked iteration over mutable slices, mirroring
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Iterate over `chunk_size`-sized mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// Everything call sites normally get from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_spawn_runs_inline() {
        let mut hits = 0;
        super::scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn par_iter_combinators_match_std() {
        let v = vec![3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        assert_eq!(v.par_iter().copied().min(), Some(1));
        let total: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(total, 45);
        assert_eq!((0..5usize).into_par_iter().reduce(|| 0, |a, b| a + b), 10);
        assert_eq!(
            v.par_iter().map(|&x| x).reduce_with(|a, b| a.min(b)),
            Some(1)
        );
    }

    #[test]
    fn par_iter_mut_and_chunks() {
        let mut v = vec![0usize; 10];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i);
        assert_eq!(v[9], 9);
        let sums: Vec<usize> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
        v.par_chunks_mut(5).for_each(|c| c[0] = 100);
        assert_eq!(v[0], 100);
        assert_eq!(v[5], 100);
    }

    #[test]
    fn thread_pool_installs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
