//! The worker pool behind the `threads` feature.
//!
//! A fixed set of detached worker threads executes *jobs* — boxed closures —
//! scheduled through per-worker work-stealing deques plus a shared injector
//! queue for jobs submitted from threads outside the pool:
//!
//! * a worker pushes and pops its **own deque LIFO** (newest job first, the
//!   cache-friendly fork–join order),
//! * an idle worker pops the **injector FIFO**, then **steals FIFO** from the
//!   other workers' deques (oldest job first, the classic work-stealing
//!   discipline that steals the biggest remaining subproblems),
//! * threads that are not pool workers (e.g. the program's main thread
//!   driving a parallel iterator) submit to the injector and then *help*:
//!   while waiting for their batch to finish they execute queued jobs
//!   themselves instead of blocking, so the submitting thread always counts
//!   as one worker and a 1-thread "pool" degrades to inline execution.
//!
//! The pool is lazily created on first use.  Its size comes from
//! `RAYON_NUM_THREADS` when set, otherwise from
//! [`std::thread::available_parallelism`]; `ThreadPool::install` (used by
//! `pardp_parutils::with_threads`) overrides the *effective* thread count for
//! the duration of a closure via a thread-local, growing the worker set on
//! demand so `with_threads(8)` exercises real cross-thread execution even on
//! smaller machines.
//!
//! # Safety
//!
//! This module contains the only `unsafe` code in the workspace: jobs borrow
//! the submitting stack frame, so their `'scope` lifetime is erased to
//! `'static` before they are queued (the same trick rayon-core uses).  The
//! erasure is sound because every submission path goes through a [`Batch`]
//! whose completion latch is waited on — including on panic, via a drop
//! guard — before the borrowed frame is left, so a job can never outlive the
//! data it borrows.  Worker threads wrap every job in `catch_unwind` and
//! forward the payload to the batch owner, which re-raises it on the
//! submitting thread.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A queued unit of work whose borrowed lifetime has been erased (see the
/// module-level safety discussion).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hard cap on pool size; far above any sensible `RAYON_NUM_THREADS`.
const MAX_WORKERS: usize = 64;

/// How long a parked worker sleeps before re-polling the queues.  Parked
/// workers are registered in [`Shared::sleepers`] and woken explicitly by
/// submissions, so the timeout is only a belt-and-braces bound on a lost
/// notification, not the primary wake mechanism — it can therefore be long
/// enough that an idle pool generates essentially no lock traffic.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

struct Shared {
    /// FIFO for jobs submitted by non-pool threads.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques: owner pushes/pops the back, thieves pop the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Number of worker threads actually spawned so far.
    live_workers: AtomicUsize,
    /// Workers currently parked (or about to park) on the condvar.  A
    /// submission skips the wake mutex + condvar entirely when this is zero —
    /// during a fork-heavy round every worker is busy helping, so pushes
    /// become a single deque lock instead of a notify-all storm.
    sleepers: AtomicUsize,
    /// Wake generation counter; bumped on every submission that saw sleepers.
    wake_gen: Mutex<u64>,
    wake: Condvar,
    /// Diagnostic: jobs pushed to the shared injector (not per-worker deques).
    injector_pushes: AtomicU64,
    /// Diagnostic: condvar notifications actually sent to wake a worker.
    wakeups: AtomicU64,
}

impl Shared {
    /// Grab one job: own deque (LIFO) for workers, then the injector (FIFO),
    /// then steal from other workers' deques (FIFO).
    fn find_job(&self, own: Option<usize>) -> Option<Job> {
        if let Some(idx) = own {
            if let Some(job) = self.deques[idx].lock().expect("deque poisoned").pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(job);
        }
        // ordering: Acquire pairs with the Release store in `ensure_workers`
        // so the deques of every observed-live worker are initialized.
        let live = self.live_workers.load(Ordering::Acquire);
        let start = own.map_or(0, |i| i + 1);
        for off in 0..live {
            let victim = (start + off) % live.max(1);
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    /// Queue `job` and wake one sleeper if any worker is parked: a worker
    /// pushes to its own deque, any other thread to the injector.
    ///
    /// The sleeper check is sound against the park protocol in
    /// [`worker_loop`]: a worker registers in [`Shared::sleepers`] *before*
    /// its final queue re-check, so if this load observes zero sleepers the
    /// parking worker's re-check is ordered after the push above (both sides
    /// synchronize through the queue mutex and seq-cst counter) and will find
    /// the job itself.  When the load observes a sleeper we bump the wake
    /// generation under the lock, which closes the check-then-wait race on
    /// the worker side.
    fn push_job(&self, job: Job) {
        match WORKER_INDEX.with(Cell::get) {
            Some(idx) => self.deques[idx]
                .lock()
                .expect("deque poisoned")
                .push_back(job),
            None => {
                self.injector
                    .lock()
                    .expect("injector poisoned")
                    .push_back(job);
                // ordering: Relaxed — diagnostic counter, not synchronization.
                self.injector_pushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        // ordering: SeqCst keeps this load in a single total order with the
        // parking worker's SeqCst `sleepers` increment: either we observe the
        // sleeper (and notify under the wake-gen lock), or the worker's
        // register-then-recheck is ordered after our push and finds the job.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let mut gen = self.wake_gen.lock().expect("wake gen poisoned");
            *gen += 1;
            drop(gen);
            // ordering: Relaxed — diagnostic counter, not synchronization.
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            self.wake.notify_one();
        }
    }
}

/// Snapshot of the pool's cumulative dispatch diagnostics: `(injector pushes,
/// worker wakeups)`.  Tests assert *deltas* across a region that must bypass
/// the pool (e.g. a sub-grain cordon round).
pub(crate) fn dispatch_counters() -> (u64, u64) {
    let sh = shared();
    (
        // ordering: Relaxed — diagnostics; tests assert deltas across quiesced
        // regions, so no ordering with the counted events is needed.
        sh.injector_pushes.load(Ordering::Relaxed),
        // ordering: Relaxed — same as above.
        sh.wakeups.load(Ordering::Relaxed),
    )
}

thread_local! {
    /// Index of the current thread inside the pool, if it is a worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Effective-thread override installed by `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..MAX_WORKERS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            live_workers: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            wake_gen: Mutex::new(0),
            wake: Condvar::new(),
            injector_pushes: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        })
    })
}

/// Thread count configured for the global pool: `RAYON_NUM_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub(crate) fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_WORKERS)
    })
}

/// Effective thread count for parallelism decisions on this thread: the
/// innermost `ThreadPool::install` override, else the configured pool size.
pub(crate) fn effective_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
}

/// Make sure at least `target` workers exist (capped at [`MAX_WORKERS`]).
/// The submitting thread always participates, so `target` is the *pool* size
/// minus one for the caller.
fn ensure_workers(target: usize) {
    let target = target.min(MAX_WORKERS);
    let sh = shared();
    // ordering: Acquire pairs with the Release store below — observing a
    // count also makes those workers' startup visible on the fast path.
    if sh.live_workers.load(Ordering::Acquire) >= target {
        return;
    }
    static SPAWN_LOCK: Mutex<()> = Mutex::new(());
    let _guard = SPAWN_LOCK.lock().expect("spawn lock poisoned");
    // ordering: Acquire — re-read under the spawn lock; the lock serializes
    // writers, the Acquire keeps the read consistent with lock-free readers.
    let live = sh.live_workers.load(Ordering::Acquire);
    for idx in live..target {
        let sh = Arc::clone(sh);
        std::thread::Builder::new()
            .name(format!("pardp-rayon-{idx}"))
            .spawn(move || worker_loop(&sh, idx))
            .expect("failed to spawn pool worker");
        // ordering: Release publishes the spawned worker (and its deque slot)
        // to the Acquire loads in `find_job` and the fast path above.
        shared().live_workers.store(idx + 1, Ordering::Release);
    }
}

fn worker_loop(sh: &Shared, idx: usize) {
    WORKER_INDEX.with(|c| c.set(Some(idx)));
    loop {
        if let Some(job) = sh.find_job(Some(idx)) {
            job();
            continue;
        }
        // Park.  Register as a sleeper *first* so submissions know someone
        // needs a notification, then re-check the queues: a job pushed before
        // the registration is found by the re-check; a job pushed after it
        // sees `sleepers > 0`, bumps the generation and notifies.  The
        // generation counter closes the remaining race between the re-check
        // and the wait — if a submission slipped in between, the generation
        // no longer matches and we retry instead of sleeping.
        // ordering: SeqCst — the register-then-recheck must not be reordered
        // after the queue re-check, and must sit in one total order with the
        // submitter's SeqCst `sleepers` load in `push_job` (see there).
        sh.sleepers.fetch_add(1, Ordering::SeqCst);
        let gen = *sh.wake_gen.lock().expect("wake gen poisoned");
        if let Some(job) = sh.find_job(Some(idx)) {
            // ordering: SeqCst — symmetric with the increment above; a stale
            // deregistration must not linger ahead of the next park attempt.
            sh.sleepers.fetch_sub(1, Ordering::SeqCst);
            job();
            continue;
        }
        let guard = sh.wake_gen.lock().expect("wake gen poisoned");
        if *guard == gen {
            let _ = sh.wake.wait_timeout(guard, PARK_TIMEOUT);
        }
        // ordering: SeqCst — symmetric with the increment above.
        sh.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Completion latch with a helping wait: the waiter executes queued jobs
/// while the count is non-zero instead of blocking.
struct Latch {
    pending: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            pending: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    fn increment(&self) {
        // ordering: AcqRel — increments join the same release sequence as the
        // decrements so `done` observes a consistent count.
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    fn count_down(&self) {
        // ordering: AcqRel — the Release publishes the finished job's writes;
        // the Acquire on the final decrement makes every earlier job's writes
        // visible to the thread that sees the latch reach zero.
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock().expect("latch poisoned");
            self.cond.notify_all();
        }
    }

    fn done(&self) -> bool {
        // ordering: Acquire pairs with the AcqRel decrements — once zero is
        // observed, all completed jobs' side effects are visible.
        self.pending.load(Ordering::Acquire) == 0
    }

    /// Wait for the count to reach zero, executing queued jobs meanwhile.
    fn wait_helping(&self) {
        let sh = shared();
        let own = WORKER_INDEX.with(Cell::get);
        while !self.done() {
            if let Some(job) = sh.find_job(own) {
                job();
                continue;
            }
            let guard = self.mutex.lock().expect("latch poisoned");
            if !self.done() {
                let _ = self.cond.wait_timeout(guard, Duration::from_micros(200));
            }
        }
    }
}

/// A set of borrowed jobs submitted to the pool as one unit.
///
/// `wait()` (or, on an unwind, the drop guard) blocks — helping — until every
/// spawned job has finished, which is what makes the `'scope` → `'static`
/// erasure sound, and re-raises the first panic observed in any job.
pub(crate) struct Batch<'scope> {
    latch: Arc<Latch>,
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
    waited: bool,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Batch<'scope> {
    pub(crate) fn new() -> Self {
        // The caller participates via the helping wait, so the pool only
        // needs `effective - 1` workers.
        ensure_workers(effective_threads().saturating_sub(1));
        Batch {
            latch: Arc::new(Latch::new()),
            panic: Arc::new(Mutex::new(None)),
            waited: false,
            _marker: std::marker::PhantomData,
        }
    }

    /// Queue `job` on the pool.
    pub(crate) fn spawn(&self, job: Box<dyn FnOnce() + Send + 'scope>) {
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let panic_slot = Arc::clone(&self.panic);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = result {
                let mut slot = panic_slot.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            latch.count_down();
        });
        // SAFETY: `wrapped` borrows data that lives at least for `'scope`.
        // The batch's latch is decremented only after the job has fully run,
        // and `wait()`/`Drop` block on that latch before control can leave
        // `'scope`, so the job never runs after its borrows expire.  The two
        // trait-object types differ only in lifetime and share one layout.
        let erased: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        shared().push_job(erased);
    }

    /// Help until every spawned job completed; re-raise the first panic.
    pub(crate) fn wait(mut self) {
        self.latch.wait_helping();
        self.waited = true;
        let payload = self.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for Batch<'_> {
    fn drop(&mut self) {
        // Unwind path: `wait()` was never reached, but the jobs still borrow
        // the scope — block until they are done (panics are swallowed; one
        // is already propagating).
        if !self.waited {
            self.latch.wait_helping();
        }
    }
}

/// Latch + panic slot shared between `rayon::scope` and its spawned jobs.
///
/// Unlike [`Batch`] this is reference-counted and lifetime-free, so a spawned
/// job can hold a clone and hand nested `Scope` handles to its body.  The
/// `'scope` → `'static` soundness argument is the caller's obligation here:
/// `scope()` must call [`ScopeCore::wait_jobs`] before the borrowed frame is
/// left (it does, on both the normal and the unwind path).
pub(crate) struct ScopeCore {
    latch: Latch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeCore {
    pub(crate) fn new() -> Arc<Self> {
        ensure_workers(effective_threads().saturating_sub(1));
        Arc::new(ScopeCore {
            latch: Latch::new(),
            panic: Mutex::new(None),
        })
    }

    /// Queue `job` on the pool.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that [`ScopeCore::wait_jobs`] returns before
    /// any data borrowed by `job` goes out of scope (including on unwind).
    pub(crate) unsafe fn spawn_erased<'s>(self: &Arc<Self>, job: Box<dyn FnOnce() + Send + 's>) {
        self.latch.increment();
        let core = Arc::clone(self);
        let wrapped: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = result {
                let mut slot = core.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            core.latch.count_down();
        });
        // SAFETY: same layout-only transmute as in `Batch::spawn`; the caller
        // upholds the wait-before-frame-exit contract (see above).
        let erased: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Box<dyn FnOnce() + Send>>(wrapped)
        };
        shared().push_job(erased);
    }

    /// Help until every job spawned so far (including jobs spawned *by* those
    /// jobs) has finished.  Does not re-raise panics; see [`Self::take_panic`].
    pub(crate) fn wait_jobs(&self) {
        self.latch.wait_helping();
    }

    /// Take the first panic payload recorded by any job, if one panicked.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().expect("panic slot poisoned").take()
    }
}

/// Threaded `join`: queue `b` on the pool, run `a` inline, then either claim
/// `b` back (if no other thread picked it up yet) or help until it finishes.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // The claim slot doubles as the retraction mechanism: whoever `take`s
    // the closure runs it; the queued job becomes a no-op if the caller won.
    let b_task: Mutex<Option<B>> = Mutex::new(Some(b));
    let b_result: Mutex<Option<RB>> = Mutex::new(None);
    let batch = Batch::new();
    batch.spawn(Box::new(|| {
        let claimed = b_task.lock().expect("join task poisoned").take();
        if let Some(b) = claimed {
            let rb = b();
            *b_result.lock().expect("join result poisoned") = Some(rb);
        }
    }));
    let ra = a();
    // Fast path: retract `b` and run it inline if it was not stolen.
    let claimed = b_task.lock().expect("join task poisoned").take();
    let rb_local = claimed.map(|b| b());
    batch.wait();
    let rb = rb_local.or_else(|| b_result.lock().expect("join result poisoned").take());
    (
        ra,
        rb.expect("join: closure b neither claimed nor executed"),
    )
}

/// RAII override of the effective thread count (see `ThreadPool::install`).
pub(crate) struct InstallGuard {
    previous: Option<usize>,
}

pub(crate) fn install_threads(threads: usize) -> InstallGuard {
    let threads = threads.clamp(1, MAX_WORKERS);
    ensure_workers(threads.saturating_sub(1));
    let previous = INSTALLED_THREADS.with(|c| c.replace(Some(threads)));
    InstallGuard { previous }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn batch_runs_all_jobs_and_waits() {
        let counter = AtomicU64::new(0);
        let batch = Batch::new();
        for _ in 0..64 {
            batch.spawn(Box::new(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        batch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    /// Bounded-interleaving model check of the work-stealing deque protocol.
    ///
    /// Two logical workers share a fresh [`Shared`]: worker 0 owns deque 0
    /// (pushes and LIFO-pops it), worker 1 is a pure thief (FIFO-steals).
    /// Every interleaving of a fixed owner schedule (3 pushes, 3 pops) with a
    /// fixed thief schedule (3 steals) is executed serially at operation
    /// granularity, and each schedule is checked against a reference deque
    /// model: no job may be lost, duplicated, or run twice, owner pops must
    /// see the newest remaining job and steals the oldest.
    #[test]
    fn deque_schedules_never_lose_or_duplicate_jobs() {
        #[derive(Clone, Copy, PartialEq, Debug)]
        enum Op {
            Push,
            Pop,
            Steal,
        }

        fn fresh_shared(workers: usize) -> Shared {
            Shared {
                injector: Mutex::new(VecDeque::new()),
                deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                live_workers: AtomicUsize::new(workers),
                sleepers: AtomicUsize::new(0),
                wake_gen: Mutex::new(0),
                wake: Condvar::new(),
                injector_pushes: AtomicU64::new(0),
                wakeups: AtomicU64::new(0),
            }
        }

        // All C(6+3, 3) = 84 merges of the two per-worker schedules.
        fn schedules(owner: &[Op], thief: &[Op]) -> Vec<Vec<Op>> {
            fn go(owner: &[Op], thief: &[Op], acc: &mut Vec<Op>, out: &mut Vec<Vec<Op>>) {
                match (owner.split_first(), thief.split_first()) {
                    (None, None) => out.push(acc.clone()),
                    (o, t) => {
                        if let Some((&op, rest)) = o {
                            acc.push(op);
                            go(rest, thief, acc, out);
                            acc.pop();
                        }
                        if let Some((&op, rest)) = t {
                            acc.push(op);
                            go(owner, rest, acc, out);
                            acc.pop();
                        }
                    }
                }
            }
            let mut out = Vec::new();
            go(owner, thief, &mut Vec::new(), &mut out);
            out
        }

        let owner = [Op::Push, Op::Push, Op::Push, Op::Pop, Op::Pop, Op::Pop];
        let thief = [Op::Steal, Op::Steal, Op::Steal];
        let all = schedules(&owner, &thief);
        assert_eq!(all.len(), 84);

        for schedule in all {
            let sh = fresh_shared(2);
            let executed: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
            let mut model: VecDeque<usize> = VecDeque::new();
            let mut next_id = 0usize;
            let mut pushed = 0usize;

            for &op in &schedule {
                match op {
                    Op::Push => {
                        let id = next_id;
                        next_id += 1;
                        pushed += 1;
                        let executed = Arc::clone(&executed);
                        sh.deques[0]
                            .lock()
                            .unwrap()
                            .push_back(Box::new(move || executed.lock().unwrap().push(id)));
                        model.push_back(id);
                    }
                    Op::Pop => {
                        let got = sh.find_job(Some(0));
                        let want = model.pop_back();
                        match (got, want) {
                            (Some(job), Some(id)) => {
                                job();
                                assert_eq!(
                                    executed.lock().unwrap().last(),
                                    Some(&id),
                                    "owner pop must be LIFO in {schedule:?}"
                                );
                            }
                            (None, None) => {}
                            (got, want) => panic!(
                                "pop mismatch in {schedule:?}: got {} want {want:?}",
                                got.is_some()
                            ),
                        }
                    }
                    Op::Steal => {
                        let got = sh.find_job(Some(1));
                        let want = model.pop_front();
                        match (got, want) {
                            (Some(job), Some(id)) => {
                                job();
                                assert_eq!(
                                    executed.lock().unwrap().last(),
                                    Some(&id),
                                    "steal must be FIFO in {schedule:?}"
                                );
                            }
                            (None, None) => {}
                            (got, want) => panic!(
                                "steal mismatch in {schedule:?}: got {} want {want:?}",
                                got.is_some()
                            ),
                        }
                    }
                }
            }

            // Drain the leftovers; executed plus remaining must cover every
            // pushed job exactly once.
            while let Some(job) = sh.find_job(Some(0)) {
                let id = model.pop_back().expect("pool has a job the model lacks");
                job();
                assert_eq!(executed.lock().unwrap().last(), Some(&id));
            }
            assert!(model.is_empty(), "model has jobs the pool lost: {model:?}");
            let mut done = executed.lock().unwrap().clone();
            assert_eq!(done.len(), pushed, "every pushed job ran in {schedule:?}");
            done.sort_unstable();
            done.dedup();
            assert_eq!(done.len(), pushed, "a job ran twice in {schedule:?}");
        }
    }

    #[test]
    fn batch_propagates_panics() {
        let result = panic::catch_unwind(|| {
            let batch = Batch::new();
            batch.spawn(Box::new(|| panic!("boom in job")));
            batch.wait();
        });
        assert!(result.is_err());
    }

    #[test]
    fn threaded_join_returns_both() {
        let _pool = install_threads(4);
        let (a, b) = join(|| 1 + 1, || "b".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "b");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        let _pool = install_threads(4);
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }
}
