//! No-op derive macros standing in for `serde_derive` (offline build; see
//! `crates/compat/README.md`).  `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! compile to nothing: the workspace only uses the derives as annotations on
//! report rows, and all actual serialization is hand-written formatting.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
