//! Offline stand-in for the subset of the [rand] 0.8 API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace points
//! `rand = { path = ... }` at this crate (see `crates/compat/README.md`).
//! Only the surface the workload generators call is provided: `Rng::gen_range`
//! over integer ranges, `Rng::gen_ratio`, `SeedableRng::seed_from_u64`,
//! `seq::SliceRandom::shuffle` and `seq::index::sample`.  The distributions
//! are uniform but the streams do not bit-match the real rand crate; every
//! generator in this repo is seeded and only relies on determinism, not on a
//! specific stream.
//!
//! [rand]: https://docs.rs/rand

#![forbid(unsafe_code)]

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`); panics when empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio needs 0 <= numerator <= denominator, denominator > 0"
        );
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Uniform boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled from; mirrors `rand::distributions::uniform`.
///
/// The impls are generic over `T: SampleUniform` — like in the real crate —
/// so type inference can flow from the call site (`x += rng.gen_range(1..=2)`
/// infers the literal types from `x`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler; mirrors `rand::distributions::uniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Rejection-free (modulo-biased by < 2^-32 for the sizes used here) uniform
/// draw from `[0, span)`.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift trick: maps 64 random bits to [0, span) almost uniformly.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Width as an unsigned 64-bit span; correct for signed types
                // via two's-complement wrapping arithmetic.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if inclusive {
                    if span == <$u>::MAX as u64 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $t)
                } else {
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling, mirroring `rand::seq::index`.
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consume into a plain `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly.
        ///
        /// Partial Fisher–Yates: `O(length)` memory, `O(length + amount)` time,
        /// which is fine for the workload-generator scales this repo uses.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct TestRng(u64);
    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng(42);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5i64..7);
            assert!((-5..7).contains(&x));
            let y: u64 = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&y));
            let z: usize = r.gen_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn every_value_of_a_small_range_is_hit() {
        let mut r = TestRng(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = TestRng(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut r = TestRng(11);
        let idx = seq::index::sample(&mut r, 50, 20).into_vec();
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut r = TestRng(3);
        assert!(!r.gen_ratio(0, 10));
        assert!(r.gen_ratio(10, 10));
    }
}
