//! Offline stand-in for the subset of the [criterion] API this workspace's
//! benches use.
//!
//! Each `Bencher::iter` call runs the closure a configurable number of times
//! (`PARDP_BENCH_ITERS`, default 3) and prints mean wall-clock per iteration.
//! No warm-up, no statistics — the point is that `cargo bench` compiles and
//! smoke-runs without crates.io access; the real criterion can be swapped back
//! in by editing only the workspace manifest (see `crates/compat/README.md`).
//!
//! [criterion]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn iters_from_env() -> u64 {
    std::env::var("PARDP_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iters: iters_from_env(),
        }
    }
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; only reads the env here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            iters: self.iters,
            _criterion: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.iters, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is controlled by
    /// `PARDP_BENCH_ITERS` here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; no warm-up is performed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement length is iteration-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.iters, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.iters, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value, rendered as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total += start.elapsed();
        self.timed_iters += self.iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters > 0 {
        let per_iter = b.total.as_secs_f64() / b.timed_iters as f64;
        println!("  {label}: {per_iter:.6} s/iter ({} iters)", b.timed_iters);
    } else {
        println!("  {label}: no iterations executed");
    }
}

/// Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { iters: 2 };
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert_eq!(count, 2);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion { iters: 1 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        let data = vec![1u64, 2, 3];
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| {
                seen = d.iter().sum::<u64>();
            })
        });
        group.finish();
        assert_eq!(seen, 6);
    }
}
