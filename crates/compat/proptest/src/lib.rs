//! Offline stand-in for the subset of the [proptest] API this workspace uses.
//!
//! Provides `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) { .. } }`,
//! integer-range strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros.  Inputs are drawn from a deterministic generator seeded by the test
//! name, so failures are reproducible run to run; there is no shrinking — a
//! failing case panics with the sampled values left to the assertion message.
//! See `crates/compat/README.md` for why this shim exists.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded from the test name so every test has its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed so short names still spread.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 pseudo-random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(rng.below(span.saturating_add(1)) as $t)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s whose length is drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// `vec(element, len_range)`: lengths uniform in `len_range`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len_exclusive - self.min_len) as u64;
            let len = self.min_len + ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Mirrors `proptest::proptest!`: expands each property into a `#[test]` that
/// samples its arguments `cases` times from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )+
        }
    };
}

/// Everything tests normally import via `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Mirrors the `prop` module re-export in proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 1usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..10).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0u8..4, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
