//! Optimal Binary Search Trees with Knuth's decision-monotonicity speedup
//! (Sec. 5.5).
//!
//! The interval recurrence `D[i][j] = min_{i <= k < j} D[i][k] + D[k+1][j] +
//! w(i, j)` is the earliest example of decision monotonicity: Knuth showed the
//! best split point of `[i, j]` lies between the best split points of
//! `[i, j-1]` and `[i+1, j]`, which cuts the work from `O(n³)` to `O(n²)`.
//! Under the Cordon framework the `δ`-th frontier is exactly the diagonal of
//! intervals of length `δ` (every interval depends on its two one-shorter
//! sub-intervals), so the parallel algorithm processes diagonals as rounds —
//! an optimal parallelization of Knuth's algorithm with `n - 1` rounds, as the
//! paper notes (achieving `o(n)` span would need a different recurrence).
//!
//! The weight function used here is the classic OBST/OAT one:
//! `w(i, j) = Σ_{t=i..j} a[t]` for leaf weights `a` (so this module also
//! doubles as the interval-DP oracle for the optimal *alphabetic* tree, which
//! is the OBST problem restricted to leaf weights).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{round_min_grain, Metrics, MetricsCollector};
use rayon::prelude::*;

/// Result of an OBST computation over `n` leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObstResult {
    /// Optimal total cost (`Σ weight(leaf) · depth(leaf)` for the alphabetic
    /// reading).
    pub cost: u64,
    /// Work / round counters (`rounds == n - 1` for the parallel algorithm).
    pub metrics: Metrics,
}

fn prefix_sums(weights: &[u64]) -> Vec<u64> {
    let mut p = Vec::with_capacity(weights.len() + 1);
    let mut acc = 0u64;
    p.push(acc);
    for &w in weights {
        acc += w;
        p.push(acc);
    }
    p
}

/// Cubic reference: tries every split point of every interval.
pub fn naive_obst(weights: &[u64]) -> ObstResult {
    let n = weights.len();
    let metrics = MetricsCollector::new();
    if n <= 1 {
        return ObstResult {
            cost: 0,
            metrics: metrics.snapshot(),
        };
    }
    let pre = prefix_sums(weights);
    let wsum = |i: usize, j: usize| pre[j + 1] - pre[i];
    // d[i][j] = optimal cost of merging leaves i..=j into one tree.
    let mut d = vec![vec![0u64; n]; n];
    let mut edges = 0u64;
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let mut best = u64::MAX;
            for k in i..j {
                edges += 1;
                best = best.min(d[i][k] + d[k + 1][j]);
            }
            d[i][j] = best + wsum(i, j);
        }
    }
    metrics.add_edges(edges);
    ObstResult {
        cost: d[0][n - 1],
        metrics: metrics.snapshot(),
    }
}

/// Knuth's `O(n²)` sequential algorithm: the split-point search for `[i, j]`
/// is restricted to `[root[i][j-1], root[i+1][j]]`.
pub fn knuth_obst(weights: &[u64]) -> ObstResult {
    let n = weights.len();
    let metrics = MetricsCollector::new();
    if n <= 1 {
        return ObstResult {
            cost: 0,
            metrics: metrics.snapshot(),
        };
    }
    let pre = prefix_sums(weights);
    let wsum = |i: usize, j: usize| pre[j + 1] - pre[i];
    let mut d = vec![vec![0u64; n]; n];
    let mut root = vec![vec![0usize; n]; n];
    for i in 0..n {
        root[i][i] = i;
    }
    let mut edges = 0u64;
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let lo = root[i][j - 1];
            let hi = root[i + 1][j].min(j - 1);
            let mut best = u64::MAX;
            let mut best_k = lo;
            for k in lo..=hi {
                edges += 1;
                let c = d[i][k] + d[k + 1][j];
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            d[i][j] = best + wsum(i, j);
            root[i][j] = best_k;
        }
    }
    metrics.add_edges(edges);
    ObstResult {
        cost: d[0][n - 1],
        metrics: metrics.snapshot(),
    }
}

/// Parallel OBST: the Cordon frontier of round `δ` is the diagonal of
/// intervals of length `δ + 1`, processed in parallel with the Knuth split
/// bounds (which only reference the two previous diagonals).
///
/// Runs [`ObstCordon`] through the shared phase-parallel driver, which
/// supplies the round accounting, frontier telemetry and stall guard.
pub fn parallel_obst(weights: &[u64]) -> ObstResult {
    let metrics = MetricsCollector::new();
    let tables = run_phase_parallel(ObstCordon::new(weights), &metrics);
    ObstResult {
        cost: tables.cost(),
        metrics: metrics.snapshot(),
    }
}

/// Completed interval-DP tables produced by [`ObstCordon`], in diagonal-major
/// layout: `d[len - 1][i]` is the cost of the interval `[i, i + len - 1]` and
/// `root[len - 1][i]` its optimal split point.
#[derive(Debug, Clone)]
pub struct ObstTables {
    /// Interval costs by (diagonal, start).
    pub d: Vec<Vec<u64>>,
    /// Optimal split points by (diagonal, start).
    pub root: Vec<Vec<usize>>,
    /// Number of leaves.
    pub n: usize,
}

impl ObstTables {
    /// Optimal total cost (0 for fewer than two leaves).
    pub fn cost(&self) -> u64 {
        if self.n <= 1 {
            0
        } else {
            self.d[self.n - 1][0]
        }
    }

    /// Depth of every leaf in the optimal tree, reconstructed from the split
    /// points (root depth 0; a single leaf has depth 0).
    pub fn leaf_depths(&self) -> Vec<u32> {
        let n = self.n;
        let mut depths = vec![0u32; n];
        if n <= 1 {
            return depths;
        }
        let mut stack = vec![(0usize, n - 1, 0u32)];
        while let Some((i, j, depth)) = stack.pop() {
            if i == j {
                depths[i] = depth;
                continue;
            }
            let k = self.root[j - i][i];
            stack.push((i, k, depth + 1));
            stack.push((k + 1, j, depth + 1));
        }
        depths
    }
}

/// [`PhaseParallel`] instance for the interval DP: round `δ` fills the
/// diagonal of intervals of length `δ + 1` in parallel using the Knuth split
/// bounds.
///
/// Both tables live in a single flat allocation in diagonal-major order
/// (`offsets[len - 1] + i` addresses interval `[i, i + len - 1]`), sized up
/// front in [`ObstCordon::new`].  A round therefore performs **zero heap
/// allocation**: it splits the flat table at the current diagonal's offset and
/// writes the new diagonal in place while reading the finished prefix.  The
/// diagonal-major layout also keeps each round's reads (the two one-shorter
/// diagonals) contiguous, unlike the row-major tables of [`knuth_obst`].
pub struct ObstCordon {
    pre: Vec<u64>,
    d: Vec<u64>,
    root: Vec<usize>,
    /// `offsets[k]` is the flat index where the diagonal of length `k + 1`
    /// starts; that diagonal holds `n - k` entries.
    offsets: Vec<usize>,
    len: usize,
    n: usize,
}

impl ObstCordon {
    /// Seed the length-1 diagonal (single leaves cost 0, root at themselves)
    /// and pre-size the full triangular tables.
    pub fn new(weights: &[u64]) -> Self {
        let n = weights.len();
        let total = n * (n + 1) / 2;
        let mut offsets = Vec::with_capacity(n);
        let mut acc = 0;
        for k in 0..n {
            offsets.push(acc);
            acc += n - k;
        }
        // Length-1 intervals cost 0 (already zeroed) with root at themselves.
        let d = vec![0u64; total];
        let mut root = vec![0usize; total];
        for (i, r) in root.iter_mut().enumerate().take(n) {
            *r = i;
        }
        ObstCordon {
            pre: prefix_sums(weights),
            d,
            root,
            offsets,
            len: 2,
            n,
        }
    }

    /// Copy one finished diagonal out of the flat table (`len >= 1`).
    fn diagonal<T: Copy>(flat: &[T], offsets: &[usize], n: usize, len: usize) -> Vec<T> {
        let start = offsets[len - 1];
        flat[start..start + (n - len + 1)].to_vec()
    }
}

impl PhaseParallel for ObstCordon {
    type Output = ObstTables;

    fn is_done(&self) -> bool {
        self.len > self.n
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (len, n) = (self.len, self.n);
        let pre = &self.pre;
        let wsum = |i: usize, j: usize| pre[j + 1] - pre[i];
        let count = n - len + 1;
        let offsets = &self.offsets;
        let start = offsets[len - 1];
        // Everything before `start` is finished (all shorter diagonals); the
        // current diagonal is written in place.
        let (done_d, write_d) = self.d.split_at_mut(start);
        let (done_root, write_root) = self.root.split_at_mut(start);
        let prev = offsets[len - 2];
        let edge_total: u64 = write_d[..count]
            .par_iter_mut()
            .zip(write_root[..count].par_iter_mut())
            .enumerate()
            .with_min_len(round_min_grain(count))
            .map(|(i, (d_out, r_out))| {
                let j = i + len - 1;
                // Knuth bounds from the two one-shorter intervals.
                let lo = done_root[prev + i];
                let hi = done_root[prev + i + 1].min(j - 1).max(lo);
                let mut best = u64::MAX;
                let mut best_k = lo;
                let mut edges = 0u64;
                for k in lo..=hi {
                    edges += 1;
                    let left = done_d[offsets[k - i] + i];
                    let right = done_d[offsets[j - k - 1] + k + 1];
                    let c = left + right;
                    if c < best {
                        best = c;
                        best_k = k;
                    }
                }
                *d_out = best + wsum(i, j);
                *r_out = best_k;
                edges
            })
            .sum();
        metrics.add_edges(edge_total);
        self.len += 1;
        count
    }

    fn finish(self) -> Self::Output {
        // Re-materialize the per-diagonal rows for the public tables; this is
        // a one-time cost at the end of the run, not a per-round one.
        let n = self.n;
        let d = (1..=n)
            .map(|len| Self::diagonal(&self.d, &self.offsets, n, len))
            .collect();
        let root = (1..=n)
            .map(|len| Self::diagonal(&self.root, &self.offsets, n, len))
            .collect();
        ObstTables { d, root, n }
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per diagonal of length >= 2: n - 1 rounds.
        Some(self.n.saturating_sub(1) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_weights(n: usize, seed: u64, max_w: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % max_w + 1
            })
            .collect()
    }

    #[test]
    fn hand_checked_three_leaves() {
        // Weights 1, 2, 3.  Best alphabetic tree: ((1,2),3):
        // cost = merge(1,2)=3, then merge(3,3)=6 -> total 9.
        // Alternative (1,(2,3)): 5 + 6 = 11.  So optimum 9.
        let w = [1u64, 2, 3];
        assert_eq!(naive_obst(&w).cost, 9);
        assert_eq!(knuth_obst(&w).cost, 9);
        assert_eq!(parallel_obst(&w).cost, 9);
    }

    #[test]
    fn all_three_agree_on_random_weights() {
        for seed in 0..6 {
            for &n in &[2usize, 3, 5, 17, 40, 80] {
                let w = pseudo_weights(n, seed, 1000);
                let a = naive_obst(&w).cost;
                let b = knuth_obst(&w).cost;
                let c = parallel_obst(&w).cost;
                assert_eq!(a, b, "n {n} seed {seed}");
                assert_eq!(a, c, "n {n} seed {seed}");
            }
        }
    }

    #[test]
    fn rounds_equal_n_minus_one() {
        let w = pseudo_weights(50, 1, 100);
        let r = parallel_obst(&w);
        assert_eq!(r.metrics.rounds, 49);
    }

    #[test]
    fn knuth_does_quadratic_work() {
        let n = 300usize;
        let w = pseudo_weights(n, 2, 1_000_000);
        let naive = naive_obst(&w);
        let knuth = knuth_obst(&w);
        assert_eq!(naive.cost, knuth.cost);
        // Knuth's split bounds reduce the inner-loop work by a large factor.
        assert!(knuth.metrics.edges_relaxed * 4 < naive.metrics.edges_relaxed);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(parallel_obst(&[]).cost, 0);
        assert_eq!(parallel_obst(&[7]).cost, 0);
        assert_eq!(parallel_obst(&[3, 4]).cost, 7);
        assert_eq!(naive_obst(&[3, 4]).cost, 7);
    }

    #[test]
    fn equal_weights_build_balanced_cost() {
        // 4 equal weights: balanced tree, every leaf at depth 2 -> cost 8·w.
        let w = [5u64; 4];
        assert_eq!(parallel_obst(&w).cost, 40);
    }
}
