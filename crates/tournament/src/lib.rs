//! Tournament (winner) tree with batched prefix-minimum extraction.
//!
//! This is the data structure behind the parallel LIS and sparse-LCS cordon
//! algorithms (Sec. 3 of the paper, following Gu et al. [47]).  The tree is
//! built once over the whole input sequence; each cordon round extracts — and
//! removes — every *prefix-minimum record*, i.e. every still-active element
//! that is not blocked by any smaller active element to its left.  Extracting
//! `l` records out of `L` remaining elements costs `O(l · log(L/l))` work and
//! `O(log L)` span, which is what gives the `O(n log k)` / `O(L log n)` total
//! work bounds of Theorems 3.1 and 3.2.
//!
//! The tree is represented as a pointer-based binary tree so that the two
//! children of a node can be traversed by disjoint `&mut` borrows in parallel
//! (`rayon::join`); the right child's traversal only needs the *pre-round*
//! minimum of the left subtree, which is available in `O(1)` before either
//! child is descended.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_core::PhaseParallel;
use pardp_parutils::{maybe_join, MetricsCollector};

/// Whether an earlier element with an *equal* key blocks a later element from
/// being a prefix-minimum record.
///
/// * For the classic strictly-increasing LIS, a decision `j` relaxes `i` only
///   when `A[j] < A[i]`, so ties do **not** block: use [`TieRule::TiesAreRecords`].
/// * For the non-decreasing variant (`A[j] <= A[i]` relaxes), ties do block:
///   use [`TieRule::TiesBlocked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieRule {
    /// An element equal to the running minimum is itself a record.
    TiesAreRecords,
    /// An element equal to the running minimum is blocked (not a record).
    TiesBlocked,
}

impl TieRule {
    #[inline]
    fn is_record<K: Ord>(self, key: K, carry: Option<K>) -> bool {
        match carry {
            None => true,
            Some(c) => match self {
                TieRule::TiesAreRecords => key <= c,
                TieRule::TiesBlocked => key < c,
            },
        }
    }
}

#[derive(Debug, Clone)]
enum Node<K> {
    Leaf {
        pos: usize,
        key: Option<K>,
    },
    Internal {
        min: Option<K>,
        size: usize,
        left: Box<Node<K>>,
        right: Box<Node<K>>,
    },
}

impl<K: Ord + Copy + Send + Sync> Node<K> {
    fn build(keys: &[K], offset: usize) -> Self {
        debug_assert!(!keys.is_empty());
        if keys.len() == 1 {
            return Node::Leaf {
                pos: offset,
                key: Some(keys[0]),
            };
        }
        let mid = keys.len() / 2;
        let (l, r) = keys.split_at(mid);
        let (left, right) = maybe_join(
            keys.len(),
            || Node::build(l, offset),
            || Node::build(r, offset + mid),
        );
        let min = min_opt(left.min(), right.min());
        Node::Internal {
            min,
            size: keys.len(),
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    #[inline]
    fn min(&self) -> Option<K> {
        match self {
            Node::Leaf { key, .. } => *key,
            Node::Internal { min, .. } => *min,
        }
    }

    /// Extract every prefix-minimum record in this subtree given that the
    /// minimum active key strictly to the left of the subtree is `carry`.
    /// Extracted leaves are deactivated and subtree minima are repaired on the
    /// way back up.  Returns the records as `(position, key)` pairs in
    /// left-to-right order.
    fn extract(&mut self, carry: Option<K>, rule: TieRule) -> Vec<(usize, K)> {
        match self {
            Node::Leaf { pos, key } => {
                if let Some(k) = *key {
                    if rule.is_record(k, carry) {
                        *key = None;
                        return vec![(*pos, k)];
                    }
                }
                Vec::new()
            }
            Node::Internal {
                min,
                size,
                left,
                right,
            } => {
                // Prune: if even the smallest key in this subtree is not a
                // record w.r.t. `carry`, nothing inside can be.
                match *min {
                    None => return Vec::new(),
                    Some(m) => {
                        if !rule.is_record(m, carry) {
                            return Vec::new();
                        }
                    }
                }
                // The right subtree's carry uses the *pre-extraction* minimum
                // of the left subtree: elements removed from the left in this
                // very round were active when the round started, and the
                // cordon is defined against the state at the start of the
                // round (all extracted elements share the same DP value).
                let left_min_before = left.min();
                let right_carry = min_opt(carry, left_min_before);
                let (mut lres, rres) = maybe_join(
                    *size,
                    || left.extract(carry, rule),
                    || right.extract(right_carry, rule),
                );
                *min = min_opt(left.min(), right.min());
                lres.extend(rres);
                lres
            }
        }
    }

    fn active_count(&self) -> usize {
        match self {
            Node::Leaf { key, .. } => usize::from(key.is_some()),
            Node::Internal { left, right, .. } => left.active_count() + right.active_count(),
        }
    }
}

#[inline]
fn min_opt<K: Ord>(a: Option<K>, b: Option<K>) -> Option<K> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(if a <= b { a } else { b }),
    }
}

/// Tournament tree over a fixed sequence of keys.
#[derive(Debug, Clone)]
pub struct TournamentTree<K> {
    root: Option<Node<K>>,
    len: usize,
    rule: TieRule,
}

impl<K: Ord + Copy + Send + Sync> TournamentTree<K> {
    /// Build the tree over `keys` (positions are `0..keys.len()`), with the
    /// given tie rule.  `O(n)` work, `O(log n)` span.
    pub fn new(keys: &[K], rule: TieRule) -> Self {
        let root = if keys.is_empty() {
            None
        } else {
            Some(Node::build(keys, 0))
        };
        TournamentTree {
            root,
            len: keys.len(),
            rule,
        }
    }

    /// Number of positions the tree was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree was built over an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of still-active (not yet extracted) elements.  `O(n)`; intended
    /// for tests and assertions, not hot loops.
    pub fn active_count(&self) -> usize {
        self.root.as_ref().map_or(0, Node::active_count)
    }

    /// Minimum key among the active elements, if any.
    pub fn min_active(&self) -> Option<K> {
        self.root.as_ref().and_then(Node::min)
    }

    /// Extract and deactivate every prefix-minimum record, returning them as
    /// `(position, key)` pairs in increasing position order.
    ///
    /// A record is an active element with no active element to its left whose
    /// key blocks it under the tree's [`TieRule`].  Returns an empty vector
    /// once all elements have been extracted.
    pub fn extract_prefix_minima(&mut self) -> Vec<(usize, K)> {
        match &mut self.root {
            None => Vec::new(),
            Some(root) => root.extract(None, self.rule),
        }
    }
}

/// [`PhaseParallel`] instance over a tournament tree: round `r` extracts every
/// prefix-minimum record and assigns it DP value `r`.
///
/// This is the shared cordon of Sec. 3 — parallel LIS runs it over the input
/// values, parallel sparse LCS over the `j` keys of the canonically sorted
/// matching pairs — so both problems delegate to this one implementation.
pub struct StaircaseCordon<K> {
    tree: TournamentTree<K>,
    values: Vec<u32>,
    round: u32,
    remaining: usize,
}

impl<K: Ord + Copy + Send + Sync> StaircaseCordon<K> {
    /// Build the tournament tree over `keys` with the given tie rule.
    pub fn new(keys: &[K], rule: TieRule) -> Self {
        StaircaseCordon {
            tree: TournamentTree::new(keys, rule),
            values: vec![0u32; keys.len()],
            round: 0,
            remaining: keys.len(),
        }
    }
}

impl<K: Ord + Copy + Send + Sync> PhaseParallel for StaircaseCordon<K> {
    /// Per-position DP values (the round each position was extracted in) plus
    /// the number of rounds, i.e. the staircase depth.
    type Output = (Vec<u32>, u32);

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let records = self.tree.extract_prefix_minima();
        if records.is_empty() {
            return 0;
        }
        self.round += 1;
        metrics.add_edges(records.len() as u64);
        self.remaining -= records.len();
        for (pos, _) in records.iter() {
            self.values[*pos] = self.round;
        }
        records.len()
    }

    fn finish(self) -> Self::Output {
        (self.values, self.round)
    }

    fn round_budget(&self) -> Option<u64> {
        // The staircase depth never exceeds the number of elements (Theorems
        // 3.1 and 3.2: it equals the LIS/LCS length).
        Some(self.remaining as u64)
    }
}

/// Reference (sequential, quadratic-free) computation of the prefix-minimum
/// records of one round over `keys`, used as an oracle in tests.
pub fn reference_prefix_minima<K: Ord + Copy>(
    keys: &[(usize, K)],
    rule: TieRule,
) -> Vec<(usize, K)> {
    let mut out = Vec::new();
    let mut carry: Option<K> = None;
    for &(pos, k) in keys {
        if rule.is_record(k, carry) {
            out.push((pos, k));
        }
        carry = min_opt(carry, Some(k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_rounds(keys: &[u64], rule: TieRule) -> Vec<Vec<(usize, u64)>> {
        // Oracle: repeatedly take prefix-min records from the remaining list.
        let mut remaining: Vec<(usize, u64)> = keys.iter().copied().enumerate().collect();
        let mut rounds = Vec::new();
        while !remaining.is_empty() {
            let records = reference_prefix_minima(&remaining, rule);
            let picked: std::collections::HashSet<usize> =
                records.iter().map(|&(p, _)| p).collect();
            remaining.retain(|&(p, _)| !picked.contains(&p));
            rounds.push(records);
        }
        rounds
    }

    fn check_against_oracle(keys: &[u64], rule: TieRule) {
        let mut tree = TournamentTree::new(keys, rule);
        let oracle = simulate_rounds(keys, rule);
        for (round, want) in oracle.iter().enumerate() {
            let got = tree.extract_prefix_minima();
            assert_eq!(&got, want, "round {round} mismatch for {keys:?}");
        }
        assert!(tree.extract_prefix_minima().is_empty());
        assert_eq!(tree.active_count(), 0);
    }

    #[test]
    fn example_from_paper_figure2() {
        // Input sequence of Fig. 2(a): 7 3 6 8 1 4 2 5.
        let keys = [7u64, 3, 6, 8, 1, 4, 2, 5];
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        // Round 1: prefix minima are 7, 3, 1 (positions 0, 1, 4).
        assert_eq!(tree.extract_prefix_minima(), vec![(0, 7), (1, 3), (4, 1)]);
        // Round 2: remaining 6 8 4 2 5 -> prefix minima 6, 4, 2.
        assert_eq!(tree.extract_prefix_minima(), vec![(2, 6), (5, 4), (6, 2)]);
        // Round 3: remaining 8 5 -> prefix minima 8, 5.
        assert_eq!(tree.extract_prefix_minima(), vec![(3, 8), (7, 5)]);
        assert!(tree.extract_prefix_minima().is_empty());
    }

    #[test]
    fn rounds_equal_lis_length() {
        // The number of extraction rounds equals the LIS length of the input
        // (Theorem 3.1's span argument).
        let keys = [7u64, 3, 6, 8, 1, 4, 2, 5];
        let rounds = simulate_rounds(&keys, TieRule::TiesAreRecords).len();
        assert_eq!(rounds, 3); // LIS of the Fig. 2 sequence is 3 (e.g. 3 4 5).
    }

    #[test]
    fn increasing_input_one_round() {
        let keys: Vec<u64> = (0..1000).collect();
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        let r1 = tree.extract_prefix_minima();
        assert_eq!(r1.len(), 1, "only the first element is a record");
        // Decreasing input: everything is a record in round one.
        let keys: Vec<u64> = (0..1000).rev().collect();
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        assert_eq!(tree.extract_prefix_minima().len(), 1000);
        assert!(tree.extract_prefix_minima().is_empty());
    }

    #[test]
    fn ties_rules_differ() {
        let keys = [5u64, 5, 5];
        let mut with_ties = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        assert_eq!(with_ties.extract_prefix_minima().len(), 3);
        let mut no_ties = TournamentTree::new(&keys, TieRule::TiesBlocked);
        assert_eq!(no_ties.extract_prefix_minima().len(), 1);
        assert_eq!(no_ties.extract_prefix_minima().len(), 1);
        assert_eq!(no_ties.extract_prefix_minima().len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let mut t: TournamentTree<u64> = TournamentTree::new(&[], TieRule::TiesAreRecords);
        assert!(t.is_empty());
        assert!(t.extract_prefix_minima().is_empty());
        let mut t = TournamentTree::new(&[42u64], TieRule::TiesAreRecords);
        assert_eq!(t.extract_prefix_minima(), vec![(0, 42)]);
        assert!(t.extract_prefix_minima().is_empty());
    }

    #[test]
    fn pseudo_random_inputs_match_oracle() {
        // Deterministic pseudo-random sequences of several sizes.
        for &n in &[1usize, 2, 3, 10, 63, 64, 65, 257, 1000, 5000] {
            let keys: Vec<u64> = (0..n as u64).map(|i| (i * 48271 + 11) % 997).collect();
            check_against_oracle(&keys, TieRule::TiesAreRecords);
            check_against_oracle(&keys, TieRule::TiesBlocked);
        }
    }

    #[test]
    fn min_active_tracks_extractions() {
        let keys = [9u64, 2, 7, 4];
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        assert_eq!(tree.min_active(), Some(2));
        tree.extract_prefix_minima(); // removes 9 and 2
        assert_eq!(tree.min_active(), Some(4));
        tree.extract_prefix_minima(); // removes 7 and 4
        assert_eq!(tree.min_active(), None);
    }

    #[test]
    fn large_input_fully_drains() {
        let n = 100_000usize;
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        let mut total = 0usize;
        let mut rounds = 0usize;
        loop {
            let r = tree.extract_prefix_minima();
            if r.is_empty() {
                break;
            }
            total += r.len();
            rounds += 1;
            assert!(rounds <= n, "cannot need more rounds than elements");
        }
        assert_eq!(total, n);
        assert_eq!(tree.active_count(), 0);
    }
}
