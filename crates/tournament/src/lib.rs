//! Tournament (winner) tree with batched prefix-minimum extraction.
//!
//! This is the data structure behind the parallel LIS and sparse-LCS cordon
//! algorithms (Sec. 3 of the paper, following Gu et al. [47]).  The tree is
//! built once over the whole input sequence; each cordon round extracts — and
//! removes — every *prefix-minimum record*, i.e. every still-active element
//! that is not blocked by any smaller active element to its left.  Extracting
//! `l` records out of `L` remaining elements costs `O(l · log(L/l))` work and
//! `O(log L)` span, which is what gives the `O(n log k)` / `O(L log n)` total
//! work bounds of Theorems 3.1 and 3.2.
//!
//! # Layout
//!
//! The tree is *cache-blocked*: the sequence is cut into blocks of
//! [`BLOCK`] consecutive positions, each stored as a flat implicit binary
//! heap (`node v`'s children at `2v`/`2v+1`, leaves in one contiguous run),
//! and a small flat *summary heap* over the per-block minima routes each
//! round to the blocks that actually contain records.  Compared to the
//! pointer-based tree this replaces per-node allocations and pointer chasing
//! with sequential scans of arrays that fit in L1/L2, and it gives the
//! parallel round a natural decomposition: blocks are disjoint `&mut`
//! borrows, so touched blocks are extracted concurrently by splitting the
//! block slice — no interior mutability, no per-round allocation (each block
//! reuses a records buffer).
//!
//! Rounds whose estimated work is below the active grain hint run entirely
//! on the calling thread: no pool job is pushed and no worker is woken
//! (pinned by the dispatch-counter test in `tests/pool_fastpath.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_core::PhaseParallel;
use pardp_parutils::{round_min_grain, MetricsCollector};

/// Positions per cache block.  A block's heap is `2 × BLOCK` `Option<K>`
/// slots — 32 KiB for `i64` keys, small enough that one round's scan of a
/// block stays in L1/L2.
const BLOCK: usize = 1024;

/// Whether an earlier element with an *equal* key blocks a later element from
/// being a prefix-minimum record.
///
/// * For the classic strictly-increasing LIS, a decision `j` relaxes `i` only
///   when `A[j] < A[i]`, so ties do **not** block: use [`TieRule::TiesAreRecords`].
/// * For the non-decreasing variant (`A[j] <= A[i]` relaxes), ties do block:
///   use [`TieRule::TiesBlocked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieRule {
    /// An element equal to the running minimum is itself a record.
    TiesAreRecords,
    /// An element equal to the running minimum is blocked (not a record).
    TiesBlocked,
}

impl TieRule {
    #[inline]
    fn is_record<K: Ord>(self, key: K, carry: Option<K>) -> bool {
        match carry {
            None => true,
            Some(c) => match self {
                TieRule::TiesAreRecords => key <= c,
                TieRule::TiesBlocked => key < c,
            },
        }
    }
}

#[inline]
fn min_opt<K: Ord>(a: Option<K>, b: Option<K>) -> Option<K> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(if a <= b { a } else { b }),
    }
}

/// One cache block: an implicit heap over up to [`BLOCK`] consecutive
/// positions plus a reusable buffer for the records it produced this round.
#[derive(Debug, Clone)]
struct Block<K> {
    /// Implicit heap: root at index 1, node `v`'s children at `2v` / `2v+1`,
    /// leaf for local position `i` at `cap + i` (positions past `len` are
    /// permanently `None`).
    tree: Vec<Option<K>>,
    /// Leaf capacity (`len` rounded up to a power of two).
    cap: usize,
    /// Global position of the block's first element.
    base: usize,
    /// Still-active elements in this block.
    active: usize,
    /// Records extracted in the current round, `(global position, key)` in
    /// increasing position order.  Cleared and refilled each round the block
    /// is touched; capacity is retained, so steady-state rounds do not
    /// allocate.
    records: Vec<(usize, K)>,
}

impl<K: Ord + Copy> Block<K> {
    fn build(keys: &[K], base: usize) -> Self {
        debug_assert!(!keys.is_empty());
        let cap = keys.len().next_power_of_two();
        let mut tree = vec![None; 2 * cap];
        for (i, &k) in keys.iter().enumerate() {
            tree[cap + i] = Some(k);
        }
        for v in (1..cap).rev() {
            tree[v] = min_opt(tree[2 * v], tree[2 * v + 1]);
        }
        Block {
            tree,
            cap,
            base,
            active: keys.len(),
            records: Vec::new(),
        }
    }

    /// Minimum active key in the block (the heap root).
    #[inline]
    fn min(&self) -> Option<K> {
        self.tree[1]
    }

    /// Extract every record of this block into `self.records`, given the
    /// minimum active key strictly to the block's left at round start.
    fn extract(&mut self, carry: Option<K>, rule: TieRule) {
        self.records.clear();
        self.extract_node(1, carry, rule);
    }

    fn extract_node(&mut self, node: usize, carry: Option<K>, rule: TieRule) {
        // Prune: if even the smallest key below `node` is not a record
        // w.r.t. `carry`, nothing below can be.
        let m = match self.tree[node] {
            None => return,
            Some(m) => m,
        };
        if !rule.is_record(m, carry) {
            return;
        }
        if node >= self.cap {
            self.tree[node] = None;
            self.records.push((self.base + (node - self.cap), m));
            self.active -= 1;
            return;
        }
        // The right child's carry uses the *pre-extraction* minimum of the
        // left child: elements removed on the left in this very round were
        // active when the round started, and the cordon is defined against
        // the state at the start of the round (all extracted elements share
        // the same DP value).
        let right_carry = min_opt(carry, self.tree[2 * node]);
        self.extract_node(2 * node, carry, rule);
        self.extract_node(2 * node + 1, right_carry, rule);
        self.tree[node] = min_opt(self.tree[2 * node], self.tree[2 * node + 1]);
    }
}

/// Extract `touched` blocks in parallel by recursively splitting the block
/// slice: the touched list is sorted by block index, so each half of the
/// list maps to a disjoint sub-slice of `blocks` (`split_at_mut` — no
/// interior mutability needed).  `first` is the global index of `blocks[0]`;
/// `grain` is the fork cutoff in touched-block units.
fn extract_touched<K: Ord + Copy + Send + Sync>(
    blocks: &mut [Block<K>],
    first: usize,
    touched: &[(usize, Option<K>)],
    rule: TieRule,
    grain: usize,
) {
    if touched.len() <= grain.max(1) {
        for &(b, carry) in touched {
            blocks[b - first].extract(carry, rule);
        }
        return;
    }
    let mid = touched.len() / 2;
    let (left, right) = touched.split_at(mid);
    let split = right[0].0;
    let (bl, br) = blocks.split_at_mut(split - first);
    rayon::join(
        || extract_touched(bl, first, left, rule, grain),
        || extract_touched(br, split, right, rule, grain),
    );
}

/// Tournament tree over a fixed sequence of keys.
#[derive(Debug, Clone)]
pub struct TournamentTree<K> {
    blocks: Vec<Block<K>>,
    /// Implicit heap over the per-block minima: root at 1, block `b`'s leaf
    /// at `scap + b`.  Routes each round to the blocks containing records in
    /// `O(t · log(B/t))` for `t` touched blocks.
    summary: Vec<Option<K>>,
    scap: usize,
    /// Blocks touched by the current round with their carries, in increasing
    /// block order.  Reused across rounds.
    touched: Vec<(usize, Option<K>)>,
    len: usize,
    active: usize,
    rule: TieRule,
}

impl<K: Ord + Copy + Send + Sync> TournamentTree<K> {
    /// Build the tree over `keys` (positions are `0..keys.len()`), with the
    /// given tie rule.  `O(n)` work, `O(log n)` span; blocks are built in
    /// parallel for large inputs, fully inline for sub-grain ones.
    pub fn new(keys: &[K], rule: TieRule) -> Self {
        use rayon::prelude::*;
        let len = keys.len();
        let num_blocks = len.div_ceil(BLOCK);
        let grain_blocks = round_min_grain(len).div_ceil(BLOCK).max(1);
        let blocks: Vec<Block<K>> = (0..num_blocks)
            .into_par_iter()
            .with_min_len(grain_blocks)
            .map(|b| {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(len);
                Block::build(&keys[lo..hi], lo)
            })
            .collect();
        let scap = num_blocks.next_power_of_two().max(1);
        let mut summary = vec![None; 2 * scap];
        for (b, blk) in blocks.iter().enumerate() {
            summary[scap + b] = blk.min();
        }
        for v in (1..scap).rev() {
            summary[v] = min_opt(summary[2 * v], summary[2 * v + 1]);
        }
        TournamentTree {
            blocks,
            summary,
            scap,
            touched: Vec::new(),
            len,
            active: len,
            rule,
        }
    }

    /// Number of positions the tree was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree was built over an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of still-active (not yet extracted) elements.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Minimum key among the active elements, if any.
    pub fn min_active(&self) -> Option<K> {
        self.summary[1]
    }

    /// Walk the summary heap, collecting every block whose minimum is a
    /// record under its carry (exactly the blocks containing ≥ 1 record)
    /// into `self.touched`, in increasing block order.  Uses the pre-round
    /// summary minima throughout, so right-sibling carries see the state at
    /// round start.
    fn collect_touched(&mut self, node: usize, carry: Option<K>) {
        let m = match self.summary[node] {
            None => return,
            Some(m) => m,
        };
        if !self.rule.is_record(m, carry) {
            return;
        }
        if node >= self.scap {
            self.touched.push((node - self.scap, carry));
            return;
        }
        let right_carry = min_opt(carry, self.summary[2 * node]);
        self.collect_touched(2 * node, carry);
        self.collect_touched(2 * node + 1, right_carry);
    }

    /// Run one extraction round: fill each touched block's `records` buffer
    /// and repair the summary.  Returns the number of records extracted.
    ///
    /// Sub-grain rounds (estimated work below the active
    /// [`round_min_grain`] hint) run entirely on the calling thread and push
    /// no pool jobs.
    fn extract_round(&mut self) -> usize {
        self.touched.clear();
        if self.active == 0 {
            return 0;
        }
        self.collect_touched(1, None);
        debug_assert!(!self.touched.is_empty());
        // Each touched block costs at most one block scan; cap the estimate
        // by the number of elements still alive.
        let est_work = (self.touched.len() * BLOCK).min(self.active);
        let grain = round_min_grain(est_work);
        let grain_blocks = if grain >= est_work {
            // Sub-grain round: stay on the calling thread, no pool traffic.
            self.touched.len()
        } else {
            grain.div_ceil(BLOCK).max(1)
        };
        let rule = self.rule;
        extract_touched(&mut self.blocks, 0, &self.touched, rule, grain_blocks);
        let mut count = 0;
        for &(b, _) in &self.touched {
            count += self.blocks[b].records.len();
            self.summary[self.scap + b] = self.blocks[b].min();
        }
        for &(b, _) in &self.touched {
            let mut v = (self.scap + b) / 2;
            while v >= 1 {
                self.summary[v] = min_opt(self.summary[2 * v], self.summary[2 * v + 1]);
                v /= 2;
            }
        }
        self.active -= count;
        count
    }

    /// Extract and deactivate every prefix-minimum record, returning them as
    /// `(position, key)` pairs in increasing position order.
    ///
    /// A record is an active element with no active element to its left whose
    /// key blocks it under the tree's [`TieRule`].  Returns an empty vector
    /// once all elements have been extracted.
    pub fn extract_prefix_minima(&mut self) -> Vec<(usize, K)> {
        let count = self.extract_round();
        let mut out = Vec::with_capacity(count);
        for &(b, _) in &self.touched {
            out.extend_from_slice(&self.blocks[b].records);
        }
        out
    }
}

/// [`PhaseParallel`] instance over a tournament tree: round `r` extracts every
/// prefix-minimum record and assigns it DP value `r`.
///
/// This is the shared cordon of Sec. 3 — parallel LIS runs it over the input
/// values, parallel sparse LCS over the `j` keys of the canonically sorted
/// matching pairs — so both problems delegate to this one implementation.
pub struct StaircaseCordon<K> {
    tree: TournamentTree<K>,
    values: Vec<u32>,
    round: u32,
    remaining: usize,
}

impl<K: Ord + Copy + Send + Sync> StaircaseCordon<K> {
    /// Build the tournament tree over `keys` with the given tie rule.
    pub fn new(keys: &[K], rule: TieRule) -> Self {
        StaircaseCordon {
            tree: TournamentTree::new(keys, rule),
            values: vec![0u32; keys.len()],
            round: 0,
            remaining: keys.len(),
        }
    }
}

impl<K: Ord + Copy + Send + Sync> PhaseParallel for StaircaseCordon<K> {
    /// Per-position DP values (the round each position was extracted in) plus
    /// the number of rounds, i.e. the staircase depth.
    type Output = (Vec<u32>, u32);

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let count = self.tree.extract_round();
        if count == 0 {
            return 0;
        }
        self.round += 1;
        metrics.add_edges(count as u64);
        self.remaining -= count;
        // Drain the per-block record buffers straight into the DP values —
        // no concatenated records vector is ever materialized.
        let round = self.round;
        let tree = &self.tree;
        for &(b, _) in &tree.touched {
            for &(pos, _) in &tree.blocks[b].records {
                self.values[pos] = round;
            }
        }
        count
    }

    fn finish(self) -> Self::Output {
        (self.values, self.round)
    }

    fn round_budget(&self) -> Option<u64> {
        // The staircase depth never exceeds the number of elements (Theorems
        // 3.1 and 3.2: it equals the LIS/LCS length).
        Some(self.remaining as u64)
    }
}

/// Reference (sequential, quadratic-free) computation of the prefix-minimum
/// records of one round over `keys`, used as an oracle in tests.
pub fn reference_prefix_minima<K: Ord + Copy>(
    keys: &[(usize, K)],
    rule: TieRule,
) -> Vec<(usize, K)> {
    let mut out = Vec::new();
    let mut carry: Option<K> = None;
    for &(pos, k) in keys {
        if rule.is_record(k, carry) {
            out.push((pos, k));
        }
        carry = min_opt(carry, Some(k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_rounds(keys: &[u64], rule: TieRule) -> Vec<Vec<(usize, u64)>> {
        // Oracle: repeatedly take prefix-min records from the remaining list.
        let mut remaining: Vec<(usize, u64)> = keys.iter().copied().enumerate().collect();
        let mut rounds = Vec::new();
        while !remaining.is_empty() {
            let records = reference_prefix_minima(&remaining, rule);
            let picked: std::collections::HashSet<usize> =
                records.iter().map(|&(p, _)| p).collect();
            remaining.retain(|&(p, _)| !picked.contains(&p));
            rounds.push(records);
        }
        rounds
    }

    fn check_against_oracle(keys: &[u64], rule: TieRule) {
        let mut tree = TournamentTree::new(keys, rule);
        let oracle = simulate_rounds(keys, rule);
        for (round, want) in oracle.iter().enumerate() {
            let got = tree.extract_prefix_minima();
            assert_eq!(&got, want, "round {round} mismatch for {keys:?}");
        }
        assert!(tree.extract_prefix_minima().is_empty());
        assert_eq!(tree.active_count(), 0);
    }

    #[test]
    fn example_from_paper_figure2() {
        // Input sequence of Fig. 2(a): 7 3 6 8 1 4 2 5.
        let keys = [7u64, 3, 6, 8, 1, 4, 2, 5];
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        // Round 1: prefix minima are 7, 3, 1 (positions 0, 1, 4).
        assert_eq!(tree.extract_prefix_minima(), vec![(0, 7), (1, 3), (4, 1)]);
        // Round 2: remaining 6 8 4 2 5 -> prefix minima 6, 4, 2.
        assert_eq!(tree.extract_prefix_minima(), vec![(2, 6), (5, 4), (6, 2)]);
        // Round 3: remaining 8 5 -> prefix minima 8, 5.
        assert_eq!(tree.extract_prefix_minima(), vec![(3, 8), (7, 5)]);
        assert!(tree.extract_prefix_minima().is_empty());
    }

    #[test]
    fn rounds_equal_lis_length() {
        // The number of extraction rounds equals the LIS length of the input
        // (Theorem 3.1's span argument).
        let keys = [7u64, 3, 6, 8, 1, 4, 2, 5];
        let rounds = simulate_rounds(&keys, TieRule::TiesAreRecords).len();
        assert_eq!(rounds, 3); // LIS of the Fig. 2 sequence is 3 (e.g. 3 4 5).
    }

    #[test]
    fn increasing_input_one_round() {
        let keys: Vec<u64> = (0..1000).collect();
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        let r1 = tree.extract_prefix_minima();
        assert_eq!(r1.len(), 1, "only the first element is a record");
        // Decreasing input: everything is a record in round one.
        let keys: Vec<u64> = (0..1000).rev().collect();
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        assert_eq!(tree.extract_prefix_minima().len(), 1000);
        assert!(tree.extract_prefix_minima().is_empty());
    }

    #[test]
    fn ties_rules_differ() {
        let keys = [5u64, 5, 5];
        let mut with_ties = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        assert_eq!(with_ties.extract_prefix_minima().len(), 3);
        let mut no_ties = TournamentTree::new(&keys, TieRule::TiesBlocked);
        assert_eq!(no_ties.extract_prefix_minima().len(), 1);
        assert_eq!(no_ties.extract_prefix_minima().len(), 1);
        assert_eq!(no_ties.extract_prefix_minima().len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let mut t: TournamentTree<u64> = TournamentTree::new(&[], TieRule::TiesAreRecords);
        assert!(t.is_empty());
        assert!(t.extract_prefix_minima().is_empty());
        let mut t = TournamentTree::new(&[42u64], TieRule::TiesAreRecords);
        assert_eq!(t.extract_prefix_minima(), vec![(0, 42)]);
        assert!(t.extract_prefix_minima().is_empty());
    }

    #[test]
    fn pseudo_random_inputs_match_oracle() {
        // Deterministic pseudo-random sequences of several sizes, straddling
        // the block boundary (1024) and multiple blocks.
        for &n in &[
            1usize, 2, 3, 10, 63, 64, 65, 257, 1000, 1023, 1024, 1025, 5000,
        ] {
            let keys: Vec<u64> = (0..n as u64).map(|i| (i * 48271 + 11) % 997).collect();
            check_against_oracle(&keys, TieRule::TiesAreRecords);
            check_against_oracle(&keys, TieRule::TiesBlocked);
        }
    }

    #[test]
    fn min_active_tracks_extractions() {
        let keys = [9u64, 2, 7, 4];
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        assert_eq!(tree.min_active(), Some(2));
        tree.extract_prefix_minima(); // removes 9 and 2
        assert_eq!(tree.min_active(), Some(4));
        tree.extract_prefix_minima(); // removes 7 and 4
        assert_eq!(tree.min_active(), None);
    }

    #[test]
    fn cross_block_carry_blocks_later_blocks() {
        // A tiny key in block 0 must block everything in later blocks.
        let mut keys = vec![1_000_000u64; 3000];
        keys[0] = 0;
        let mut tree = TournamentTree::new(&keys, TieRule::TiesBlocked);
        assert_eq!(tree.extract_prefix_minima(), vec![(0, 0)]);
        // With the blocker gone, every remaining (equal) key ties; under
        // TiesBlocked only the first survives per round... the first element
        // of the remaining sequence is the sole record.
        assert_eq!(tree.extract_prefix_minima(), vec![(1, 1_000_000)]);
    }

    #[test]
    fn large_input_fully_drains() {
        let n = 100_000usize;
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
        let mut total = 0usize;
        let mut rounds = 0usize;
        loop {
            let r = tree.extract_prefix_minima();
            if r.is_empty() {
                break;
            }
            total += r.len();
            rounds += 1;
            assert!(rounds <= n, "cannot need more rounds than elements");
        }
        assert_eq!(total, n);
        assert_eq!(tree.active_count(), 0);
    }
}
