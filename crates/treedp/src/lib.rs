//! Generalized LWS on trees (Sec. 5.3, Theorem 5.3).
//!
//! Tree-GLWS generalizes the 1-D recurrence to a rooted tree: for every node
//! `v`, `D[v] = min over ancestors u of E[u] + w(d_u, d_v)` where `d_x` is the
//! distance of `x` from the root and `E[u] = f(D[u], u)`.  Along any
//! root-to-leaf path this is exactly the 1-D GLWS of Sec. 4; the difficulty is
//! sharing the best-decision structures across branching paths.
//!
//! This crate provides the tree substrate and the full ladder of evaluators:
//!
//! * [`naive_tree_glws`] — each node scans all of its ancestors
//!   (`O(n·h)` work); the exact reference used by every test,
//! * [`sequential_tree_glws`] — depth-first traversal that reuses the parent's
//!   scan state, the direct analogue of the sequential 1-D algorithm,
//! * [`parallel_tree_glws`] — the baseline Cordon evaluation
//!   ([`TreeGlwsCordon`]): nodes are processed in rounds by tree depth (every
//!   node's decisions live strictly above it, so depth levels are valid
//!   frontiers), all nodes of a round in parallel, but each node still
//!   rescans its full ancestor chain — `O(n·h)` work,
//! * [`parallel_tree_glws_hld`] — the **work-efficient version of
//!   Theorem 5.3** ([`HldTreeGlwsCordon`]): a [heavy-light
//!   decomposition](hld::HeavyLightDecomposition) partitions every ancestor
//!   chain into `O(log n)` heavy-path prefixes, and each heavy path keeps a
//!   *persistent* monotone best-decision envelope that grows as frontiers
//!   settle, so one node costs `O(log² n)` instead of `O(depth)` and each
//!   round's work is proportional to its frontier size (times polylog).  The
//!   transition cost must be convex or concave along root paths (declared via
//!   [`CostShape`]); the baseline cordon is kept as the shape-oblivious
//!   oracle and the ablation partner,
//! * [`parallel_tree_glws_auto`] — the **shape-adaptive router**: an `O(n)`
//!   [`hld::TreeShapeStats`] probe compares the tree's average ancestor-chain
//!   length against the envelope machinery's polylog per-node estimate and
//!   runs whichever cordon is predicted cheaper
//!   ([`choose_tree_glws_strategy`]).  Deep shapes (paths, caterpillars) get
//!   the work-efficient envelopes; shallow bushy shapes skip the `O(log² n)`
//!   constant entirely.  Both alternatives produce identical results, so the
//!   choice is invisible except in wall clock and work counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hld;

mod envelope;

use envelope::{EnvelopeArena, NO_ENTRY};
use hld::{HeavyLightDecomposition, TreeShapeStats};
use pardp_core::{run_phase_parallel, EitherCordon, FrontierArena, PhaseParallel};
use pardp_parutils::{round_min_grain, Metrics, MetricsCollector};
use rayon::prelude::*;

/// Shape contract of the transition cost `w` along root paths, required by
/// the work-efficient cordon ([`HldTreeGlwsCordon`]).
///
/// For ancestors `a`, `b` with `d_a <= d_b` on one root path and query
/// distances `x <= y` (both `>= d_b`):
///
/// * **`Convex`** — `w(d_b, x) - w(d_a, x) >= w(d_b, y) - w(d_a, y)`: once
///   the deeper candidate is at least as good, it stays at least as good
///   (costs of the form `g(d_v - d_u)` with convex `g`),
/// * **`Concave`** — the mirrored inequality: the deeper candidate wins on a
///   prefix of query distances (`g` concave, e.g. capped-linear or `√`).
///
/// The naive and baseline evaluators need no such assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostShape {
    /// Deeper decisions win on a suffix of query distances.
    Convex,
    /// Deeper decisions win on a prefix of query distances.
    Concave,
}

/// A rooted tree instance for Tree-GLWS.
pub struct TreeGlwsInstance<W, E> {
    /// `parent[v]` for `v in 1..=n`; `parent[0]` is ignored (node 0 is the
    /// root).  Parents must have smaller indices.
    pub parent: Vec<usize>,
    /// Distance of every node from the root (monotone along root paths).
    pub dist: Vec<u64>,
    /// Boundary value `D[0]`.
    pub d0: i64,
    /// Transition cost `w(d_u, d_v)` on root distances (`d_u < d_v`).
    pub w: W,
    /// `E[u] = f(D[u], u)`.
    pub e: E,
}

/// Result of a Tree-GLWS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGlwsResult {
    /// DP value of every node (`d[0]` is the boundary).
    pub d: Vec<i64>,
    /// Best ancestor decision of every node (`best[0] = 0`).
    pub best: Vec<usize>,
    /// Work / round counters.
    pub metrics: Metrics,
}

impl<W, E> TreeGlwsInstance<W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Build an instance from a parent array and per-node edge lengths
    /// (`edge_len[v]` is the length of the edge from `parent[v]` to `v`).
    pub fn new(parent: Vec<usize>, edge_len: &[u64], d0: i64, w: W, e: E) -> Self {
        let n = parent.len() - 1;
        assert_eq!(edge_len.len(), n + 1, "need one edge length per node");
        let mut dist = vec![0u64; n + 1];
        for v in 1..=n {
            assert!(parent[v] < v, "parents must precede children");
            dist[v] = dist[parent[v]] + edge_len[v];
        }
        TreeGlwsInstance {
            parent,
            dist,
            d0,
            w,
            e,
        }
    }

    /// Number of non-root nodes.
    pub fn n(&self) -> usize {
        self.parent.len() - 1
    }

    fn value_via(&self, d_u: i64, u: usize, v: usize) -> i64 {
        (self.e)(d_u, u) + (self.w)(self.dist[u], self.dist[v])
    }
}

/// Reference evaluation: every node scans all of its ancestors.
pub fn naive_tree_glws<W, E>(inst: &TreeGlwsInstance<W, E>) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let n = inst.n();
    let mut d = vec![0i64; n + 1];
    let mut best = vec![0usize; n + 1];
    d[0] = inst.d0;
    let mut edges = 0u64;
    for v in 1..=n {
        let mut u = inst.parent[v];
        let mut bv = i64::MAX;
        let mut bu = 0usize;
        loop {
            edges += 1;
            let cand = inst.value_via(d[u], u, v);
            if cand < bv {
                bv = cand;
                bu = u;
            }
            if u == 0 {
                break;
            }
            u = inst.parent[u];
        }
        d[v] = bv;
        best[v] = bu;
    }
    metrics.add_edges(edges);
    metrics.add_states(n as u64);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Sequential evaluation in index order (parents precede children), scanning
/// the ancestor chain of each node; identical values to [`naive_tree_glws`]
/// but exposed separately so the benchmark harness can attribute the
/// sequential baseline explicitly.
pub fn sequential_tree_glws<W, E>(inst: &TreeGlwsInstance<W, E>) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    naive_tree_glws(inst)
}

/// Parallel evaluation: nodes are grouped into frontiers by tree depth (all
/// decisions of a node are proper ancestors, hence in earlier frontiers) and
/// every frontier is evaluated in parallel.
pub fn parallel_tree_glws<W, E>(inst: &TreeGlwsInstance<W, E>) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(TreeGlwsCordon::new(inst), &metrics);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Work-efficient parallel evaluation (Theorem 5.3): same depth-level
/// frontiers as [`parallel_tree_glws`], but each node consults `O(log n)`
/// persistent heavy-path envelopes instead of rescanning its ancestor chain.
/// The cost must satisfy the declared [`CostShape`] contract.
pub fn parallel_tree_glws_hld<W, E>(
    inst: &TreeGlwsInstance<W, E>,
    shape: CostShape,
) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(HldTreeGlwsCordon::new(inst, shape), &metrics);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Which Tree-GLWS cordon the shape-adaptive router picked for an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeGlwsStrategy {
    /// The `O(n·h)` ancestor-rescan cordon ([`TreeGlwsCordon`]) — cheapest on
    /// shallow or bushy trees, where the average ancestor chain is shorter
    /// than the envelope machinery's polylog per-node cost.
    Baseline,
    /// The heavy-light envelope cordon ([`HldTreeGlwsCordon`], Theorem 5.3) —
    /// pays off once chains are deep (paths, caterpillars, biased trees).
    Hld,
}

/// Pick the cheaper Tree-GLWS cordon from an `O(n)` shape probe.
///
/// The baseline rescans exactly `avg_depth` ancestors per node; the HLD
/// cordon spends `O(log n)` segment queries, each an `O(log h)` binary-lifted
/// descent, plus takeover binary searches per settled node.  We estimate the
/// envelope cost as `log2(n) · log2(h)` per node and route to HLD only when
/// the measured average chain length exceeds it — so shallow balanced or
/// random-attachment trees (avg depth `O(log n)`) keep the baseline, while
/// paths and caterpillars (avg depth `Θ(n)`) get the work-efficient cordon.
/// The constants cancel well in practice: on the benchmark's balanced 8-ary
/// tree the estimate is ≈ 9× the average depth, on a path it is ≈ 1% of it.
pub fn choose_tree_glws_strategy(stats: &TreeShapeStats) -> TreeGlwsStrategy {
    route_by_depth(stats.n, stats.height, stats.avg_depth())
}

/// The router's actual decision rule.  It consults only the depth profile —
/// node count, height, average depth — so the hot path
/// ([`tree_glws_cordon_auto`]) can feed it from a single-pass scan instead of
/// the full [`TreeShapeStats`] probe (whose heavy-path statistics are
/// diagnostics, not routing inputs).
fn route_by_depth(n: usize, height: usize, avg_depth: f64) -> TreeGlwsStrategy {
    let estimate = ((n as f64 + 2.0).log2()) * ((height as f64 + 2.0).log2());
    if avg_depth > estimate {
        TreeGlwsStrategy::Hld
    } else {
        TreeGlwsStrategy::Baseline
    }
}

/// Single-pass depth profile of a `parent` array: everything
/// [`route_by_depth`] needs plus the per-node depths themselves, so the
/// routed constructor can hand the buffer straight to [`TreeGlwsCordon`]
/// instead of recomputing it (the probe + level build would otherwise be the
/// dominant cost of a shallow-tree solve).
struct DepthProfile {
    /// `depth[v]` = edge depth of node `v` (`depth[0] == 0`).
    depth: Vec<u32>,
    /// `counts[t]` = number of nodes at depth `t` (`counts[0] == 0`:
    /// the root is not a DP state).
    counts: Vec<usize>,
    /// Maximum entry of `depth`.
    height: usize,
    /// Sum over non-root nodes — the baseline cordon's exact probe count.
    total_depth: u64,
    /// True when `depth` is nondecreasing in node index — BFS-style
    /// numberings (paths, stars, balanced trees) — so the depth-sorted node
    /// order is simply `1..=n` and no permutation needs materializing.
    sorted: bool,
}

impl DepthProfile {
    fn new(parent: &[usize]) -> Self {
        let n = parent.len() - 1;
        let mut depth = vec![0u32; n + 1];
        let mut counts = vec![0usize; 1];
        let mut height = 0u32;
        let mut total_depth = 0u64;
        let mut sorted = true;
        let mut prev = 0u32;
        for v in 1..=n {
            let dv = depth[parent[v]] + 1;
            depth[v] = dv;
            if dv > height {
                height = dv;
                counts.resize(height as usize + 1, 0);
            }
            counts[dv as usize] += 1;
            total_depth += dv as u64;
            sorted &= dv >= prev;
            prev = dv;
        }
        DepthProfile {
            depth,
            counts,
            height: height as usize,
            total_depth,
            sorted,
        }
    }

    fn avg_depth(&self) -> f64 {
        let n = self.depth.len() - 1;
        if n == 0 {
            0.0
        } else {
            self.total_depth as f64 / n as f64
        }
    }
}

/// Build the cordon [`choose_tree_glws_strategy`] selects for `inst`, as an
/// [`EitherCordon`] value any phase-parallel driver (including the facade's
/// `CordonSolver`) can run directly.  `shape` is only consulted when the HLD
/// cordon is chosen; both alternatives produce identical `(d, best)` outputs
/// and identical depth-level frontiers.
pub fn tree_glws_cordon_auto<'a, W, E>(
    inst: &'a TreeGlwsInstance<W, E>,
    shape: CostShape,
) -> EitherCordon<TreeGlwsCordon<'a, W, E>, HldTreeGlwsCordon<'a, W, E>>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let prof = DepthProfile::new(&inst.parent);
    match route_by_depth(inst.n(), prof.height, prof.avg_depth()) {
        TreeGlwsStrategy::Baseline => EitherCordon::First(TreeGlwsCordon::from_profile(inst, prof)),
        TreeGlwsStrategy::Hld => EitherCordon::Second(HldTreeGlwsCordon::new(inst, shape)),
    }
}

/// Shape-adaptive parallel evaluation: probe the tree with
/// [`TreeShapeStats`], then run whichever of [`parallel_tree_glws`] /
/// [`parallel_tree_glws_hld`] the probe predicts is cheaper on this instance.
pub fn parallel_tree_glws_auto<W, E>(
    inst: &TreeGlwsInstance<W, E>,
    shape: CostShape,
) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(tree_glws_cordon_auto(inst, shape), &metrics);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Counting-sort the non-root nodes by depth into one flat CSR buffer:
/// `order[offsets[t]..offsets[t + 1]]` holds the depth `t + 1` nodes in node
/// order (depths are contiguous so no level is empty).  One flat allocation
/// instead of a `Vec<Vec<_>>` whose widest level reallocates while filling.
fn depth_order(prof: DepthProfile) -> (Option<Vec<u32>>, Vec<usize>) {
    let n = prof.depth.len() - 1;
    let mut offsets = prof.counts;
    for t in 1..offsets.len() {
        offsets[t] += offsets[t - 1];
    }
    if prof.sorted {
        // Depth already nondecreasing in node index: the sorted order is the
        // identity, level `t` is simply nodes `offsets[t] + 1 ..= offsets[t + 1]`.
        return (None, offsets);
    }
    let mut cursor = offsets.clone();
    let mut order = vec![0u32; n];
    for v in 1..=n {
        let c = &mut cursor[prof.depth[v] as usize - 1];
        order[*c] = v as u32;
        *c += 1;
    }
    (Some(order), offsets)
}

/// [`PhaseParallel`] instance for Tree-GLWS: frontiers are the tree's depth
/// levels (all decisions of a node are proper ancestors, hence in earlier
/// frontiers), each evaluated in parallel.
pub struct TreeGlwsCordon<'a, W, E> {
    inst: &'a TreeGlwsInstance<W, E>,
    /// Non-root nodes counting-sorted by depth (`None` when node index order
    /// is already depth-sorted — the identity permutation); see
    /// [`depth_order`].
    order: Option<Vec<u32>>,
    /// `order[offsets[t]..offsets[t + 1]]` is the depth `t + 1` level.
    offsets: Vec<usize>,
    next_level: usize,
    d: Vec<i64>,
    best: Vec<usize>,
    /// Reused per-round result buffer (grown once to the widest level).
    scratch: Vec<(i64, usize)>,
}

impl<'a, W, E> TreeGlwsCordon<'a, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Group the nodes by depth and initialize the DP arrays.
    pub fn new(inst: &'a TreeGlwsInstance<W, E>) -> Self {
        Self::from_profile(inst, DepthProfile::new(&inst.parent))
    }

    /// [`TreeGlwsCordon::new`] with an already-computed depth profile, so the
    /// shape router's probe pass is not repeated by the constructor.
    fn from_profile(inst: &'a TreeGlwsInstance<W, E>, prof: DepthProfile) -> Self {
        let n = inst.n();
        let mut d = vec![0i64; n + 1];
        d[0] = inst.d0;
        let (order, offsets) = depth_order(prof);
        TreeGlwsCordon {
            inst,
            order,
            offsets,
            next_level: 0,
            d,
            best: vec![0usize; n + 1],
            scratch: Vec::new(),
        }
    }
}

/// The baseline relaxation of one node: scan every proper ancestor of `v` and
/// keep the best decision.  Shared by the parallel round and its sub-grain
/// inline fast path so both compute bit-identical `(value, decision)` pairs.
#[inline]
fn relax_ancestors<W, E>(inst: &TreeGlwsInstance<W, E>, d: &[i64], v: usize) -> (i64, usize)
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let mut u = inst.parent[v];
    let mut bv = i64::MAX;
    let mut bu = 0usize;
    loop {
        let cand = inst.value_via(d[u], u, v);
        if cand < bv {
            bv = cand;
            bu = u;
        }
        if u == 0 {
            break;
        }
        u = inst.parent[u];
    }
    (bv, bu)
}

impl<W, E> PhaseParallel for TreeGlwsCordon<'_, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// DP values plus the best ancestor decision of every node.
    type Output = (Vec<i64>, Vec<usize>);

    fn is_done(&self) -> bool {
        self.next_level + 1 >= self.offsets.len()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let inst = self.inst;
        let (lo, hi) = (
            self.offsets[self.next_level],
            self.offsets[self.next_level + 1],
        );
        let size = hi - lo;
        // Every node in a level sits at the same depth, so the level's
        // ancestor-probe count is `size × depth` — no per-node pass needed.
        metrics.add_edges(size as u64 * (self.next_level as u64 + 1));
        if round_min_grain(size) >= size {
            // Sub-grain fast path: the grain policy keeps this round inline
            // anyway, so skip the tuple staging and write results directly —
            // node values only read strictly shallower (already-settled)
            // entries of `d`, never this level's.
            for i in lo..hi {
                let v = match &self.order {
                    Some(order) => order[i] as usize,
                    None => i + 1,
                };
                let (bv, bu) = relax_ancestors(inst, &self.d, v);
                self.d[v] = bv;
                self.best[v] = bu;
            }
        } else {
            let d_ref = &self.d;
            // Reuse the round scratch: `collect_into_vec` refills the buffer
            // in place, so after the widest level no round allocates.
            let mut results = std::mem::take(&mut self.scratch);
            match &self.order {
                Some(order) => order[lo..hi]
                    .par_iter()
                    .map(|&v| relax_ancestors(inst, d_ref, v as usize))
                    .with_min_len(round_min_grain(size))
                    .collect_into_vec(&mut results),
                None => (lo..hi)
                    .into_par_iter()
                    .map(|i| relax_ancestors(inst, d_ref, i + 1))
                    .with_min_len(round_min_grain(size))
                    .collect_into_vec(&mut results),
            }
            for (i, &(bv, bu)) in results.iter().enumerate() {
                let v = match &self.order {
                    Some(order) => order[lo + i] as usize,
                    None => lo + i + 1,
                };
                self.d[v] = bv;
                self.best[v] = bu;
            }
            self.scratch = results;
        }
        self.next_level += 1;
        size
    }

    fn finish(self) -> Self::Output {
        (self.d, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per depth level: the tree height.
        Some((self.offsets.len() - 1) as u64)
    }
}

/// Work-efficient [`PhaseParallel`] instance for Tree-GLWS (Theorem 5.3).
///
/// Frontiers are the same depth levels as [`TreeGlwsCordon`]'s, so the round
/// theorem (rounds == tree height) is unchanged; the difference is what one
/// round costs.  A heavy path is a vertical chain with at most one node per
/// depth, so each round settles at most one new position per path, and every
/// settled node is pushed — exactly once — onto its path's persistent
/// best-decision envelope.  A frontier node then consults the `O(log n)`
/// heavy-path prefixes covering its ancestor chain, each answered by one
/// binary-lifted envelope query in `O(log n)` comparisons with *no* cost
/// evaluations.  Per-pair takeover keys are found by binary search during the
/// push, which is where the cost function is evaluated: `O(log maxdist)`
/// evaluations amortized per settled node.  Total work `O(n · polylog)`
/// versus the baseline's `O(n · h)`; per-round cost is proportional to the
/// frontier size times polylog factors.
pub struct HldTreeGlwsCordon<'a, W, E> {
    inst: &'a TreeGlwsInstance<W, E>,
    hld: HeavyLightDecomposition,
    levels: Vec<Vec<usize>>,
    next_level: usize,
    d: Vec<i64>,
    best: Vec<usize>,
    arena: EnvelopeArena,
    /// Per path (indexed by its head node): current top-of-stack entry.
    tops: Vec<u32>,
    /// Per settled node: the envelope entry created when it settled — i.e. the
    /// persistent version covering its path's positions up to the node.
    version: Vec<u32>,
    /// Reused per-round result buffer (grown once to the widest level).
    scratch: Vec<(usize, i64, usize, u64, u64)>,
}

impl<'a, W, E> HldTreeGlwsCordon<'a, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Decompose the tree, group the nodes by depth and seed the root's
    /// envelope.  `shape` declares which [`CostShape`] contract `inst.w`
    /// satisfies; it is trusted, not checked (the property-test suite checks
    /// it against [`naive_tree_glws`] for the workloads we ship).
    pub fn new(inst: &'a TreeGlwsInstance<W, E>, shape: CostShape) -> Self {
        let n = inst.n();
        let mut d = vec![0i64; n + 1];
        d[0] = inst.d0;
        let hld = HeavyLightDecomposition::new(&inst.parent);
        // Bucket the depth frontiers from the decomposition's depth vector
        // rather than recomputing depths via depth_levels().
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); hld.height()];
        for v in 1..=n {
            levels[hld.depth[v] - 1].push(v);
        }
        let max_x = inst.dist.iter().copied().max().unwrap_or(0);
        // A heavy-path stack holds at most one node per depth, so the arena's
        // lifting rows are sized by the tree height, not n — on shallow trees
        // that cache-blocks the push/query hot loops (see envelope.rs).
        let mut arena = EnvelopeArena::new(n, hld.height() + 1, max_x, shape);
        let mut tops = vec![NO_ENTRY; n + 1];
        let mut version = vec![NO_ENTRY; n + 1];
        // The root is settled from the start: it seeds its path's envelope.
        let f = |u: usize, x: u64| (inst.e)(d[u], u) + (inst.w)(inst.dist[u], x);
        let (root_entry, _) = arena.push(NO_ENTRY, 0, inst.dist[0], &f);
        tops[0] = root_entry;
        version[0] = root_entry;
        HldTreeGlwsCordon {
            inst,
            hld,
            levels,
            next_level: 0,
            d,
            best: vec![0usize; n + 1],
            arena,
            tops,
            version,
            scratch: Vec::new(),
        }
    }

    /// The decomposition driving the segment queries (exposed for tests and
    /// diagnostics).
    pub fn decomposition(&self) -> &HeavyLightDecomposition {
        &self.hld
    }
}

impl<W, E> PhaseParallel for HldTreeGlwsCordon<'_, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// DP values plus the best ancestor decision of every node.
    type Output = (Vec<i64>, Vec<usize>);

    fn is_done(&self) -> bool {
        self.next_level >= self.levels.len()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        // Delegate through `round_with` so both driver entry points share one
        // round body; a caller-less arena only costs its first-use growth.
        let mut arena = FrontierArena::new();
        self.round_with(metrics, &mut arena)
    }

    fn round_with(&mut self, metrics: &MetricsCollector, frontier: &mut FrontierArena) -> usize {
        let inst = self.inst;
        let level = &self.levels[self.next_level];
        let (arena, hld, d_ref, version) = (&self.arena, &self.hld, &self.d, &self.version);
        // Query phase: every frontier node walks its O(log n) heavy-path
        // segments, nearest first, querying each segment's persistent
        // envelope version.  Read-only, hence fully parallel.  Ties across
        // segments keep the nearest segment and ties inside a segment keep
        // the deepest position, so `best` matches the naive ancestor scan
        // exactly.
        let mut results = std::mem::take(&mut self.scratch);
        level
            .par_iter()
            .map(|&v| {
                let dv = inst.dist[v];
                let (mut bv, mut bu) = (i64::MAX, 0usize);
                let (mut probes, mut edges) = (0u64, 0u64);
                for x in hld.ancestor_segments(&inst.parent, v) {
                    let (entry, p) = arena.query(version[x], dv);
                    probes += p;
                    let u = arena.node_of(entry);
                    edges += 1;
                    let cand = inst.value_via(d_ref[u], u, v);
                    if cand < bv {
                        bv = cand;
                        bu = u;
                    }
                }
                (v, bv, bu, probes, edges)
            })
            .with_min_len(round_min_grain(level.len()))
            .collect_into_vec(&mut results);
        let size = level.len();
        let (mut probes, mut edges) = (0u64, 0u64);
        for &(v, bv, bu, p, e) in &results {
            self.d[v] = bv;
            self.best[v] = bu;
            probes += p;
            edges += e;
        }
        // Settle phase, prepare half (parallel): a heavy path holds at most
        // one node per depth, so the round's settled nodes lie on pairwise
        // distinct heavy paths and every `tops[head]` read here is stable for
        // the whole round — each prepare computes exactly the pops and
        // takeover key the sequential push loop would have, independently of
        // the others.  The prepared pushes are staged in the driver arena's
        // pair buffer, `(below | evals, key)` packed per node.
        let (arena, hld, d_ref, tops) = (&self.arena, &self.hld, &self.d, &self.tops);
        let f = |u: usize, x: u64| (inst.e)(d_ref[u], u) + (inst.w)(inst.dist[u], x);
        let preps = frontier.pairs_mut();
        results
            .par_iter()
            .map(|&(v, ..)| {
                let (below, key, evals) =
                    arena.prepare_push(tops[hld.head[v]], v, inst.dist[v], &f);
                debug_assert!(evals < 1 << 32, "eval count must fit the packed word");
                (((below as u64) << 32) | evals, key)
            })
            .with_min_len(round_min_grain(results.len()))
            .collect_into_vec(preps);
        // Commit half (sequential, in level order): appending the prepared
        // entries in the same fixed order the sequential loop used yields a
        // bit-identical arena layout at O(log) words per node, so results are
        // deterministic at any thread count.
        for (&(v, ..), &(packed, key)) in results.iter().zip(preps.iter()) {
            let entry = self.arena.commit_push((packed >> 32) as u32, v, key);
            let h = self.hld.head[v];
            self.tops[h] = entry;
            self.version[v] = entry;
            edges += packed & 0xFFFF_FFFF;
        }
        metrics.add_edges(edges);
        metrics.add_probes(probes);
        self.scratch = results;
        self.next_level += 1;
        size
    }

    fn finish(self) -> Self::Output {
        (self.d, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per depth level, exactly like the baseline cordon.
        Some(self.levels.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn convex_w(du: u64, dv: u64) -> i64 {
        let len = (dv - du) as i64;
        10 + len * len
    }

    fn random_tree(n: usize, chain_bias: u64, seed: u64) -> (Vec<usize>, Vec<u64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut parent = vec![0usize; n + 1];
        let mut lens = vec![0u64; n + 1];
        for v in 1..=n {
            parent[v] = if v == 1 || next() % 100 < chain_bias {
                v - 1
            } else {
                (next() % v as u64) as usize
            };
            lens[v] = next() % 5 + 1;
        }
        (parent, lens)
    }

    #[test]
    fn chain_tree_reduces_to_1d_glws() {
        // A path is exactly the 1-D problem; compare against pardp-glws naive.
        let n = 60usize;
        let parent: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1)).collect();
        let lens = vec![1u64; n + 1];
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let tree = parallel_tree_glws(&inst);
        let oned = pardp_glws::naive_glws(&pardp_glws::ConvexGapCost::new(n, 10, 0, 1));
        assert_eq!(tree.d, oned.d);
    }

    #[test]
    fn parallel_matches_naive_on_random_trees() {
        for seed in 0..6 {
            for &bias in &[0u64, 40, 90] {
                let (parent, lens) = random_tree(200, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 5, convex_w, |d, u| d + (u % 3) as i64);
                let want = naive_tree_glws(&inst);
                let got = parallel_tree_glws(&inst);
                assert_eq!(got.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(got.best, want.best, "seed {seed} bias {bias}");
            }
        }
    }

    #[test]
    fn rounds_equal_tree_height() {
        let (parent, lens) = random_tree(300, 70, 9);
        let inst = TreeGlwsInstance::new(parent.clone(), &lens, 0, convex_w, |d, _| d);
        let r = parallel_tree_glws(&inst);
        let mut depth = vec![0usize; parent.len()];
        let mut h = 0;
        for v in 1..parent.len() {
            depth[v] = depth[parent[v]] + 1;
            h = h.max(depth[v]);
        }
        assert_eq!(r.metrics.rounds as usize, h);
    }

    #[test]
    fn siblings_share_dp_values() {
        // A star: every leaf has the same single decision (the root).
        let n = 20;
        let parent = vec![0usize; n + 1];
        let lens = vec![3u64; n + 1];
        let inst = TreeGlwsInstance::new(parent, &lens, 7, convex_w, |d, _| d);
        let r = parallel_tree_glws(&inst);
        for v in 1..=n {
            assert_eq!(r.d[v], 7 + 10 + 9);
            assert_eq!(r.best[v], 0);
        }
        assert_eq!(r.metrics.rounds, 1);
    }

    #[test]
    fn empty_tree() {
        let inst = TreeGlwsInstance::new(vec![0], &[0], 3, convex_w, |d, _| d);
        let r = parallel_tree_glws(&inst);
        assert_eq!(r.d, vec![3]);
        assert_eq!(r.metrics.rounds, 0);
    }

    #[test]
    #[should_panic(expected = "parents must precede children")]
    fn bad_parent_order_rejected() {
        let _ = TreeGlwsInstance::new(vec![0, 2, 0], &[0, 1, 1], 0, convex_w, |d, _| d);
    }

    // -- the work-efficient cordon (Theorem 5.3) ---------------------------

    fn concave_w(du: u64, dv: u64) -> i64 {
        let len = dv - du;
        4 + 3 * len.min(7) as i64
    }

    #[test]
    fn hld_matches_naive_on_random_trees_convex() {
        for seed in 0..6 {
            for &bias in &[0u64, 40, 90, 100] {
                let (parent, lens) = random_tree(250, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 5, convex_w, |d, u| d + (u % 3) as i64);
                let want = naive_tree_glws(&inst);
                let got = parallel_tree_glws_hld(&inst, CostShape::Convex);
                assert_eq!(got.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(got.best, want.best, "seed {seed} bias {bias}");
            }
        }
    }

    #[test]
    fn hld_matches_naive_on_random_trees_concave() {
        for seed in 0..6 {
            for &bias in &[0u64, 40, 90, 100] {
                let (parent, lens) = random_tree(250, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 2, concave_w, |d, u| d + (u % 5) as i64);
                let want = naive_tree_glws(&inst);
                let got = parallel_tree_glws_hld(&inst, CostShape::Concave);
                assert_eq!(got.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(got.best, want.best, "seed {seed} bias {bias}");
            }
        }
    }

    #[test]
    fn hld_rounds_and_frontiers_match_the_baseline_cordon() {
        let (parent, lens) = random_tree(400, 70, 13);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let base = parallel_tree_glws(&inst);
        let hld = parallel_tree_glws_hld(&inst, CostShape::Convex);
        assert_eq!(hld.metrics.rounds, base.metrics.rounds);
        assert_eq!(hld.metrics.frontier_sizes, base.metrics.frontier_sizes);
        assert_eq!(hld.d, base.d);
        assert_eq!(hld.best, base.best);
    }

    #[test]
    fn hld_work_is_subquadratic_on_a_path() {
        // On a path the baseline rescans every ancestor: exactly n(n+1)/2
        // edges.  The heavy-light cordon must stay polylog per node.
        let n = 4_000usize;
        let parent: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1)).collect();
        let lens = vec![1u64; n + 1];
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let base = parallel_tree_glws(&inst);
        assert_eq!(base.metrics.edges_relaxed, (n * (n + 1) / 2) as u64);
        let hld = parallel_tree_glws_hld(&inst, CostShape::Convex);
        assert_eq!(hld.d, base.d);
        assert_eq!(hld.best, base.best);
        let log = (usize::BITS - n.leading_zeros()) as u64;
        assert!(
            hld.metrics.work_proxy() <= 12 * n as u64 * log,
            "HLD work {} exceeds 12·n·log n = {}",
            hld.metrics.work_proxy(),
            12 * n as u64 * log
        );
        assert!(hld.metrics.work_proxy() < base.metrics.edges_relaxed);
    }

    #[test]
    fn hld_star_and_empty_trees() {
        let n = 20;
        let inst = TreeGlwsInstance::new(
            vec![0usize; n + 1],
            &vec![3u64; n + 1],
            7,
            convex_w,
            |d, _| d,
        );
        let r = parallel_tree_glws_hld(&inst, CostShape::Convex);
        for v in 1..=n {
            assert_eq!(r.d[v], 7 + 10 + 9);
            assert_eq!(r.best[v], 0);
        }
        assert_eq!(r.metrics.rounds, 1);
        let empty = TreeGlwsInstance::new(vec![0], &[0], 3, convex_w, |d, _| d);
        let r = parallel_tree_glws_hld(&empty, CostShape::Convex);
        assert_eq!(r.d, vec![3]);
        assert_eq!(r.metrics.rounds, 0);
    }

    // -- the shape-adaptive router ----------------------------------------

    #[test]
    fn router_picks_hld_on_deep_and_baseline_on_shallow_shapes() {
        let n = 5_000usize;
        let path: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1)).collect();
        assert_eq!(
            choose_tree_glws_strategy(&TreeShapeStats::new(&path)),
            TreeGlwsStrategy::Hld,
            "a path's avg depth is Θ(n)"
        );
        let star = vec![0usize; n + 1];
        assert_eq!(
            choose_tree_glws_strategy(&TreeShapeStats::new(&star)),
            TreeGlwsStrategy::Baseline,
            "a star has depth 1 everywhere — envelopes can never pay"
        );
        let balanced: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1) / 8).collect();
        assert_eq!(
            choose_tree_glws_strategy(&TreeShapeStats::new(&balanced)),
            TreeGlwsStrategy::Baseline,
            "an 8-ary balanced tree has avg depth O(log n)"
        );
        // Caterpillar: spine of n/2 plus legs — deep on average.
        let cat: Vec<usize> = (0..=n)
            .map(|v| {
                if v <= n / 2 {
                    v.saturating_sub(1)
                } else {
                    (v * 7 + 3) % (n / 2)
                }
            })
            .collect();
        assert_eq!(
            choose_tree_glws_strategy(&TreeShapeStats::new(&cat)),
            TreeGlwsStrategy::Hld,
            "a caterpillar's avg depth is Θ(spine)"
        );
    }

    #[test]
    fn auto_router_matches_naive_and_reports_identical_frontiers() {
        for seed in 0..4 {
            for &bias in &[0u64, 40, 100] {
                let (parent, lens) = random_tree(300, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 5, convex_w, |d, u| d + (u % 3) as i64);
                let want = naive_tree_glws(&inst);
                let base = parallel_tree_glws(&inst);
                let auto = parallel_tree_glws_auto(&inst, CostShape::Convex);
                assert_eq!(auto.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(auto.best, want.best, "seed {seed} bias {bias}");
                assert_eq!(
                    auto.metrics.frontier_sizes, base.metrics.frontier_sizes,
                    "seed {seed} bias {bias}: both cordons use depth frontiers"
                );
            }
        }
    }

    #[test]
    fn hld_stalls_on_an_impossible_round_budget() {
        use pardp_core::{try_run_phase_parallel_with_budget, StallError};
        let (parent, lens) = random_tree(100, 80, 3);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let metrics = MetricsCollector::new();
        let cordon = HldTreeGlwsCordon::new(&inst, CostShape::Convex);
        let height = cordon.round_budget().unwrap();
        assert!(height > 1);
        let err =
            try_run_phase_parallel_with_budget(cordon, &metrics, Some(height - 1)).unwrap_err();
        assert!(matches!(err, StallError::BudgetExhausted { budget, .. } if budget == height - 1));
    }
}
