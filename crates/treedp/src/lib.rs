//! Generalized LWS on trees (Sec. 5.3, Theorem 5.3).
//!
//! Tree-GLWS generalizes the 1-D recurrence to a rooted tree: for every node
//! `v`, `D[v] = min over ancestors u of E[u] + w(d_u, d_v)` where `d_x` is the
//! distance of `x` from the root and `E[u] = f(D[u], u)`.  Along any
//! root-to-leaf path this is exactly the 1-D GLWS of Sec. 4; the difficulty is
//! sharing the best-decision structures across branching paths.
//!
//! This crate provides the tree substrate and the full ladder of evaluators:
//!
//! * [`naive_tree_glws`] — each node scans all of its ancestors
//!   (`O(n·h)` work); the exact reference used by every test,
//! * [`sequential_tree_glws`] — depth-first traversal that reuses the parent's
//!   scan state, the direct analogue of the sequential 1-D algorithm,
//! * [`parallel_tree_glws`] — the baseline Cordon evaluation
//!   ([`TreeGlwsCordon`]): nodes are processed in rounds by tree depth (every
//!   node's decisions live strictly above it, so depth levels are valid
//!   frontiers), all nodes of a round in parallel, but each node still
//!   rescans its full ancestor chain — `O(n·h)` work,
//! * [`parallel_tree_glws_hld`] — the **work-efficient version of
//!   Theorem 5.3** ([`HldTreeGlwsCordon`]): a [heavy-light
//!   decomposition](hld::HeavyLightDecomposition) partitions every ancestor
//!   chain into `O(log n)` heavy-path prefixes, and each heavy path keeps a
//!   *persistent* monotone best-decision envelope that grows as frontiers
//!   settle, so one node costs `O(log² n)` instead of `O(depth)` and each
//!   round's work is proportional to its frontier size (times polylog).  The
//!   transition cost must be convex or concave along root paths (declared via
//!   [`CostShape`]); the baseline cordon is kept as the shape-oblivious
//!   oracle and the ablation partner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hld;

mod envelope;

use envelope::{EnvelopeArena, NO_ENTRY};
use hld::HeavyLightDecomposition;
use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{round_min_grain, Metrics, MetricsCollector};
use rayon::prelude::*;

/// Shape contract of the transition cost `w` along root paths, required by
/// the work-efficient cordon ([`HldTreeGlwsCordon`]).
///
/// For ancestors `a`, `b` with `d_a <= d_b` on one root path and query
/// distances `x <= y` (both `>= d_b`):
///
/// * **`Convex`** — `w(d_b, x) - w(d_a, x) >= w(d_b, y) - w(d_a, y)`: once
///   the deeper candidate is at least as good, it stays at least as good
///   (costs of the form `g(d_v - d_u)` with convex `g`),
/// * **`Concave`** — the mirrored inequality: the deeper candidate wins on a
///   prefix of query distances (`g` concave, e.g. capped-linear or `√`).
///
/// The naive and baseline evaluators need no such assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostShape {
    /// Deeper decisions win on a suffix of query distances.
    Convex,
    /// Deeper decisions win on a prefix of query distances.
    Concave,
}

/// A rooted tree instance for Tree-GLWS.
pub struct TreeGlwsInstance<W, E> {
    /// `parent[v]` for `v in 1..=n`; `parent[0]` is ignored (node 0 is the
    /// root).  Parents must have smaller indices.
    pub parent: Vec<usize>,
    /// Distance of every node from the root (monotone along root paths).
    pub dist: Vec<u64>,
    /// Boundary value `D[0]`.
    pub d0: i64,
    /// Transition cost `w(d_u, d_v)` on root distances (`d_u < d_v`).
    pub w: W,
    /// `E[u] = f(D[u], u)`.
    pub e: E,
}

/// Result of a Tree-GLWS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGlwsResult {
    /// DP value of every node (`d[0]` is the boundary).
    pub d: Vec<i64>,
    /// Best ancestor decision of every node (`best[0] = 0`).
    pub best: Vec<usize>,
    /// Work / round counters.
    pub metrics: Metrics,
}

impl<W, E> TreeGlwsInstance<W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Build an instance from a parent array and per-node edge lengths
    /// (`edge_len[v]` is the length of the edge from `parent[v]` to `v`).
    pub fn new(parent: Vec<usize>, edge_len: &[u64], d0: i64, w: W, e: E) -> Self {
        let n = parent.len() - 1;
        assert_eq!(edge_len.len(), n + 1, "need one edge length per node");
        let mut dist = vec![0u64; n + 1];
        for v in 1..=n {
            assert!(parent[v] < v, "parents must precede children");
            dist[v] = dist[parent[v]] + edge_len[v];
        }
        TreeGlwsInstance {
            parent,
            dist,
            d0,
            w,
            e,
        }
    }

    /// Number of non-root nodes.
    pub fn n(&self) -> usize {
        self.parent.len() - 1
    }

    fn value_via(&self, d_u: i64, u: usize, v: usize) -> i64 {
        (self.e)(d_u, u) + (self.w)(self.dist[u], self.dist[v])
    }
}

/// Reference evaluation: every node scans all of its ancestors.
pub fn naive_tree_glws<W, E>(inst: &TreeGlwsInstance<W, E>) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let n = inst.n();
    let mut d = vec![0i64; n + 1];
    let mut best = vec![0usize; n + 1];
    d[0] = inst.d0;
    let mut edges = 0u64;
    for v in 1..=n {
        let mut u = inst.parent[v];
        let mut bv = i64::MAX;
        let mut bu = 0usize;
        loop {
            edges += 1;
            let cand = inst.value_via(d[u], u, v);
            if cand < bv {
                bv = cand;
                bu = u;
            }
            if u == 0 {
                break;
            }
            u = inst.parent[u];
        }
        d[v] = bv;
        best[v] = bu;
    }
    metrics.add_edges(edges);
    metrics.add_states(n as u64);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Sequential evaluation in index order (parents precede children), scanning
/// the ancestor chain of each node; identical values to [`naive_tree_glws`]
/// but exposed separately so the benchmark harness can attribute the
/// sequential baseline explicitly.
pub fn sequential_tree_glws<W, E>(inst: &TreeGlwsInstance<W, E>) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    naive_tree_glws(inst)
}

/// Parallel evaluation: nodes are grouped into frontiers by tree depth (all
/// decisions of a node are proper ancestors, hence in earlier frontiers) and
/// every frontier is evaluated in parallel.
pub fn parallel_tree_glws<W, E>(inst: &TreeGlwsInstance<W, E>) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(TreeGlwsCordon::new(inst), &metrics);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Work-efficient parallel evaluation (Theorem 5.3): same depth-level
/// frontiers as [`parallel_tree_glws`], but each node consults `O(log n)`
/// persistent heavy-path envelopes instead of rescanning its ancestor chain.
/// The cost must satisfy the declared [`CostShape`] contract.
pub fn parallel_tree_glws_hld<W, E>(
    inst: &TreeGlwsInstance<W, E>,
    shape: CostShape,
) -> TreeGlwsResult
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(HldTreeGlwsCordon::new(inst, shape), &metrics);
    TreeGlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Group the non-root nodes by depth (`levels[t]` holds the depth `t + 1`
/// nodes; depths are contiguous so no level is empty).
fn depth_levels(parent: &[usize]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = parent.len() - 1;
    let mut depth = vec![0usize; n + 1];
    let mut max_depth = 0;
    for v in 1..=n {
        depth[v] = depth[parent[v]] + 1;
        max_depth = max_depth.max(depth[v]);
    }
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth];
    for v in 1..=n {
        levels[depth[v] - 1].push(v);
    }
    (levels, depth)
}

/// [`PhaseParallel`] instance for Tree-GLWS: frontiers are the tree's depth
/// levels (all decisions of a node are proper ancestors, hence in earlier
/// frontiers), each evaluated in parallel.
pub struct TreeGlwsCordon<'a, W, E> {
    inst: &'a TreeGlwsInstance<W, E>,
    /// Nodes grouped by depth, `levels[0]` holding depth-1 nodes; depths are
    /// contiguous so no level is empty.
    levels: Vec<Vec<usize>>,
    depth: Vec<usize>,
    next_level: usize,
    d: Vec<i64>,
    best: Vec<usize>,
    /// Reused per-round result buffer (grown once to the widest level).
    scratch: Vec<(usize, i64, usize)>,
}

impl<'a, W, E> TreeGlwsCordon<'a, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Group the nodes by depth and initialize the DP arrays.
    pub fn new(inst: &'a TreeGlwsInstance<W, E>) -> Self {
        let n = inst.n();
        let mut d = vec![0i64; n + 1];
        d[0] = inst.d0;
        let (levels, depth) = depth_levels(&inst.parent);
        TreeGlwsCordon {
            inst,
            levels,
            depth,
            next_level: 0,
            d,
            best: vec![0usize; n + 1],
            scratch: Vec::new(),
        }
    }
}

impl<W, E> PhaseParallel for TreeGlwsCordon<'_, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// DP values plus the best ancestor decision of every node.
    type Output = (Vec<i64>, Vec<usize>);

    fn is_done(&self) -> bool {
        self.next_level >= self.levels.len()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let inst = self.inst;
        let level = &self.levels[self.next_level];
        let d_ref = &self.d;
        // Reuse the round scratch: `collect_into_vec` refills the buffer in
        // place, so after the widest level no round allocates.
        let mut results = std::mem::take(&mut self.scratch);
        level
            .par_iter()
            .map(|&v| {
                let mut u = inst.parent[v];
                let mut bv = i64::MAX;
                let mut bu = 0usize;
                loop {
                    let cand = inst.value_via(d_ref[u], u, v);
                    if cand < bv {
                        bv = cand;
                        bu = u;
                    }
                    if u == 0 {
                        break;
                    }
                    u = inst.parent[u];
                }
                (v, bv, bu)
            })
            .with_min_len(round_min_grain(level.len()))
            .collect_into_vec(&mut results);
        metrics.add_edges(results.iter().map(|&(v, _, _)| self.depth[v] as u64).sum());
        let size = level.len();
        for &(v, bv, bu) in &results {
            self.d[v] = bv;
            self.best[v] = bu;
        }
        self.scratch = results;
        self.next_level += 1;
        size
    }

    fn finish(self) -> Self::Output {
        (self.d, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per depth level: the tree height.
        Some(self.levels.len() as u64)
    }
}

/// Work-efficient [`PhaseParallel`] instance for Tree-GLWS (Theorem 5.3).
///
/// Frontiers are the same depth levels as [`TreeGlwsCordon`]'s, so the round
/// theorem (rounds == tree height) is unchanged; the difference is what one
/// round costs.  A heavy path is a vertical chain with at most one node per
/// depth, so each round settles at most one new position per path, and every
/// settled node is pushed — exactly once — onto its path's persistent
/// best-decision envelope.  A frontier node then consults the `O(log n)`
/// heavy-path prefixes covering its ancestor chain, each answered by one
/// binary-lifted envelope query in `O(log n)` comparisons with *no* cost
/// evaluations.  Per-pair takeover keys are found by binary search during the
/// push, which is where the cost function is evaluated: `O(log maxdist)`
/// evaluations amortized per settled node.  Total work `O(n · polylog)`
/// versus the baseline's `O(n · h)`; per-round cost is proportional to the
/// frontier size times polylog factors.
pub struct HldTreeGlwsCordon<'a, W, E> {
    inst: &'a TreeGlwsInstance<W, E>,
    hld: HeavyLightDecomposition,
    levels: Vec<Vec<usize>>,
    next_level: usize,
    d: Vec<i64>,
    best: Vec<usize>,
    arena: EnvelopeArena,
    /// Per path (indexed by its head node): current top-of-stack entry.
    tops: Vec<u32>,
    /// Per settled node: the envelope entry created when it settled — i.e. the
    /// persistent version covering its path's positions up to the node.
    version: Vec<u32>,
    /// Reused per-round result buffer (grown once to the widest level).
    scratch: Vec<(usize, i64, usize, u64, u64)>,
}

impl<'a, W, E> HldTreeGlwsCordon<'a, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Decompose the tree, group the nodes by depth and seed the root's
    /// envelope.  `shape` declares which [`CostShape`] contract `inst.w`
    /// satisfies; it is trusted, not checked (the property-test suite checks
    /// it against [`naive_tree_glws`] for the workloads we ship).
    pub fn new(inst: &'a TreeGlwsInstance<W, E>, shape: CostShape) -> Self {
        let n = inst.n();
        let mut d = vec![0i64; n + 1];
        d[0] = inst.d0;
        let hld = HeavyLightDecomposition::new(&inst.parent);
        // Bucket the depth frontiers from the decomposition's depth vector
        // rather than recomputing depths via depth_levels().
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); hld.height()];
        for v in 1..=n {
            levels[hld.depth[v] - 1].push(v);
        }
        let max_x = inst.dist.iter().copied().max().unwrap_or(0);
        // A heavy-path stack holds at most one node per depth, so the arena's
        // lifting rows are sized by the tree height, not n — on shallow trees
        // that cache-blocks the push/query hot loops (see envelope.rs).
        let mut arena = EnvelopeArena::new(n, hld.height() + 1, max_x, shape);
        let mut tops = vec![NO_ENTRY; n + 1];
        let mut version = vec![NO_ENTRY; n + 1];
        // The root is settled from the start: it seeds its path's envelope.
        let mut f = |u: usize, x: u64| (inst.e)(d[u], u) + (inst.w)(inst.dist[u], x);
        let (root_entry, _) = arena.push(NO_ENTRY, 0, inst.dist[0], &mut f);
        tops[0] = root_entry;
        version[0] = root_entry;
        HldTreeGlwsCordon {
            inst,
            hld,
            levels,
            next_level: 0,
            d,
            best: vec![0usize; n + 1],
            arena,
            tops,
            version,
            scratch: Vec::new(),
        }
    }

    /// The decomposition driving the segment queries (exposed for tests and
    /// diagnostics).
    pub fn decomposition(&self) -> &HeavyLightDecomposition {
        &self.hld
    }
}

impl<W, E> PhaseParallel for HldTreeGlwsCordon<'_, W, E>
where
    W: Fn(u64, u64) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// DP values plus the best ancestor decision of every node.
    type Output = (Vec<i64>, Vec<usize>);

    fn is_done(&self) -> bool {
        self.next_level >= self.levels.len()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let inst = self.inst;
        let level = &self.levels[self.next_level];
        let (arena, hld, d_ref, version) = (&self.arena, &self.hld, &self.d, &self.version);
        // Query phase: every frontier node walks its O(log n) heavy-path
        // segments, nearest first, querying each segment's persistent
        // envelope version.  Read-only, hence fully parallel.  Ties across
        // segments keep the nearest segment and ties inside a segment keep
        // the deepest position, so `best` matches the naive ancestor scan
        // exactly.
        let mut results = std::mem::take(&mut self.scratch);
        level
            .par_iter()
            .map(|&v| {
                let dv = inst.dist[v];
                let (mut bv, mut bu) = (i64::MAX, 0usize);
                let (mut probes, mut edges) = (0u64, 0u64);
                for x in hld.ancestor_segments(&inst.parent, v) {
                    let (entry, p) = arena.query(version[x], dv);
                    probes += p;
                    let u = arena.node_of(entry);
                    edges += 1;
                    let cand = inst.value_via(d_ref[u], u, v);
                    if cand < bv {
                        bv = cand;
                        bu = u;
                    }
                }
                (v, bv, bu, probes, edges)
            })
            .with_min_len(round_min_grain(level.len()))
            .collect_into_vec(&mut results);
        let size = level.len();
        let (mut probes, mut edges) = (0u64, 0u64);
        for &(v, bv, bu, p, e) in &results {
            self.d[v] = bv;
            self.best[v] = bu;
            probes += p;
            edges += e;
        }
        // Settle phase: push the finalized nodes onto their paths' envelopes
        // (at most one node per path per round — a heavy path has one node
        // per depth — so the push order within the round is irrelevant).
        let (arena, d_ref) = (&mut self.arena, &self.d);
        let mut f = |u: usize, x: u64| (inst.e)(d_ref[u], u) + (inst.w)(inst.dist[u], x);
        for &(v, ..) in &results {
            let h = self.hld.head[v];
            let (entry, evals) = arena.push(self.tops[h], v, inst.dist[v], &mut f);
            self.tops[h] = entry;
            self.version[v] = entry;
            edges += evals;
        }
        metrics.add_edges(edges);
        metrics.add_probes(probes);
        self.scratch = results;
        self.next_level += 1;
        size
    }

    fn finish(self) -> Self::Output {
        (self.d, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per depth level, exactly like the baseline cordon.
        Some(self.levels.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn convex_w(du: u64, dv: u64) -> i64 {
        let len = (dv - du) as i64;
        10 + len * len
    }

    fn random_tree(n: usize, chain_bias: u64, seed: u64) -> (Vec<usize>, Vec<u64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut parent = vec![0usize; n + 1];
        let mut lens = vec![0u64; n + 1];
        for v in 1..=n {
            parent[v] = if v == 1 || next() % 100 < chain_bias {
                v - 1
            } else {
                (next() % v as u64) as usize
            };
            lens[v] = next() % 5 + 1;
        }
        (parent, lens)
    }

    #[test]
    fn chain_tree_reduces_to_1d_glws() {
        // A path is exactly the 1-D problem; compare against pardp-glws naive.
        let n = 60usize;
        let parent: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1)).collect();
        let lens = vec![1u64; n + 1];
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let tree = parallel_tree_glws(&inst);
        let oned = pardp_glws::naive_glws(&pardp_glws::ConvexGapCost::new(n, 10, 0, 1));
        assert_eq!(tree.d, oned.d);
    }

    #[test]
    fn parallel_matches_naive_on_random_trees() {
        for seed in 0..6 {
            for &bias in &[0u64, 40, 90] {
                let (parent, lens) = random_tree(200, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 5, convex_w, |d, u| d + (u % 3) as i64);
                let want = naive_tree_glws(&inst);
                let got = parallel_tree_glws(&inst);
                assert_eq!(got.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(got.best, want.best, "seed {seed} bias {bias}");
            }
        }
    }

    #[test]
    fn rounds_equal_tree_height() {
        let (parent, lens) = random_tree(300, 70, 9);
        let inst = TreeGlwsInstance::new(parent.clone(), &lens, 0, convex_w, |d, _| d);
        let r = parallel_tree_glws(&inst);
        let mut depth = vec![0usize; parent.len()];
        let mut h = 0;
        for v in 1..parent.len() {
            depth[v] = depth[parent[v]] + 1;
            h = h.max(depth[v]);
        }
        assert_eq!(r.metrics.rounds as usize, h);
    }

    #[test]
    fn siblings_share_dp_values() {
        // A star: every leaf has the same single decision (the root).
        let n = 20;
        let parent = vec![0usize; n + 1];
        let lens = vec![3u64; n + 1];
        let inst = TreeGlwsInstance::new(parent, &lens, 7, convex_w, |d, _| d);
        let r = parallel_tree_glws(&inst);
        for v in 1..=n {
            assert_eq!(r.d[v], 7 + 10 + 9);
            assert_eq!(r.best[v], 0);
        }
        assert_eq!(r.metrics.rounds, 1);
    }

    #[test]
    fn empty_tree() {
        let inst = TreeGlwsInstance::new(vec![0], &[0], 3, convex_w, |d, _| d);
        let r = parallel_tree_glws(&inst);
        assert_eq!(r.d, vec![3]);
        assert_eq!(r.metrics.rounds, 0);
    }

    #[test]
    #[should_panic(expected = "parents must precede children")]
    fn bad_parent_order_rejected() {
        let _ = TreeGlwsInstance::new(vec![0, 2, 0], &[0, 1, 1], 0, convex_w, |d, _| d);
    }

    // -- the work-efficient cordon (Theorem 5.3) ---------------------------

    fn concave_w(du: u64, dv: u64) -> i64 {
        let len = dv - du;
        4 + 3 * len.min(7) as i64
    }

    #[test]
    fn hld_matches_naive_on_random_trees_convex() {
        for seed in 0..6 {
            for &bias in &[0u64, 40, 90, 100] {
                let (parent, lens) = random_tree(250, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 5, convex_w, |d, u| d + (u % 3) as i64);
                let want = naive_tree_glws(&inst);
                let got = parallel_tree_glws_hld(&inst, CostShape::Convex);
                assert_eq!(got.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(got.best, want.best, "seed {seed} bias {bias}");
            }
        }
    }

    #[test]
    fn hld_matches_naive_on_random_trees_concave() {
        for seed in 0..6 {
            for &bias in &[0u64, 40, 90, 100] {
                let (parent, lens) = random_tree(250, bias, seed);
                let inst =
                    TreeGlwsInstance::new(parent, &lens, 2, concave_w, |d, u| d + (u % 5) as i64);
                let want = naive_tree_glws(&inst);
                let got = parallel_tree_glws_hld(&inst, CostShape::Concave);
                assert_eq!(got.d, want.d, "seed {seed} bias {bias}");
                assert_eq!(got.best, want.best, "seed {seed} bias {bias}");
            }
        }
    }

    #[test]
    fn hld_rounds_and_frontiers_match_the_baseline_cordon() {
        let (parent, lens) = random_tree(400, 70, 13);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let base = parallel_tree_glws(&inst);
        let hld = parallel_tree_glws_hld(&inst, CostShape::Convex);
        assert_eq!(hld.metrics.rounds, base.metrics.rounds);
        assert_eq!(hld.metrics.frontier_sizes, base.metrics.frontier_sizes);
        assert_eq!(hld.d, base.d);
        assert_eq!(hld.best, base.best);
    }

    #[test]
    fn hld_work_is_subquadratic_on_a_path() {
        // On a path the baseline rescans every ancestor: exactly n(n+1)/2
        // edges.  The heavy-light cordon must stay polylog per node.
        let n = 4_000usize;
        let parent: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1)).collect();
        let lens = vec![1u64; n + 1];
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let base = parallel_tree_glws(&inst);
        assert_eq!(base.metrics.edges_relaxed, (n * (n + 1) / 2) as u64);
        let hld = parallel_tree_glws_hld(&inst, CostShape::Convex);
        assert_eq!(hld.d, base.d);
        assert_eq!(hld.best, base.best);
        let log = (usize::BITS - n.leading_zeros()) as u64;
        assert!(
            hld.metrics.work_proxy() <= 12 * n as u64 * log,
            "HLD work {} exceeds 12·n·log n = {}",
            hld.metrics.work_proxy(),
            12 * n as u64 * log
        );
        assert!(hld.metrics.work_proxy() < base.metrics.edges_relaxed);
    }

    #[test]
    fn hld_star_and_empty_trees() {
        let n = 20;
        let inst = TreeGlwsInstance::new(
            vec![0usize; n + 1],
            &vec![3u64; n + 1],
            7,
            convex_w,
            |d, _| d,
        );
        let r = parallel_tree_glws_hld(&inst, CostShape::Convex);
        for v in 1..=n {
            assert_eq!(r.d[v], 7 + 10 + 9);
            assert_eq!(r.best[v], 0);
        }
        assert_eq!(r.metrics.rounds, 1);
        let empty = TreeGlwsInstance::new(vec![0], &[0], 3, convex_w, |d, _| d);
        let r = parallel_tree_glws_hld(&empty, CostShape::Convex);
        assert_eq!(r.d, vec![3]);
        assert_eq!(r.metrics.rounds, 0);
    }

    #[test]
    fn hld_stalls_on_an_impossible_round_budget() {
        use pardp_core::{try_run_phase_parallel_with_budget, StallError};
        let (parent, lens) = random_tree(100, 80, 3);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
        let metrics = MetricsCollector::new();
        let cordon = HldTreeGlwsCordon::new(&inst, CostShape::Convex);
        let height = cordon.round_budget().unwrap();
        assert!(height > 1);
        let err =
            try_run_phase_parallel_with_budget(cordon, &metrics, Some(height - 1)).unwrap_err();
        assert!(matches!(err, StallError::BudgetExhausted { budget, .. } if budget == height - 1));
    }
}
