//! Heavy-light decomposition of a rooted tree (the substrate of Theorem 5.3).
//!
//! Every non-leaf keeps a *heavy* edge to the child with the largest subtree;
//! the heavy edges partition the nodes into vertical *heavy paths*.  Walking
//! from any node towards the root crosses at most `⌊log₂ n⌋` light edges
//! (each light edge at least halves the subtree size), so every ancestor chain
//! decomposes into `O(log n)` contiguous heavy-path prefixes — exactly the
//! segments the work-efficient Tree-GLWS cordon consults per node instead of
//! rescanning the whole chain.

/// Heavy-path partition of a rooted tree given as a parent array
/// (`parent[v] < v`, node 0 is the root).
#[derive(Debug, Clone)]
pub struct HeavyLightDecomposition {
    /// `head[v]` — the shallowest node of `v`'s heavy path.
    pub head: Vec<usize>,
    /// `pos[v]` — `v`'s position on its heavy path (`pos[head] == 0`).
    pub pos: Vec<usize>,
    /// `depth[v]` — edge depth of `v` (`depth[0] == 0`).
    pub depth: Vec<usize>,
    /// `heavy[v]` — the heavy child of `v`, or `usize::MAX` for leaves.
    pub heavy: Vec<usize>,
    /// `subtree[v]` — number of nodes in `v`'s subtree (including `v`).
    pub subtree: Vec<usize>,
}

impl HeavyLightDecomposition {
    /// Decompose the tree described by `parent` (`parent[0]` is ignored).
    ///
    /// # Panics
    ///
    /// Panics if some `parent[v] >= v`, the invariant every
    /// [`crate::TreeGlwsInstance`] already enforces.
    pub fn new(parent: &[usize]) -> Self {
        let n = parent.len() - 1;
        let mut subtree = vec![1usize; n + 1];
        let mut heavy = vec![usize::MAX; n + 1];
        let mut heavy_size = vec![0usize; n + 1];
        for v in (1..=n).rev() {
            let p = parent[v];
            assert!(p < v, "parents must precede children");
            subtree[p] += subtree[v];
            if subtree[v] > heavy_size[p] {
                heavy_size[p] = subtree[v];
                heavy[p] = v;
            }
        }
        let mut head = vec![0usize; n + 1];
        let mut pos = vec![0usize; n + 1];
        let mut depth = vec![0usize; n + 1];
        for v in 1..=n {
            let p = parent[v];
            depth[v] = depth[p] + 1;
            if heavy[p] == v {
                head[v] = head[p];
                pos[v] = pos[p] + 1;
            } else {
                head[v] = v;
                pos[v] = 0;
            }
        }
        HeavyLightDecomposition {
            head,
            pos,
            depth,
            heavy,
            subtree,
        }
    }

    /// Edge height of the tree (0 for a single root).
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The deepest node of every heavy-path segment of `v`'s *proper ancestor*
    /// chain, nearest segment first.  Segment `x` covers the path positions
    /// `head[x]..=x`; the iterator yields `O(log n)` segments.
    pub fn ancestor_segments<'a>(
        &'a self,
        parent: &'a [usize],
        v: usize,
    ) -> impl Iterator<Item = usize> + 'a {
        debug_assert!(v >= 1, "the root has no proper ancestors");
        let mut next = Some(parent[v]);
        std::iter::from_fn(move || {
            let x = next?;
            let h = self.head[x];
            next = if h == 0 { None } else { Some(parent[h]) };
            Some(x)
        })
    }
}

/// `O(n)` structural probe of a rooted tree, computed *without* building the
/// full [`HeavyLightDecomposition`]: one reverse pass finds subtree sizes and
/// heavy children, one forward pass accumulates depths and heavy-path
/// lengths.  The shape-adaptive Tree-GLWS router
/// ([`crate::choose_tree_glws_strategy`]) reads these numbers to decide
/// whether the `O(log² n)`-per-node envelope machinery will beat the
/// `O(depth)`-per-node ancestor rescan on this particular tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShapeStats {
    /// Number of non-root nodes.
    pub n: usize,
    /// Edge height of the tree (0 for a lone root).
    pub height: usize,
    /// Sum of all non-root node depths — i.e. the exact number of ancestor
    /// probes the baseline cordon will spend.
    pub total_depth: u64,
    /// Number of heavy paths (1 for a lone root: the root's own path).
    pub heavy_paths: usize,
    /// Node count of the longest heavy path.
    pub max_heavy_path: usize,
}

impl TreeShapeStats {
    /// Probe the tree described by `parent` (`parent[0]` is ignored).
    ///
    /// # Panics
    ///
    /// Panics if some `parent[v] >= v`, the invariant every
    /// [`crate::TreeGlwsInstance`] already enforces.
    pub fn new(parent: &[usize]) -> Self {
        let n = parent.len() - 1;
        let mut subtree = vec![1u32; n + 1];
        let mut heavy = vec![u32::MAX; n + 1];
        let mut heavy_size = vec![0u32; n + 1];
        for v in (1..=n).rev() {
            let p = parent[v];
            assert!(p < v, "parents must precede children");
            subtree[p] += subtree[v];
            if subtree[v] > heavy_size[p] {
                heavy_size[p] = subtree[v];
                heavy[p] = v as u32;
            }
        }
        let mut depth = vec![0u32; n + 1];
        // Heavy-path position of each node, reusing the subtree buffer.
        let pos = &mut subtree;
        pos[0] = 0;
        let mut height = 0usize;
        let mut total_depth = 0u64;
        let mut heavy_paths = 1usize; // the root's own path
        let mut max_heavy_path = 1usize;
        for v in 1..=n {
            let p = parent[v];
            depth[v] = depth[p] + 1;
            height = height.max(depth[v] as usize);
            total_depth += depth[v] as u64;
            if heavy[p] == v as u32 {
                pos[v] = pos[p] + 1;
                max_heavy_path = max_heavy_path.max(pos[v] as usize + 1);
            } else {
                pos[v] = 0;
                heavy_paths += 1;
            }
        }
        TreeShapeStats {
            n,
            height,
            total_depth,
            heavy_paths,
            max_heavy_path,
        }
    }

    /// Mean depth of the non-root nodes — the baseline cordon's per-node
    /// ancestor-probe count (0.0 for a lone root).
    pub fn avg_depth(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_depth as f64 / self.n as f64
        }
    }

    /// Mean heavy-path node count.
    pub fn avg_heavy_path(&self) -> f64 {
        (self.n + 1) as f64 / self.heavy_paths as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Vec<usize> {
        (0..=n).map(|v| v.saturating_sub(1)).collect()
    }

    #[test]
    fn a_path_is_one_heavy_path() {
        let parent = path(50);
        let hld = HeavyLightDecomposition::new(&parent);
        for v in 0..=50 {
            assert_eq!(hld.head[v], 0);
            assert_eq!(hld.pos[v], v);
        }
        assert_eq!(hld.height(), 50);
        // One segment covers the whole ancestor chain.
        assert_eq!(hld.ancestor_segments(&parent, 50).count(), 1);
    }

    #[test]
    fn a_star_has_singleton_paths_except_the_heavy_leaf() {
        let parent = vec![0usize; 21];
        let hld = HeavyLightDecomposition::new(&parent);
        let on_root_path = (1..=20).filter(|&v| hld.head[v] == 0).count();
        assert_eq!(on_root_path, 1, "exactly one heavy child of the root");
        for v in 1..=20 {
            assert_eq!(hld.ancestor_segments(&parent, v).count(), 1);
        }
    }

    #[test]
    fn segments_cover_the_ancestor_chain_exactly_once() {
        // Pseudo-random trees: the segments, expanded, must equal the chain.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 17, 200, 800] {
            let mut parent = vec![0usize; n + 1];
            for (v, p) in parent.iter_mut().enumerate().skip(2) {
                *p = (next() % v as u64) as usize;
            }
            let hld = HeavyLightDecomposition::new(&parent);
            for v in 1..=n {
                let mut expanded = Vec::new();
                for x in hld.ancestor_segments(&parent, v) {
                    let mut u = x;
                    loop {
                        expanded.push(u);
                        if u == hld.head[x] {
                            break;
                        }
                        u = parent[u];
                    }
                }
                let mut chain = Vec::new();
                let mut u = parent[v];
                loop {
                    chain.push(u);
                    if u == 0 {
                        break;
                    }
                    u = parent[u];
                }
                assert_eq!(expanded, chain, "n {n} v {v}");
            }
        }
    }

    #[test]
    fn light_edges_bound_the_segment_count() {
        // Theorem 5.3's work bound rests on O(log n) segments per node.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 4096usize;
        let mut parent = vec![0usize; n + 1];
        for (v, p) in parent.iter_mut().enumerate().skip(2) {
            *p = (next() % v as u64) as usize;
        }
        let hld = HeavyLightDecomposition::new(&parent);
        let bound = (usize::BITS - n.leading_zeros()) as usize + 1;
        for v in 1..=n {
            let segments = hld.ancestor_segments(&parent, v).count();
            assert!(segments <= bound, "v {v}: {segments} segments > {bound}");
        }
    }

    #[test]
    fn shape_stats_match_the_full_decomposition() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 2, 33, 500] {
            let mut parent = vec![0usize; n + 1];
            for (v, p) in parent.iter_mut().enumerate().skip(2) {
                *p = (next() % v as u64) as usize;
            }
            let stats = TreeShapeStats::new(&parent);
            let hld = HeavyLightDecomposition::new(&parent);
            assert_eq!(stats.n, n);
            assert_eq!(stats.height, hld.height(), "n {n}");
            assert_eq!(
                stats.total_depth,
                hld.depth.iter().map(|&d| d as u64).sum::<u64>(),
                "n {n}"
            );
            let heads = (0..=n).filter(|&v| hld.head[v] == v).count();
            assert_eq!(stats.heavy_paths, heads, "n {n}");
            let longest = (0..=n).map(|v| hld.pos[v] + 1).max().unwrap();
            assert_eq!(stats.max_heavy_path, longest, "n {n}");
        }
        // A path: one heavy path holding every node; a star: n singleton
        // paths plus the root + heavy leaf.
        let stats = TreeShapeStats::new(&path(40));
        assert_eq!(stats.heavy_paths, 1);
        assert_eq!(stats.max_heavy_path, 41);
        assert_eq!(stats.avg_depth(), 20.5);
        let stats = TreeShapeStats::new(&[0usize; 21]);
        assert_eq!(stats.heavy_paths, 20);
        assert_eq!(stats.max_heavy_path, 2);
        assert_eq!(stats.avg_depth(), 1.0);
    }

    #[test]
    fn subtree_sizes_and_heavy_children_are_consistent() {
        let parent = vec![0, 0, 0, 1, 1, 1, 3];
        let hld = HeavyLightDecomposition::new(&parent);
        assert_eq!(hld.subtree[0], 7);
        assert_eq!(hld.subtree[1], 5);
        assert_eq!(hld.subtree[3], 2);
        assert_eq!(hld.heavy[0], 1, "node 1 has the largest subtree");
        assert_eq!(hld.heavy[1], 3);
        assert_eq!(hld.heavy[6], usize::MAX, "leaves have no heavy child");
        assert_eq!(hld.height(), 3);
    }
}
