//! Persistent monotone best-decision envelopes over heavy paths.
//!
//! Along one heavy path the settled nodes `u_0, u_1, …` (in increasing path
//! position, i.e. increasing root distance) define a family of candidate
//! functions `f_u(x) = E[u] + w(d_u, x)` over query distances `x`.  For a
//! convex transition cost, once a deeper candidate is at least as good as a
//! shallower one it stays at least as good for every larger `x` (the classical
//! suffix decision monotonicity of GLWS); for a concave cost the relation is
//! mirrored to a prefix.  Either way the lower envelope of the family is a
//! *monotone stack*: candidates in position order, each winning on one
//! contiguous `x`-interval delimited by a single takeover key.
//!
//! The Tree-GLWS cordon needs more than the current envelope, though: a node
//! whose ancestor chain enters a heavy path at position `p` may only consult
//! candidates at positions `0..=p`, and `p` varies per query while the path
//! keeps settling deeper positions.  The arena below therefore keeps the stack
//! *persistent*: pushing never destroys entries, a "pop" merely moves the
//! top-of-stack pointer, and the entry created when position `p` settled *is*
//! the version of the envelope restricted to positions `0..=p`.  Entries carry
//! binary-lifting pointers down the stack so one prefix query costs
//! `O(log n)` key comparisons and **zero** cost-function evaluations; cost
//! evaluations happen only inside the per-push takeover binary searches, which
//! amortize to `O(log maxdist)` per settled node.

use crate::CostShape;

/// Sentinel for "no entry" in the arena's `u32` index space.
pub(crate) const NO_ENTRY: u32 = u32::MAX;

/// Arena of persistent monotone-stack entries shared by every heavy path of
/// one Tree-GLWS instance.  Each node of the tree is pushed exactly once, so
/// the arena holds `n + 1` entries at the end of a run.
pub(crate) struct EnvelopeArena {
    /// Tree node of each entry.
    node: Vec<u32>,
    /// Takeover key of each entry: for convex shapes the first `x` at which
    /// the entry beats the entry below it (`0` for a stack bottom — it always
    /// wins as the fallback); for concave shapes the first `x` at which it
    /// *stops* beating the entry below it (`u64::MAX` for a bottom).
    /// `u64::MAX` also encodes "never takes over" for convex non-bottoms.
    key: Vec<u64>,
    /// Binary-lifting pointers, `log` per entry; level 0 is the entry below
    /// this one in its version of the stack.
    jump: Vec<u32>,
    /// Number of lifting levels per entry.
    log: usize,
    shape: CostShape,
    /// Largest query distance any node of the tree can present.
    max_x: u64,
}

impl EnvelopeArena {
    /// An empty arena for a tree with `n` non-root nodes whose root distances
    /// never exceed `max_x`.  `max_stack` bounds the number of entries any
    /// single stack version can hold — for heavy-light decompositions that is
    /// the tree height + 1 (a heavy path has at most one node per depth), not
    /// `n`.  The lifting rows are sized by it: `2^log >= max_stack + 1`
    /// levels always suffice to descend a whole stack, so on shallow trees
    /// each entry carries a handful of pointers instead of `log2 n` of them.
    /// That cache-blocks the hot loops on both sides — pushes write a short
    /// contiguous row, queries descend within it — and shrinks the whole
    /// table to a fraction of the `n * log2 n` worst case.
    pub(crate) fn new(n: usize, max_stack: usize, max_x: u64, shape: CostShape) -> Self {
        let log = (usize::BITS - (max_stack + 1).leading_zeros()).max(1) as usize;
        EnvelopeArena {
            node: Vec::with_capacity(n + 1),
            key: Vec::with_capacity(n + 1),
            jump: Vec::with_capacity((n + 1) * log),
            log,
            shape,
            max_x,
        }
    }

    /// Tree node stored in `entry`.
    pub(crate) fn node_of(&self, entry: u32) -> usize {
        self.node[entry as usize] as usize
    }

    fn below(&self, entry: u32) -> u32 {
        self.jump[entry as usize * self.log]
    }

    /// Whether an entry with takeover key `key` is "alive" at query point `x`
    /// (the winner of a version is its topmost alive entry).
    fn alive(&self, key: u64, x: u64) -> bool {
        match self.shape {
            CostShape::Convex => key <= x,
            CostShape::Concave => key > x,
        }
    }

    /// First `x` in `[x_lo, max_x]` at which candidate `g` takes over from
    /// `e` (convex: starts winning; concave: stops winning), or `u64::MAX` if
    /// that never happens.  The predicate is monotone by the shape contract,
    /// so a binary search suffices.  Returns the key and the number of
    /// cost-function evaluations spent.
    fn takeover<F: Fn(usize, u64) -> i64>(
        &self,
        g: usize,
        e: usize,
        x_lo: u64,
        f: &F,
    ) -> (u64, u64) {
        let mut evals = 0u64;
        let pred = |x: u64, evals: &mut u64| {
            *evals += 2;
            let (fg, fe) = (f(g, x), f(e, x));
            match self.shape {
                CostShape::Convex => fg <= fe,
                CostShape::Concave => fg > fe,
            }
        };
        if pred(x_lo, &mut evals) {
            return (x_lo, evals);
        }
        if x_lo == self.max_x || !pred(self.max_x, &mut evals) {
            return (u64::MAX, evals);
        }
        // pred(lo) is false, pred(hi) is true: invariant of the search.
        let (mut lo, mut hi) = (x_lo, self.max_x);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if pred(mid, &mut evals) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        (hi, evals)
    }

    /// Read-only half of a push: walk down from stack version `top`
    /// (`NO_ENTRY` for an empty path) past every entry that node `g` (root
    /// distance `x_lo`) supersedes, and compute `g`'s takeover key against the
    /// first survivor.  `f(u, x)` must evaluate candidate `u`'s function at
    /// query distance `x`.
    ///
    /// Returns `(below, key, evals)`: the surviving entry `g` will sit on,
    /// its takeover key, and the number of cost-function evaluations spent.
    /// Because nothing is mutated, prepares for nodes on *distinct* heavy
    /// paths may run concurrently; [`EnvelopeArena::commit_push`] then appends
    /// the entries in any fixed order.
    pub(crate) fn prepare_push<F: Fn(usize, u64) -> i64>(
        &self,
        mut top: u32,
        g: usize,
        x_lo: u64,
        f: &F,
    ) -> (u32, u64, u64) {
        let mut evals = 0u64;
        let key = loop {
            if top == NO_ENTRY {
                // New stack bottom: the always-alive fallback.
                break match self.shape {
                    CostShape::Convex => 0,
                    CostShape::Concave => u64::MAX,
                };
            }
            let (k, e) = self.takeover(g, self.node_of(top), x_lo, f);
            evals += e;
            let supersedes = match self.shape {
                // g starts winning no later than the top did: the top never
                // wins again in versions that contain g.
                CostShape::Convex => k <= self.key[top as usize],
                // g stops winning no earlier than the top does.
                CostShape::Concave => k >= self.key[top as usize],
            };
            if supersedes {
                top = self.below(top);
            } else {
                break k;
            }
        };
        (top, key, evals)
    }

    /// Mutating half of a push: append the entry a
    /// [`EnvelopeArena::prepare_push`] computed — node `g` with takeover `key`
    /// sitting on `below` — and build its lifting row.  Returns the new entry
    /// (= the version for this path position).
    pub(crate) fn commit_push(&mut self, below: u32, g: usize, key: u64) -> u32 {
        let idx = self.node.len() as u32;
        self.node.push(g as u32);
        self.key.push(key);
        self.jump.push(below);
        for j in 1..self.log {
            let a = self.jump[idx as usize * self.log + j - 1];
            let next = if a == NO_ENTRY {
                NO_ENTRY
            } else {
                self.jump[a as usize * self.log + j - 1]
            };
            self.jump.push(next);
        }
        idx
    }

    /// Push tree node `g` (root distance `x_lo`) on top of the stack version
    /// `top` (`NO_ENTRY` for an empty path), popping entries it supersedes in
    /// every *future* version — old versions keep pointing at them.  `f(u, x)`
    /// must evaluate candidate `u`'s function at query distance `x`.
    ///
    /// Returns the new entry (= the version for this path position) and the
    /// number of cost-function evaluations spent.  Exactly
    /// [`EnvelopeArena::prepare_push`] followed by
    /// [`EnvelopeArena::commit_push`].
    pub(crate) fn push<F: Fn(usize, u64) -> i64>(
        &mut self,
        top: u32,
        g: usize,
        x_lo: u64,
        f: &F,
    ) -> (u32, u64) {
        let (below, key, evals) = self.prepare_push(top, g, x_lo, f);
        (self.commit_push(below, g, key), evals)
    }

    /// Best candidate at query distance `x` among the path positions covered
    /// by stack version `top`: descend the lifting pointers to the topmost
    /// alive entry.  Costs `O(log n)` key comparisons and no cost-function
    /// evaluations; returns the winning entry and the comparison count.
    pub(crate) fn query(&self, top: u32, x: u64) -> (u32, u64) {
        debug_assert_ne!(top, NO_ENTRY, "queried an unsettled path");
        let mut probes = 1u64;
        let mut cur = top;
        if self.alive(self.key[cur as usize], x) {
            return (cur, probes);
        }
        // Keys are strictly monotone down the stack, so "dead at x" holds on a
        // prefix from the top: lifting-descend to the lowest dead entry.
        for j in (0..self.log).rev() {
            probes += 1;
            let a = self.jump[cur as usize * self.log + j];
            if a != NO_ENTRY && !self.alive(self.key[a as usize], x) {
                cur = a;
            }
        }
        let winner = self.below(cur);
        debug_assert_ne!(winner, NO_ENTRY, "stack bottoms are always alive");
        (winner, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force winner among the chain positions, deepest on ties — the
    /// semantics the envelope must reproduce.
    fn brute_winner(cands: &[(usize, i64, u64)], x: u64, w: impl Fn(u64, u64) -> i64) -> usize {
        let mut best = (i64::MAX, 0usize);
        for &(u, e, d) in cands {
            let v = e + w(d, x);
            if v <= best.0 {
                best = (v, u);
            }
        }
        best.1
    }

    fn check_shape(shape: CostShape, w: impl Fn(u64, u64) -> i64 + Copy) {
        // Candidates along one path: increasing distance, pseudo-random E.
        let dists: Vec<u64> = (0..40u64).map(|i| i * 3).collect();
        let es: Vec<i64> = (0..40).map(|i| ((i * 37 + 11) % 53) as i64 * 4).collect();
        let max_x = 200u64;
        let mut arena = EnvelopeArena::new(40, 40, max_x, shape);
        let mut cands: Vec<(usize, i64, u64)> = Vec::new();
        let mut top = NO_ENTRY;
        let mut versions = Vec::new();
        for u in 0..40usize {
            cands.push((u, es[u], dists[u]));
            let local = cands.clone();
            let f = |g: usize, x: u64| local[g].1 + w(local[g].2, x);
            let (e, _) = arena.push(top, u, dists[u], &f);
            top = e;
            versions.push(e);
            // Every prefix version must agree with brute force on all query
            // points at or beyond the prefix's deepest distance (deepest wins
            // ties, like the naive ancestor scan).
            for (p, &v) in versions.iter().enumerate() {
                for x in (dists[p]..=max_x).step_by(7) {
                    let (win, _) = arena.query(v, x);
                    let got = arena.node_of(win);
                    let want = brute_winner(&cands[..=p], x, w);
                    // Both rules prefer the deepest position on exact value
                    // ties, so the winners must be identical, not just tied.
                    assert_eq!(got, want, "prefix {p} x {x}");
                }
            }
        }
    }

    #[test]
    fn convex_envelope_matches_brute_force_on_all_prefixes() {
        check_shape(CostShape::Convex, |d, x| {
            let len = (x - d) as i64;
            7 + len * len
        });
    }

    #[test]
    fn concave_envelope_matches_brute_force_on_all_prefixes() {
        check_shape(CostShape::Concave, |d, x| {
            let len = x - d;
            3 * len.min(9) as i64
        });
    }

    #[test]
    fn queries_spend_no_cost_evaluations() {
        let mut arena = EnvelopeArena::new(8, 8, 100, CostShape::Convex);
        let mut top = NO_ENTRY;
        for u in 0..8usize {
            let f = |g: usize, x: u64| (x - 5 * g as u64) as i64;
            let (e, _) = arena.push(top, u, 5 * u as u64, &f);
            top = e;
        }
        // query() takes no cost closure at all: the type system enforces it.
        let (win, probes) = arena.query(top, 90);
        assert!(arena.node_of(win) < 8);
        assert!(probes as usize <= arena.log + 1);
    }
}
