//! Convex / concave generalized Least-Weight Subsequence (GLWS).
//!
//! The GLWS recurrence (Eq. 4 of the paper) is
//!
//! ```text
//! D[i] = min_{0 <= j < i}  E[j] + w(j, i),      E[j] = f(D[j], j),
//! ```
//!
//! with `D[0]` given.  When the cost `w` satisfies the convex (resp. concave)
//! Monge condition, the best decisions are monotone, and the classic
//! Galil–Park sequential algorithm computes all values in `O(n log n)` work by
//! maintaining a *compressed best-decision array*: a sorted list of triples
//! `([l, r], j)` meaning "every state in `[l, r]` currently has best decision
//! `j`".  This crate contains
//!
//! * [`cost`]: the problem/cost-function traits plus the convex and concave
//!   cost families used in the paper's experiments (post-office style costs),
//! * [`naive`]: the `O(n²)` reference oracle,
//! * [`seq`]: the sequential Galil–Park algorithm `Γ_lws` (Sec. 4.1),
//! * [`best`]: the sorted best-decision interval array used by the parallel
//!   algorithm,
//! * [`convex`]: the parallel convex GLWS (Algorithm 1, Theorem 4.1),
//! * [`concave`]: the parallel concave GLWS (Sec. 4.3, Theorem 4.2),
//! * [`smawk`]: the SMAWK row-minima algorithm (sequential `O(n)`) used by
//!   k-GLWS and as an independent oracle,
//! * [`kglws`]: the fixed-cluster-count variant (Sec. 5.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

pub mod best;
pub mod concave;
pub mod convex;
pub mod cost;
pub mod kglws;
pub mod naive;
pub mod seq;
pub mod smawk;

pub use best::BestDecisionArray;
pub use concave::{
    parallel_concave_glws, parallel_concave_glws_with, ConcaveGlwsCordon, ConcaveMergeStrategy,
};
pub use convex::{parallel_convex_glws, ConvexGlwsCordon};
pub use cost::{
    ClosureCost, ConcaveGapCost, ConvexGapCost, GlwsProblem, LinearGapCost, PostOfficeProblem,
};
pub use kglws::{naive_kglws, parallel_kglws, KGlwsCordon, KGlwsResult};
pub use naive::naive_glws;
pub use seq::{sequential_concave_glws, sequential_convex_glws};
pub use smawk::smawk_row_minima;

use pardp_parutils::Metrics;

/// Result of a GLWS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlwsResult {
    /// `d[i]` is the DP value of state `i` (`d[0]` is the boundary value).
    pub d: Vec<i64>,
    /// `best[i]` is the decision that attains `d[i]` (`best[0] = 0`, unused).
    pub best: Vec<usize>,
    /// Work / round counters collected during the run.
    pub metrics: Metrics,
}

impl GlwsResult {
    /// Length of the chain of best decisions ending at state `i` (the number
    /// of "clusters" in the optimal solution for the post-office reading).
    pub fn decision_depth(&self, i: usize) -> usize {
        let mut cur = i;
        let mut depth = 0;
        while cur != 0 {
            cur = self.best[cur];
            depth += 1;
            assert!(depth <= self.best.len(), "best-decision chain has a cycle");
        }
        depth
    }

    /// The effective depth of the perfect DAG: the largest best-decision chain
    /// length over all states.  For convex GLWS the parallel algorithm runs in
    /// exactly this many rounds (Lemma 4.5).
    pub fn perfect_depth(&self) -> usize {
        let n = self.best.len();
        let mut depth = vec![0usize; n];
        let mut maxd = 0;
        for i in 1..n {
            depth[i] = depth[self.best[i]] + 1;
            maxd = maxd.max(depth[i]);
        }
        maxd
    }

    /// Verify that the reported `best` decisions attain the reported values
    /// under `problem`, and that `d` is self-consistent.  Used in tests.
    pub fn check_consistency<P: cost::GlwsProblem>(&self, problem: &P) -> bool {
        let n = problem.n();
        if self.d.len() != n + 1 || self.best.len() != n + 1 {
            return false;
        }
        if self.d[0] != problem.d0() {
            return false;
        }
        for i in 1..=n {
            let j = self.best[i];
            if j >= i {
                return false;
            }
            let via = problem.e(self.d[j], j) + problem.w(j, i);
            if via != self.d[i] {
                return false;
            }
        }
        true
    }
}
