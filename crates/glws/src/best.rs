//! The sorted best-decision interval array `B` of Algorithm 1.
//!
//! The parallel GLWS algorithm cannot use the sequential algorithm's monotonic
//! queue (pushing and popping is inherently sequential).  Instead it keeps the
//! compressed best-decision information as a plain sorted array of triples
//! `([l, r], j)` covering the still-tentative states: "every state in `[l, r]`
//! currently has best decision `j` among the finalized states".  The array is
//! rebuilt once per cordon round by `FindIntervals` (divide and conquer) and
//! queried by `FindCordon` with two-level binary searches.

/// One triple `([l, r], j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionInterval {
    /// First state covered (inclusive).
    pub l: usize,
    /// Last state covered (inclusive).
    pub r: usize,
    /// Best decision shared by all states in `[l, r]`.
    pub j: usize,
}

/// Sorted, contiguous array of best-decision intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BestDecisionArray {
    triples: Vec<DecisionInterval>,
}

impl BestDecisionArray {
    /// An array covering no states (used once every state is finalized).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The initial array for a GLWS instance with states `1..=n`: every state
    /// starts with decision `0` (the boundary state).
    pub fn initial(n: usize) -> Self {
        if n == 0 {
            return BestDecisionArray {
                triples: Vec::new(),
            };
        }
        BestDecisionArray {
            triples: vec![DecisionInterval { l: 1, r: n, j: 0 }],
        }
    }

    /// Build from raw `(l, r, j)` intervals (already sorted by `l`, contiguous
    /// coverage).  Adjacent intervals with the same decision are merged, which
    /// is the "merge adjacent intervals" step of `UpdateBest` (Alg. 1 line 22).
    pub fn from_intervals(intervals: impl IntoIterator<Item = (usize, usize, usize)>) -> Self {
        let mut b = BestDecisionArray::empty();
        b.rebuild_from_intervals(intervals);
        b
    }

    /// In-place [`BestDecisionArray::from_intervals`]: clears the array and
    /// refills it, reusing the existing triple storage.  This is the per-round
    /// rebuild path of the convex/concave engines, which keeps the round loop
    /// free of heap allocation once the array has reached its high-water mark.
    pub fn rebuild_from_intervals(
        &mut self,
        intervals: impl IntoIterator<Item = (usize, usize, usize)>,
    ) {
        self.triples.clear();
        for (l, r, j) in intervals {
            if l > r {
                continue;
            }
            if let Some(last) = self.triples.last_mut() {
                debug_assert!(
                    last.r + 1 == l,
                    "intervals must be contiguous: previous ends at {}, next starts at {}",
                    last.r,
                    l
                );
                if last.j == j {
                    last.r = r;
                    continue;
                }
            }
            self.triples.push(DecisionInterval { l, r, j });
        }
    }

    /// The triples in increasing position order.
    pub fn triples(&self) -> &[DecisionInterval] {
        &self.triples
    }

    /// Whether the array covers no states.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The covered state range `(first, last)`, if non-empty.
    pub fn coverage(&self) -> Option<(usize, usize)> {
        match (self.triples.first(), self.triples.last()) {
            (Some(f), Some(l)) => Some((f.l, l.r)),
            _ => None,
        }
    }

    /// Current best decision of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the covered range.
    pub fn decision_at(&self, i: usize) -> usize {
        let idx = self.interval_index_of(i);
        self.triples[idx].j
    }

    fn interval_index_of(&self, i: usize) -> usize {
        let idx = self.triples.partition_point(|t| t.r < i);
        assert!(
            idx < self.triples.len() && self.triples[idx].l <= i,
            "state {i} is not covered by the best-decision array"
        );
        idx
    }

    /// Find the first covered position `p >= lo_bound` such that
    /// `pred(p, decision_at(p))` holds, assuming the predicate is
    /// *suffix-monotone* over positions (false…false, true…true), which is what
    /// convex decision monotonicity guarantees for "candidate `j` beats the
    /// current best at `p`".  Returns `None` if the predicate never holds.
    ///
    /// Runs in `O(log² n)` predicate evaluations (two nested binary searches).
    pub fn first_position_where(
        &self,
        lo_bound: usize,
        pred: &mut impl FnMut(usize, usize) -> bool,
    ) -> Option<usize> {
        let (_, hi) = self.coverage()?;
        if lo_bound > hi {
            return None;
        }
        // Level 1: find the first triple whose *last* relevant position
        // satisfies the predicate.  Because the predicate is suffix-monotone
        // over positions and triples are ordered, "triple contains a true
        // position" is monotone over triples.
        let start_idx = self.triples.partition_point(|t| t.r < lo_bound);
        let tail = &self.triples[start_idx..];
        if tail.is_empty() {
            return None;
        }
        let probe_pos = |t: &DecisionInterval| t.r.max(lo_bound).min(t.r);
        // Binary search over the triples in `tail`.
        let mut lo = 0usize;
        let mut hi_idx = tail.len(); // first index whose triple contains a true position
        while lo < hi_idx {
            let mid = (lo + hi_idx) / 2;
            let t = &tail[mid];
            if pred(probe_pos(t), t.j) {
                hi_idx = mid;
            } else {
                lo = mid + 1;
            }
        }
        if lo == tail.len() {
            return None;
        }
        let t = &tail[lo];
        // Level 2: first true position inside this triple, at or after lo_bound.
        let mut plo = t.l.max(lo_bound);
        let mut phi = t.r;
        while plo < phi {
            let mid = (plo + phi) / 2;
            if pred(mid, t.j) {
                phi = mid;
            } else {
                plo = mid + 1;
            }
        }
        Some(plo)
    }

    /// Find the last covered position `p <= hi_bound` such that
    /// `pred(p, decision_at(p))` holds, assuming the predicate is
    /// *prefix-monotone* over positions (true…true, false…false), which is what
    /// concave decision monotonicity guarantees.  Returns `None` if the
    /// predicate holds nowhere.
    pub fn last_position_where(
        &self,
        hi_bound: usize,
        pred: &mut impl FnMut(usize, usize) -> bool,
    ) -> Option<usize> {
        let (lo_cov, _) = self.coverage()?;
        if hi_bound < lo_cov {
            return None;
        }
        let end_idx = self.triples.partition_point(|t| t.l <= hi_bound);
        let head = &self.triples[..end_idx];
        if head.is_empty() {
            return None;
        }
        // Level 1: last triple whose *first* relevant position satisfies the
        // predicate (prefix-monotone over triples).
        let mut lo = 0usize; // last index satisfying, +1
        let mut hi_idx = head.len();
        // Find the partition point: number of triples whose first position is true.
        while lo < hi_idx {
            let mid = (lo + hi_idx) / 2;
            let t = &head[mid];
            if pred(t.l, t.j) {
                lo = mid + 1;
            } else {
                hi_idx = mid;
            }
        }
        if lo == 0 {
            return None;
        }
        let t = &head[lo - 1];
        // Level 2: last true position inside this triple, at or before hi_bound.
        let mut plo = t.l;
        let mut phi = t.r.min(hi_bound);
        while plo < phi {
            let mid = (plo + phi).div_ceil(2);
            if pred(mid, t.j) {
                plo = mid;
            } else {
                phi = mid - 1;
            }
        }
        Some(plo)
    }

    /// Restrict the array to positions `>= from`, dropping or clipping triples.
    pub fn clip_front(&mut self, from: usize) {
        self.triples.retain(|t| t.r >= from);
        if let Some(first) = self.triples.first_mut() {
            if first.l < from {
                first.l = from;
            }
        }
    }

    /// Restrict the array to positions `<= to`, dropping or clipping triples.
    pub fn clip_back(&mut self, to: usize) {
        self.triples.retain(|t| t.l <= to);
        if let Some(last) = self.triples.last_mut() {
            if last.r > to {
                last.r = to;
            }
        }
    }

    /// Concatenate two arrays with adjacent coverage (`self` ends right before
    /// `other` starts), merging the boundary triples if they agree.
    pub fn concat(mut self, other: BestDecisionArray) -> BestDecisionArray {
        if self.triples.is_empty() {
            return other;
        }
        for t in other.triples {
            if let Some(last) = self.triples.last_mut() {
                debug_assert_eq!(last.r + 1, t.l, "concatenated coverage must be contiguous");
                if last.j == t.j {
                    last.r = t.r;
                    continue;
                }
            }
            self.triples.push(t);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_covers_everything_with_zero() {
        let b = BestDecisionArray::initial(10);
        assert_eq!(b.coverage(), Some((1, 10)));
        for i in 1..=10 {
            assert_eq!(b.decision_at(i), 0);
        }
        assert!(BestDecisionArray::initial(0).is_empty());
    }

    #[test]
    fn from_intervals_merges_equal_neighbours() {
        let b = BestDecisionArray::from_intervals(vec![(3, 4, 1), (5, 6, 1), (7, 9, 2)]);
        assert_eq!(b.triples().len(), 2);
        assert_eq!(b.decision_at(5), 1);
        assert_eq!(b.decision_at(7), 2);
        assert_eq!(b.coverage(), Some((3, 9)));
    }

    #[test]
    fn decision_at_picks_correct_interval() {
        let b = BestDecisionArray::from_intervals(vec![(1, 2, 0), (3, 5, 2), (6, 8, 4)]);
        assert_eq!(b.decision_at(1), 0);
        assert_eq!(b.decision_at(2), 0);
        assert_eq!(b.decision_at(3), 2);
        assert_eq!(b.decision_at(5), 2);
        assert_eq!(b.decision_at(6), 4);
        assert_eq!(b.decision_at(8), 4);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn decision_at_outside_coverage_panics() {
        let b = BestDecisionArray::from_intervals(vec![(3, 5, 1)]);
        b.decision_at(6);
    }

    #[test]
    fn first_position_where_suffix_predicate() {
        let b = BestDecisionArray::from_intervals(vec![(1, 4, 0), (5, 8, 2), (9, 12, 3)]);
        // Suffix predicate: true from position 7 on, independent of decision.
        let mut count = 0;
        let got = b.first_position_where(1, &mut |p, _| {
            count += 1;
            p >= 7
        });
        assert_eq!(got, Some(7));
        assert!(count <= 10, "binary searches should not scan linearly");
        // Respecting the lower bound.
        assert_eq!(b.first_position_where(9, &mut |p, _| p >= 7), Some(9));
        assert_eq!(b.first_position_where(13, &mut |p, _| p >= 7), None);
        // Never true.
        assert_eq!(b.first_position_where(1, &mut |_, _| false), None);
        // Always true.
        assert_eq!(b.first_position_where(1, &mut |_, _| true), Some(1));
    }

    #[test]
    fn last_position_where_prefix_predicate() {
        let b = BestDecisionArray::from_intervals(vec![(1, 4, 0), (5, 8, 2), (9, 12, 3)]);
        // Prefix predicate: true up to position 6.
        assert_eq!(b.last_position_where(12, &mut |p, _| p <= 6), Some(6));
        assert_eq!(b.last_position_where(5, &mut |p, _| p <= 6), Some(5));
        assert_eq!(b.last_position_where(12, &mut |_, _| false), None);
        assert_eq!(b.last_position_where(12, &mut |_, _| true), Some(12));
        assert_eq!(b.last_position_where(0, &mut |_, _| true), None);
    }

    #[test]
    fn searches_see_the_interval_decision() {
        let b = BestDecisionArray::from_intervals(vec![(1, 3, 0), (4, 6, 5)]);
        // Predicate depends on the decision: true only where decision == 5.
        assert_eq!(b.first_position_where(1, &mut |_, j| j == 5), Some(4));
        assert_eq!(b.last_position_where(6, &mut |_, j| j == 0), Some(3));
    }

    #[test]
    fn clip_and_concat() {
        let mut b = BestDecisionArray::from_intervals(vec![(1, 4, 0), (5, 8, 2)]);
        b.clip_front(3);
        assert_eq!(b.coverage(), Some((3, 8)));
        b.clip_back(6);
        assert_eq!(b.coverage(), Some((3, 6)));
        let c = BestDecisionArray::from_intervals(vec![(7, 9, 6)]);
        let joined = b.concat(c);
        assert_eq!(joined.coverage(), Some((3, 9)));
        assert_eq!(joined.decision_at(7), 6);
        // Concatenation merges equal boundary decisions.
        let left = BestDecisionArray::from_intervals(vec![(1, 2, 9)]);
        let right = BestDecisionArray::from_intervals(vec![(3, 4, 9)]);
        let joined = left.concat(right);
        assert_eq!(joined.triples().len(), 1);
        assert_eq!(joined.coverage(), Some((1, 4)));
    }

    #[test]
    fn rebuild_matches_from_intervals() {
        let mut b = BestDecisionArray::from_intervals(vec![(1, 4, 0), (5, 8, 2)]);
        b.rebuild_from_intervals(vec![(2, 3, 7), (4, 6, 7)]);
        assert_eq!(b, BestDecisionArray::from_intervals(vec![(2, 6, 7)]));
        b.rebuild_from_intervals(std::iter::empty());
        assert!(b.is_empty());
    }

    #[test]
    fn empty_interval_inputs_are_skipped() {
        let b = BestDecisionArray::from_intervals(vec![(5, 4, 1), (5, 6, 2)]);
        assert_eq!(b.coverage(), Some((5, 6)));
        assert_eq!(b.triples().len(), 1);
    }
}
