//! Quadratic reference solution for GLWS.
//!
//! Evaluates Eq. 4 literally: every state scans every earlier decision.  It is
//! the oracle used by unit and property tests of both the sequential
//! Galil–Park algorithm and the parallel cordon algorithms, and it is also the
//! "no-optimization" baseline reported by the benchmark harness to show how
//! much work decision monotonicity saves.

use crate::cost::GlwsProblem;
use crate::GlwsResult;
use pardp_parutils::MetricsCollector;

/// Solve a GLWS instance by the direct `O(n²)` recurrence.
///
/// Ties between decisions are broken towards the smallest decision index, so
/// the resulting `best` array is the leftmost-argmin solution.
pub fn naive_glws<P: GlwsProblem>(problem: &P) -> GlwsResult {
    let n = problem.n();
    let metrics = MetricsCollector::new();
    let mut d = vec![0i64; n + 1];
    let mut best = vec![0usize; n + 1];
    d[0] = problem.d0();
    let mut edges = 0u64;
    for i in 1..=n {
        let mut best_val = i64::MAX;
        let mut best_j = 0usize;
        for j in 0..i {
            edges += 1;
            let cand = problem.e(d[j], j) + problem.w(j, i);
            if cand < best_val {
                best_val = cand;
                best_j = j;
            }
        }
        d[i] = best_val;
        best[i] = best_j;
    }
    metrics.add_edges(edges);
    metrics.add_states(n as u64);
    GlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ConvexGapCost, PostOfficeProblem};

    #[test]
    fn single_state() {
        let p = ConvexGapCost::new(1, 5, 1, 1);
        let r = naive_glws(&p);
        assert_eq!(r.d, vec![0, 7]); // 0 + (5 + 1 + 1)
        assert_eq!(r.best, vec![0, 0]);
    }

    #[test]
    fn hand_checked_post_office() {
        // Villages at 0, 1, 10, 11; opening cost 4.
        // One office for all: 4 + (11-0)^2 = 125.
        // Two offices {0,1},{10,11}: (4+1) + (4+1) = 10.  Optimal.
        let p = PostOfficeProblem::new(vec![0, 1, 10, 11], 4);
        let r = naive_glws(&p);
        assert_eq!(r.d[4], 10);
        assert_eq!(r.best[4], 2);
        assert_eq!(r.decision_depth(4), 2);
        assert!(r.check_consistency(&p));
    }

    #[test]
    fn all_in_one_cluster_when_opening_is_expensive() {
        let p = PostOfficeProblem::new(vec![0, 1, 2, 3], 1_000_000);
        let r = naive_glws(&p);
        assert_eq!(r.best[4], 0);
        assert_eq!(r.decision_depth(4), 1);
        assert_eq!(r.d[4], 1_000_000 + 9);
    }

    #[test]
    fn metrics_count_quadratic_edges() {
        let p = ConvexGapCost::new(10, 1, 1, 1);
        let r = naive_glws(&p);
        assert_eq!(r.metrics.edges_relaxed, 55); // 1 + 2 + ... + 10
        assert_eq!(r.metrics.states_finalized, 10);
    }

    #[test]
    fn perfect_depth_matches_manual_chain() {
        let p = PostOfficeProblem::new(vec![0, 1, 10, 11, 20, 21], 4);
        let r = naive_glws(&p);
        // Optimal: three clusters {0,1},{10,11},{20,21}.
        assert_eq!(r.decision_depth(6), 3);
        assert_eq!(r.perfect_depth(), 3);
    }
}
