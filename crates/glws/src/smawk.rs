//! SMAWK: linear-time row minima of a totally monotone matrix.
//!
//! The paper (Sec. 5.4) notes that each layer of k-GLWS is a static matrix
//! searching problem that SMAWK solves in `O(n)` sequential work, but that the
//! algorithm is "quite complicated and inherently sequential"; the practical
//! (and parallelizable) alternative is the `O(n log n)` divide-and-conquer.
//! We provide SMAWK anyway: it is an independent oracle for the
//! divide-and-conquer code and the strongest sequential baseline for the
//! k-GLWS benchmarks.
//!
//! The matrix is given implicitly by a function `f(row, col)`.  The matrix
//! must be *convex totally monotone*: if `f(r, c) >= f(r, d)` for columns
//! `c < d`, then the same holds for every later row — equivalently the
//! leftmost argmin column index is non-decreasing in the row index.

/// Compute, for every row of an implicitly-given `nrows x ncols` convex
/// totally monotone matrix, the column index of a minimum entry.
///
/// Ties are broken towards smaller column indices as far as total
/// monotonicity allows.  `O(nrows + ncols)` evaluations of `f`.
pub fn smawk_row_minima(
    nrows: usize,
    ncols: usize,
    f: &(impl Fn(usize, usize) -> i64 + ?Sized),
) -> Vec<usize> {
    let mut result = vec![0usize; nrows];
    if nrows == 0 || ncols == 0 {
        return result;
    }
    let rows: Vec<usize> = (0..nrows).collect();
    let cols: Vec<usize> = (0..ncols).collect();
    smawk_inner(&rows, &cols, f, &mut result);
    result
}

fn smawk_inner(
    rows: &[usize],
    cols: &[usize],
    f: &(impl Fn(usize, usize) -> i64 + ?Sized),
    result: &mut [usize],
) {
    if rows.is_empty() {
        return;
    }
    // REDUCE: keep at most |rows| candidate columns.
    let mut stack: Vec<usize> = Vec::with_capacity(rows.len());
    for &c in cols {
        loop {
            if stack.is_empty() {
                stack.push(c);
                break;
            }
            let r = rows[stack.len() - 1];
            // analyze: allow(no-panics): non-empty — the `is_empty` arm above
            // pushed and broke out.
            let top = *stack.last().unwrap();
            // Prefer the earlier column on ties (strict > keeps `top`).
            if f(r, top) > f(r, c) {
                stack.pop();
            } else {
                if stack.len() < rows.len() {
                    stack.push(c);
                }
                break;
            }
        }
    }
    let cols = stack;

    // Recurse on the odd-indexed rows.
    let odd_rows: Vec<usize> = rows.iter().skip(1).step_by(2).copied().collect();
    smawk_inner(&odd_rows, &cols, f, result);

    // INTERPOLATE: fill the even-indexed rows; each even row's argmin lies
    // between the argmins of its odd neighbours.
    let mut col_idx = 0usize;
    for (pos, &r) in rows.iter().enumerate().step_by(2) {
        let upper = if pos + 1 < rows.len() {
            result[rows[pos + 1]]
        } else {
            // analyze: allow(no-panics): `cols` is non-empty — SMAWK recurses
            // only on non-empty row/column sets.
            *cols.last().unwrap()
        };
        let mut best_col = cols[col_idx];
        let mut best_val = f(r, best_col);
        while cols[col_idx] != upper {
            col_idx += 1;
            let c = cols[col_idx];
            let v = f(r, c);
            if v < best_val {
                best_val = v;
                best_col = c;
            }
        }
        result[r] = best_col;
    }
}

/// Brute-force row minima (leftmost argmin), used as an oracle in tests and by
/// small fallback paths.
pub fn brute_force_row_minima(
    nrows: usize,
    ncols: usize,
    f: &(impl Fn(usize, usize) -> i64 + ?Sized),
) -> Vec<usize> {
    (0..nrows)
        .map(|r| {
            let mut best = 0usize;
            let mut best_val = f(r, 0);
            for c in 1..ncols {
                let v = f(r, c);
                if v < best_val {
                    best_val = v;
                    best = c;
                }
            }
            best
        })
        .collect()
}

/// Check whether the implicit matrix is convex totally monotone (used to
/// validate synthetic test matrices; quadratic in the dimensions).
pub fn is_convex_totally_monotone(
    nrows: usize,
    ncols: usize,
    f: &(impl Fn(usize, usize) -> i64 + ?Sized),
) -> bool {
    for a in 0..nrows {
        for b in (a + 1)..nrows {
            for c in 0..ncols {
                for d in (c + 1)..ncols {
                    if f(a, c) >= f(a, d) && f(b, c) < f(b, d) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Monge matrix built from a convex function of (row - col) plus row and
    /// column offsets; Monge implies totally monotone.
    fn monge_matrix(_nrows: usize, _ncols: usize, seed: i64) -> impl Fn(usize, usize) -> i64 {
        move |r: usize, c: usize| {
            let d = r as i64 - c as i64 + seed;
            d * d + 3 * r as i64 + 7 * c as i64
        }
    }

    #[test]
    fn matches_brute_force_on_monge_matrices() {
        for &(n, m) in &[
            (1usize, 1usize),
            (1, 7),
            (7, 1),
            (5, 5),
            (16, 9),
            (40, 40),
            (33, 64),
        ] {
            for seed in -3..3 {
                let f = monge_matrix(n, m, seed);
                assert!(is_convex_totally_monotone(n, m, &f));
                let got = smawk_row_minima(n, m, &f);
                let want = brute_force_row_minima(n, m, &f);
                // Compare attained values (ties may pick different columns).
                for r in 0..n {
                    assert_eq!(
                        f(r, got[r]),
                        f(r, want[r]),
                        "row {r} ({n}x{m}, seed {seed})"
                    );
                }
                // Argmin columns must be non-decreasing (total monotonicity).
                for r in 1..n {
                    assert!(got[r - 1] <= got[r]);
                }
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let f = |_: usize, _: usize| 0i64;
        assert!(smawk_row_minima(0, 5, &f).is_empty());
        assert_eq!(smawk_row_minima(3, 0, &f), vec![0, 0, 0]);
    }

    #[test]
    fn single_column() {
        let f = |r: usize, _: usize| r as i64;
        assert_eq!(smawk_row_minima(4, 1, &f), vec![0, 0, 0, 0]);
    }

    #[test]
    fn linear_number_of_evaluations() {
        use std::cell::Cell;
        let n = 4096usize;
        let count = Cell::new(0u64);
        let f = |r: usize, c: usize| {
            count.set(count.get() + 1);
            let d = r as i64 - c as i64;
            d * d
        };
        let _ = smawk_row_minima(n, n, &f);
        // SMAWK evaluates O(n) entries; allow a generous constant.
        assert!(
            count.get() < 20 * n as u64,
            "evaluations {} look super-linear",
            count.get()
        );
    }

    #[test]
    fn monotone_but_not_monge_matrix() {
        // Hand-crafted totally monotone matrix (not Monge).
        let data = [
            [1i64, 2, 4, 8],
            [5, 3, 6, 9],
            [9, 7, 5, 10],
            [12, 11, 10, 9],
        ];
        let f = |r: usize, c: usize| data[r][c];
        assert!(is_convex_totally_monotone(4, 4, &f));
        let got = smawk_row_minima(4, 4, &f);
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
