//! The sequential Galil–Park GLWS algorithm `Γ_lws` (Sec. 4.1).
//!
//! The algorithm processes states `1..=n` in order while maintaining a
//! *compressed best-decision array*: a monotonic queue of triples `([l, r], j)`
//! covering the still-unprocessed suffix, meaning every state in `[l, r]`
//! currently has best decision `j` among the decisions inserted so far.  When
//! state `i` is processed its best decision is read off the front of the
//! queue in `O(1)`, and inserting `i` as a candidate decision for later states
//! costs `O(log n)` amortized: by decision monotonicity the positions where
//! `i` wins form a suffix (convex) or a prefix (concave) of the remaining
//! states, so whole triples are popped and a single binary search finds the
//! exact boundary.  Total work `O(n log n)` — this is the practical algorithm
//! the paper parallelizes, and the "Sequential" series of Fig. 7.

use crate::cost::GlwsProblem;
use crate::GlwsResult;
use pardp_parutils::MetricsCollector;
use std::collections::VecDeque;

/// One entry of the compressed best-decision structure: states `l..=r`
/// currently have best decision `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Triple {
    l: usize,
    r: usize,
    j: usize,
}

/// Solve a convex GLWS instance with the `O(n log n)` monotonic-queue
/// algorithm.  The cost function must satisfy the convex Monge condition
/// (or at least convex total monotonicity of `E[j] + w(j, i)`).
pub fn sequential_convex_glws<P: GlwsProblem>(problem: &P) -> GlwsResult {
    sequential_glws(problem, Monotonicity::Convex)
}

/// Solve a concave GLWS instance with the `O(n log n)` monotonic-stack
/// algorithm.  The cost function must satisfy the concave Monge condition.
pub fn sequential_concave_glws<P: GlwsProblem>(problem: &P) -> GlwsResult {
    sequential_glws(problem, Monotonicity::Concave)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Monotonicity {
    Convex,
    Concave,
}

fn sequential_glws<P: GlwsProblem>(problem: &P, kind: Monotonicity) -> GlwsResult {
    let n = problem.n();
    let metrics = MetricsCollector::new();
    let mut d = vec![0i64; n + 1];
    let mut best = vec![0usize; n + 1];
    d[0] = problem.d0();

    if n == 0 {
        return GlwsResult {
            d,
            best,
            metrics: metrics.snapshot(),
        };
    }

    // f(j, i): value of state i when its decision is j (d[j] must be final).
    let f = |d_j: i64, j: usize, i: usize| problem.e(d_j, j) + problem.w(j, i);

    let mut queue: VecDeque<Triple> = VecDeque::new();
    queue.push_back(Triple { l: 1, r: n, j: 0 });

    let mut probes = 0u64;
    for i in 1..=n {
        // The front triple covers state i.
        // analyze: allow(no-panics): the queue covers [i, n] by the loop
        // invariant; a silent skip here would emit wrong DP values, so the
        // invariant check stays loud.
        let front = *queue.front().expect("coverage invariant violated");
        debug_assert!(front.l == i, "front of the queue must start at state i");
        let bi = front.j;
        d[i] = f(d[bi], bi, i);
        best[i] = bi;
        metrics.add_edges(1);

        // Advance the coverage past state i.
        if front.r == i {
            queue.pop_front();
        } else {
            // analyze: allow(no-panics): non-empty — `front` was just read.
            queue.front_mut().unwrap().l = i + 1;
        }
        if i == n {
            break;
        }

        // Insert decision i for the remaining states [i+1, n].
        // "wins" means strictly better, so ties keep the earlier decision and
        // the result matches the leftmost-argmin oracle.
        let wins =
            |pos: usize, against: usize| -> bool { f(d[i], i, pos) < f(d[against], against, pos) };
        match kind {
            Monotonicity::Convex => {
                // Decision i wins on a suffix of the remaining states: consume
                // whole triples from the back, then split the last survivor.
                let mut start = None;
                while let Some(&back) = queue.back() {
                    probes += 1;
                    if wins(back.l, back.j) {
                        start = Some(back.l);
                        queue.pop_back();
                    } else {
                        break;
                    }
                }
                if let Some(&back) = queue.back() {
                    // i loses at back.l; check whether it wins anywhere in the
                    // triple, i.e. at back.r (suffix property).
                    probes += 1;
                    if wins(back.r, back.j) {
                        // Binary search the first position in (back.l, back.r]
                        // where i wins.
                        let (mut lo, mut hi) = (back.l + 1, back.r);
                        while lo < hi {
                            probes += 1;
                            let mid = (lo + hi) / 2;
                            if wins(mid, back.j) {
                                hi = mid;
                            } else {
                                lo = mid + 1;
                            }
                        }
                        // analyze: allow(no-panics): non-empty on this branch
                        // — the enclosing `if` read `queue.back()`.
                        queue.back_mut().unwrap().r = lo - 1;
                        start = Some(lo);
                    }
                } else if start.is_none() {
                    // Queue is empty (i == coverage start); i covers the rest.
                    start = Some(i + 1);
                }
                if let Some(s) = start {
                    queue.push_back(Triple { l: s, r: n, j: i });
                }
            }
            Monotonicity::Concave => {
                // Decision i wins on a prefix of the remaining states: consume
                // whole triples from the front, then split the last survivor.
                let mut end = None;
                while let Some(&front) = queue.front() {
                    probes += 1;
                    if wins(front.r, front.j) {
                        end = Some(front.r);
                        queue.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(&front) = queue.front() {
                    probes += 1;
                    if wins(front.l, front.j) {
                        // Binary search the last position in [front.l, front.r)
                        // where i wins.
                        let (mut lo, mut hi) = (front.l, front.r - 1);
                        while lo < hi {
                            probes += 1;
                            let mid = (lo + hi).div_ceil(2);
                            if wins(mid, front.j) {
                                lo = mid;
                            } else {
                                hi = mid - 1;
                            }
                        }
                        // analyze: allow(no-panics): non-empty on this branch
                        // — the enclosing `if` read `queue.front()`.
                        queue.front_mut().unwrap().l = lo + 1;
                        end = Some(lo);
                    }
                } else if end.is_none() {
                    end = Some(n);
                }
                if let Some(e) = end {
                    queue.push_front(Triple {
                        l: i + 1,
                        r: e,
                        j: i,
                    });
                }
            }
        }
        debug_assert!(coverage_is_contiguous(&queue, i + 1, n));
    }
    metrics.add_probes(probes);
    metrics.add_states(n as u64);
    GlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

fn coverage_is_contiguous(queue: &VecDeque<Triple>, from: usize, to: usize) -> bool {
    if from > to {
        return true;
    }
    let mut expect = from;
    for t in queue {
        if t.l != expect || t.r < t.l {
            return false;
        }
        expect = t.r + 1;
    }
    expect == to + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{
        ClosureCost, ConcaveGapCost, ConvexGapCost, LinearGapCost, PostOfficeProblem,
    };
    use crate::naive::naive_glws;

    fn pseudo_coords(n: usize, seed: u64, max_gap: u64) -> Vec<i64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut x = 0i64;
        (0..n)
            .map(|_| {
                x += (next() % max_gap) as i64 + 1;
                x
            })
            .collect()
    }

    #[test]
    fn convex_matches_naive_on_post_office() {
        for seed in 0..5 {
            for &open in &[1i64, 10, 100, 10_000] {
                let p = PostOfficeProblem::new(pseudo_coords(60, seed, 20), open);
                let got = sequential_convex_glws(&p);
                let want = naive_glws(&p);
                assert_eq!(got.d, want.d, "seed {seed} open {open}");
                assert!(got.check_consistency(&p));
            }
        }
    }

    #[test]
    fn convex_matches_naive_on_gap_costs() {
        for n in [1usize, 2, 3, 7, 33, 100] {
            let p = ConvexGapCost::new(n, 4, 2, 3);
            assert_eq!(sequential_convex_glws(&p).d, naive_glws(&p).d);
        }
    }

    #[test]
    fn concave_matches_naive_on_sqrt_costs() {
        for n in [1usize, 2, 3, 8, 50, 120] {
            for &(a, b) in &[(0i64, 1i64), (5, 3), (100, 1)] {
                let p = ConcaveGapCost::new(n, a, b);
                let got = sequential_concave_glws(&p);
                let want = naive_glws(&p);
                assert_eq!(got.d, want.d, "n {n} a {a} b {b}");
                assert!(got.check_consistency(&p));
            }
        }
    }

    #[test]
    fn linear_cost_agrees_under_both_monotonicities() {
        let p = LinearGapCost { a: 7, b: 2, n: 80 };
        let want = naive_glws(&p);
        assert_eq!(sequential_convex_glws(&p).d, want.d);
        assert_eq!(sequential_concave_glws(&p).d, want.d);
    }

    #[test]
    fn generalized_e_function_is_used() {
        // E[j] = D[j] + j (a "generalized" LWS); still convex in the decision.
        let p = ClosureCost::new(
            40,
            3,
            |j, i| {
                let len = (i - j) as i64;
                10 + len * len
            },
            |d, j| d + j as i64,
        );
        let got = sequential_convex_glws(&p);
        let want = naive_glws(&p);
        assert_eq!(got.d, want.d);
    }

    #[test]
    fn empty_instance() {
        let p = ConvexGapCost::new(0, 1, 1, 1);
        let r = sequential_convex_glws(&p);
        assert_eq!(r.d, vec![0]);
        assert_eq!(r.best, vec![0]);
    }

    #[test]
    fn work_is_near_linear_in_probes() {
        // The number of binary-search probes should be O(n log n); sanity-check
        // the constant on a mid-sized instance (far below the naive n^2/2).
        let p = PostOfficeProblem::new(pseudo_coords(4000, 7, 10), 500);
        let r = sequential_convex_glws(&p);
        let n = 4000u64;
        assert!(
            r.metrics.probes < n * 40,
            "probes {} look super-logarithmic",
            r.metrics.probes
        );
        assert_eq!(r.metrics.edges_relaxed, n);
    }

    #[test]
    fn boundary_value_propagates() {
        let p = ClosureCost::new(3, 100, |j, i| (i - j) as i64, |d, _| d);
        let r = sequential_convex_glws(&p);
        assert_eq!(r.d, vec![100, 101, 102, 103]);
    }
}
