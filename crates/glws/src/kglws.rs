//! k-GLWS: least-weight subsequence with exactly `k` clusters (Sec. 5.4).
//!
//! The recurrence is `D[i][k'] = min_{j < i} D[j][k'-1] + w(j, i)` with
//! `D[0][0] = 0` and `D[i][0] = +inf` for `i > 0`.  When the cordon framework
//! is applied, the `k'`-th frontier is exactly the `k'`-th layer of the table:
//! every state of layer `k'` depends on some state of layer `k'-1`, so layers
//! are computed one cordon round at a time, and each round is a static
//! matrix-searching problem on a totally monotone matrix.  Each layer is
//! solved here with the practical divide-and-conquer (`O(n log n)` work,
//! `O(log² n)` span per layer — Apostolico et al. [6], also the structure of
//! `FindIntervals` in Alg. 1), giving `O(k·n log n)` work and `O(k log² n)`
//! span in total, a perfect parallelization of the classic sequential
//! algorithm.

use crate::cost::GlwsProblem;
use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{maybe_join, Metrics, MetricsCollector};

/// Result of a k-GLWS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KGlwsResult {
    /// `layers[k'][i]` is the minimum cost of covering the first `i` elements
    /// with exactly `k'` clusters (`cost::UNREACHABLE` if infeasible).
    pub layers: Vec<Vec<i64>>,
    /// `best[k'][i]` is the decision attaining `layers[k'][i]`.
    pub best: Vec<Vec<usize>>,
    /// Work counters; `rounds` equals `k`.
    pub metrics: Metrics,
}

/// Sentinel for infeasible table entries.
pub const UNREACHABLE: i64 = i64::MAX / 4;

impl KGlwsResult {
    /// Optimal cost of covering all `n` elements with exactly `k` clusters.
    pub fn total_cost(&self) -> i64 {
        // analyze: allow(no-panics): `layers` is always a (k+1) x (n+1)
        // rectangle by construction, so both `last()` calls are infallible.
        *self.layers.last().unwrap().last().unwrap()
    }

    /// Reconstruct the cluster boundaries of the optimal solution: returns the
    /// sequence of states `0 = b_0 < b_1 < ... < b_k = n` such that cluster
    /// `t` covers elements `b_{t-1}+1 ..= b_t`.
    pub fn cluster_boundaries(&self) -> Vec<usize> {
        let k = self.layers.len() - 1;
        let n = self.layers[0].len() - 1;
        let mut bounds = vec![n];
        let mut i = n;
        for kk in (1..=k).rev() {
            i = self.best[kk][i];
            bounds.push(i);
        }
        bounds.reverse();
        bounds
    }
}

/// Reference `O(k n²)` evaluation of the k-GLWS recurrence.
pub fn naive_kglws<P: GlwsProblem>(problem: &P, k: usize) -> KGlwsResult {
    let n = problem.n();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let metrics = MetricsCollector::new();
    let mut layers = vec![vec![UNREACHABLE; n + 1]; k + 1];
    let mut best = vec![vec![0usize; n + 1]; k + 1];
    layers[0][0] = 0;
    for kk in 1..=k {
        for i in kk..=n {
            let mut bv = UNREACHABLE;
            let mut bj = 0usize;
            for j in (kk - 1)..i {
                if layers[kk - 1][j] >= UNREACHABLE {
                    continue;
                }
                metrics.add_edges(1);
                let cand = layers[kk - 1][j] + problem.w(j, i);
                if cand < bv {
                    bv = cand;
                    bj = j;
                }
            }
            layers[kk][i] = bv;
            best[kk][i] = bj;
        }
        metrics.add_round();
        metrics.add_states((n + 1 - kk) as u64);
    }
    KGlwsResult {
        layers,
        best,
        metrics: metrics.snapshot(),
    }
}

/// Parallel k-GLWS: `k` cordon rounds, each a parallel divide-and-conquer
/// matrix search over the previous layer.  Requires convex total monotonicity
/// of `D[j][k'-1] + w(j, i)` (implied by a convex Monge `w`).
///
/// Runs [`KGlwsCordon`] through the shared phase-parallel driver, which
/// supplies the round accounting, frontier telemetry and stall guard.
pub fn parallel_kglws<P: GlwsProblem>(problem: &P, k: usize) -> KGlwsResult {
    let metrics = MetricsCollector::new();
    let (layers, best) = run_phase_parallel(KGlwsCordon::new(problem, k), &metrics);
    KGlwsResult {
        layers,
        best,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for k-GLWS: the `k'`-th cordon frontier is the
/// `k'`-th layer of the table, computed from layer `k'-1` with a parallel
/// divide-and-conquer matrix search.
pub struct KGlwsCordon<'a, P: GlwsProblem> {
    problem: &'a P,
    layers: Vec<Vec<i64>>,
    best: Vec<Vec<usize>>,
    kk: usize,
    k: usize,
    n: usize,
}

impl<'a, P: GlwsProblem> KGlwsCordon<'a, P> {
    /// Initialize the `(k+1) × (n+1)` table with only `D[0][0]` reachable.
    pub fn new(problem: &'a P, k: usize) -> Self {
        let n = problem.n();
        assert!(k >= 1 && k <= n, "need 1 <= k <= n");
        let mut layers = vec![vec![UNREACHABLE; n + 1]; k + 1];
        layers[0][0] = 0;
        KGlwsCordon {
            problem,
            layers,
            best: vec![vec![0usize; n + 1]; k + 1],
            kk: 1,
            k,
            n,
        }
    }
}

impl<P: GlwsProblem> PhaseParallel for KGlwsCordon<'_, P> {
    /// The DP layers plus the per-layer best decisions.
    type Output = (Vec<Vec<i64>>, Vec<Vec<usize>>);

    fn is_done(&self) -> bool {
        self.kk > self.k
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (kk, n) = (self.kk, self.n);
        // The k'-th cordon frontier: all states of layer kk.  Decisions come
        // from layer kk-1, restricted to j in [kk-1, i-1].
        let (prev_layers, cur_layers) = self.layers.split_at_mut(kk);
        let prev = &prev_layers[kk - 1];
        let cur = &mut cur_layers[0];
        let cur_best = &mut self.best[kk];
        // States kk..=n, decisions (kk-1)..=(n-1).
        layer_divide_conquer(
            self.problem,
            prev,
            kk,
            n,
            kk - 1,
            n.saturating_sub(1),
            &mut cur[kk..=n],
            &mut cur_best[kk..=n],
            kk,
            metrics,
        );
        self.kk += 1;
        n + 1 - kk
    }

    fn finish(self) -> Self::Output {
        (self.layers, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // Exactly one round per layer.
        Some(self.k as u64)
    }
}

/// Divide-and-conquer over the states `il..=ir` (whose values/best slots are
/// `d_out`/`b_out`, indexed relative to `base = il` of the original call) with
/// candidate decisions `jl..=jr`.
#[allow(clippy::too_many_arguments)]
fn layer_divide_conquer<P: GlwsProblem>(
    problem: &P,
    prev: &[i64],
    il: usize,
    ir: usize,
    jl: usize,
    jr: usize,
    d_out: &mut [i64],
    b_out: &mut [usize],
    base: usize,
    metrics: &MetricsCollector,
) {
    if il > ir {
        return;
    }
    let im = (il + ir) / 2;
    // Valid decisions for state im: [jl, min(jr, im-1)].
    let hi = jr.min(im - 1);
    debug_assert!(jl <= hi, "decision range must be non-empty");
    let mut bv = UNREACHABLE;
    let mut bj = jl;
    for j in jl..=hi {
        if prev[j] >= UNREACHABLE {
            continue;
        }
        metrics.add_edges(1);
        let cand = prev[j] + problem.w(j, im);
        if cand < bv {
            bv = cand;
            bj = j;
        }
    }
    d_out[im - base] = bv;
    b_out[im - base] = bj;

    // Split the output slices around im so the two halves can recurse in
    // parallel with disjoint mutable borrows.
    let (d_left, d_rest) = d_out.split_at_mut(im - base);
    let (_, d_right) = d_rest.split_at_mut(1);
    let (b_left, b_rest) = b_out.split_at_mut(im - base);
    let (_, b_right) = b_rest.split_at_mut(1);
    let width = ir - il + 1;
    maybe_join(
        width,
        || {
            if im > il {
                layer_divide_conquer(
                    problem,
                    prev,
                    il,
                    im - 1,
                    jl,
                    bj,
                    d_left,
                    b_left,
                    base,
                    metrics,
                );
            }
        },
        || {
            if im < ir {
                layer_divide_conquer(
                    problem,
                    prev,
                    im + 1,
                    ir,
                    bj,
                    jr,
                    d_right,
                    b_right,
                    im + 1,
                    metrics,
                );
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ConvexGapCost, PostOfficeProblem};

    fn pseudo_coords(n: usize, seed: u64, max_gap: u64) -> Vec<i64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut x = 0i64;
        (0..n)
            .map(|_| {
                x += (next() % max_gap) as i64 + 1;
                x
            })
            .collect()
    }

    #[test]
    fn parallel_matches_naive_values() {
        for seed in 0..4 {
            let p = PostOfficeProblem::new(pseudo_coords(40, seed, 12), 0);
            for k in [1usize, 2, 3, 5, 10, 40] {
                let got = parallel_kglws(&p, k);
                let want = naive_kglws(&p, k);
                assert_eq!(got.layers, want.layers, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn rounds_equal_k() {
        let p = ConvexGapCost::new(30, 2, 1, 1);
        let r = parallel_kglws(&p, 7);
        assert_eq!(r.metrics.rounds, 7);
    }

    #[test]
    fn k_equals_one_is_single_cluster() {
        let p = PostOfficeProblem::new(vec![0, 3, 7, 10], 5);
        let r = parallel_kglws(&p, 1);
        assert_eq!(r.total_cost(), 5 + 100);
        assert_eq!(r.cluster_boundaries(), vec![0, 4]);
    }

    #[test]
    fn k_equals_n_is_all_singletons() {
        let p = PostOfficeProblem::new(vec![0, 3, 7, 10], 5);
        let r = parallel_kglws(&p, 4);
        assert_eq!(r.total_cost(), 20); // four opening costs, zero spans
        assert_eq!(r.cluster_boundaries(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn boundaries_are_consistent_with_cost() {
        let p = PostOfficeProblem::new(pseudo_coords(25, 9, 10), 30);
        for k in [2usize, 3, 4] {
            let r = parallel_kglws(&p, k);
            let bounds = r.cluster_boundaries();
            assert_eq!(bounds.len(), k + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), 25);
            let mut cost = 0;
            use crate::cost::GlwsProblem as _;
            for t in 1..bounds.len() {
                cost += p.w(bounds[t - 1], bounds[t]);
            }
            assert_eq!(cost, r.total_cost(), "k = {k}");
        }
    }

    #[test]
    fn more_clusters_never_cost_more_without_open_cost() {
        // With zero opening cost, allowing more clusters can only help.
        let p = PostOfficeProblem::new(pseudo_coords(30, 2, 9), 0);
        let mut prev = i64::MAX;
        for k in 1..=10 {
            let cost = parallel_kglws(&p, k).total_cost();
            assert!(cost <= prev, "k = {k}");
            prev = cost;
        }
    }

    #[test]
    fn decision_columns_are_monotone_within_layers() {
        let p = PostOfficeProblem::new(pseudo_coords(50, 4, 7), 10);
        let r = parallel_kglws(&p, 5);
        for kk in 1..=5usize {
            for i in (kk + 1)..=50 {
                assert!(
                    r.best[kk][i - 1] <= r.best[kk][i] || r.layers[kk][i - 1] >= UNREACHABLE,
                    "layer {kk} state {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn k_zero_rejected() {
        let p = ConvexGapCost::new(5, 1, 1, 1);
        let _ = parallel_kglws(&p, 0);
    }
}
