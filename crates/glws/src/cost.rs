//! GLWS problem definition and the cost-function families used in the paper.
//!
//! A GLWS instance is fully described by its size `n`, the boundary value
//! `D[0]`, the transition cost `w(j, i)` and the function `E[j] = f(D[j], j)`
//! (Eq. 4).  Decision monotonicity follows from the convex or concave Monge
//! condition on `w` (Eqs. 5 and 6); the concrete cost families below satisfy
//! those conditions and mirror the paper's running example (post offices with
//! a fixed opening cost plus a convex service cost) and the gap-penalty
//! families used by the GAP problem.

/// A generalized least-weight-subsequence instance.
///
/// All costs are integers; the algorithms only rely on a total order and
/// addition, and integer costs keep oracle comparisons exact.
pub trait GlwsProblem: Sync {
    /// Number of non-boundary states; states are `0..=n`.
    fn n(&self) -> usize;

    /// Boundary value `D[0]`.
    fn d0(&self) -> i64 {
        0
    }

    /// Transition cost `w(j, i)` for `0 <= j < i <= n`.
    fn w(&self, j: usize, i: usize) -> i64;

    /// `E[j] = f(D[j], j)`.  Defaults to the plain LWS case `E[j] = D[j]`.
    fn e(&self, d_j: i64, j: usize) -> i64 {
        let _ = j;
        d_j
    }
}

/// The post-office problem of Sec. 4: villages at increasing coordinates
/// `x[1..=n]`, one post office per cluster, cost of serving the villages
/// `j+1..=i` with one office is `open_cost + (x[i] - x[j+1])²` (the squared
/// width of the cluster).
///
/// The quadratic term is a convex function of `x[i] - x[j+1]`, where the
/// subtracted term is non-decreasing in `j`, so `w` satisfies the convex Monge
/// condition (quadrangle inequality) and the problem exhibits convex decision
/// monotonicity.  The relative size of `open_cost` controls how many post
/// offices (clusters) the optimal solution uses, which is the parameter `k`
/// swept in Fig. 7.
#[derive(Debug, Clone)]
pub struct PostOfficeProblem {
    /// Village coordinates, 1-indexed: `coords[t]` is the coordinate of
    /// village `t`; `coords[0]` is an unused placeholder.
    coords: Vec<i64>,
    /// Fixed cost of opening one post office.
    open_cost: i64,
}

impl PostOfficeProblem {
    /// Build an instance from non-decreasing village coordinates
    /// (`coords[t]` is the coordinate of village `t+1`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are not non-decreasing or empty.
    pub fn new(coords: Vec<i64>, open_cost: i64) -> Self {
        assert!(!coords.is_empty(), "at least one village is required");
        assert!(
            coords.windows(2).all(|w| w[0] <= w[1]),
            "village coordinates must be sorted"
        );
        let mut full = Vec::with_capacity(coords.len() + 1);
        full.push(0); // placeholder for the 1-indexing of villages
        full.extend_from_slice(&coords);
        PostOfficeProblem {
            coords: full,
            open_cost,
        }
    }

    /// Number of villages.
    pub fn villages(&self) -> usize {
        self.coords.len() - 1
    }
}

impl GlwsProblem for PostOfficeProblem {
    fn n(&self) -> usize {
        self.coords.len() - 1
    }

    fn w(&self, j: usize, i: usize) -> i64 {
        debug_assert!(j < i && i < self.coords.len());
        // The cluster consists of villages j+1 ..= i; its width is
        // x[i] - x[j+1] (zero for a singleton cluster).
        let span = self.coords[i] - self.coords[j + 1];
        self.open_cost + span * span
    }
}

/// Convex gap-penalty family `w(j, i) = a + b·(i-j) + c·(i-j)²` with
/// `c >= 0`, used for the GAP problem's row/column sub-instances and as a
/// coordinate-free convex workload.
#[derive(Debug, Clone, Copy)]
pub struct ConvexGapCost {
    /// Constant term (gap-opening cost).
    pub a: i64,
    /// Linear coefficient (per-character gap extension).
    pub b: i64,
    /// Quadratic coefficient; must be non-negative for convexity.
    pub c: i64,
    /// Number of states.
    pub n: usize,
    /// Boundary value `D[0]`.
    pub d0: i64,
}

impl ConvexGapCost {
    /// Create the family, asserting convexity (`c >= 0`).
    pub fn new(n: usize, a: i64, b: i64, c: i64) -> Self {
        assert!(c >= 0, "quadratic coefficient must be non-negative");
        ConvexGapCost { a, b, c, n, d0: 0 }
    }
}

impl GlwsProblem for ConvexGapCost {
    fn n(&self) -> usize {
        self.n
    }
    fn d0(&self) -> i64 {
        self.d0
    }
    fn w(&self, j: usize, i: usize) -> i64 {
        let len = (i - j) as i64;
        self.a + self.b * len + self.c * len * len
    }
}

/// Concave gap-penalty family `w(j, i) = a + g(i - j)` where
/// `g(len) = Σ_{t=1..len} ⌊1000·b / t⌋`, the classic "long gaps get
/// progressively cheaper per character" shape used in sequence alignment.
///
/// Because the per-character increments `⌊1000·b/t⌋` are non-increasing, `g`
/// is discretely concave, and a concave function of `i - j` satisfies the
/// inverse quadrangle inequality exactly (unlike, say, `⌊√(i-j)⌋`, whose
/// floor breaks discrete concavity).
#[derive(Debug, Clone)]
pub struct ConcaveGapCost {
    /// Constant term.
    pub a: i64,
    /// Slope scale: the first gap character costs `1000·b`.
    pub b: i64,
    /// Number of states.
    pub n: usize,
    /// Boundary value `D[0]`.
    pub d0: i64,
    /// `prefix[len] = g(len)`.
    prefix: Vec<i64>,
}

impl ConcaveGapCost {
    /// Create the family, asserting concavity (`b >= 0`).
    pub fn new(n: usize, a: i64, b: i64) -> Self {
        assert!(b >= 0, "slope scale must be non-negative");
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0i64);
        for t in 1..=n as i64 {
            prefix.push(prefix[(t - 1) as usize] + (1000 * b) / t);
        }
        ConcaveGapCost {
            a,
            b,
            n,
            d0: 0,
            prefix,
        }
    }
}

impl GlwsProblem for ConcaveGapCost {
    fn n(&self) -> usize {
        self.n
    }
    fn d0(&self) -> i64 {
        self.d0
    }
    fn w(&self, j: usize, i: usize) -> i64 {
        self.a + self.prefix[i - j]
    }
}

/// Affine gap cost `w(j, i) = a + b·(i-j)`: simultaneously convex and concave
/// (the Monge inequalities hold with equality), useful for exercising
/// tie-handling paths.
#[derive(Debug, Clone, Copy)]
pub struct LinearGapCost {
    /// Constant term.
    pub a: i64,
    /// Linear coefficient.
    pub b: i64,
    /// Number of states.
    pub n: usize,
}

impl GlwsProblem for LinearGapCost {
    fn n(&self) -> usize {
        self.n
    }
    fn w(&self, j: usize, i: usize) -> i64 {
        self.a + self.b * (i - j) as i64
    }
}

/// Adapter turning closures into a [`GlwsProblem`]; handy in tests and for
/// OAT-style reductions where the cost is defined by a precomputed table.
/// (The shipped polylog-round OAT of Theorem 5.1, `pardp_oat::valley`,
/// derives its rounds directly from weight-doubling thresholds rather than
/// routing each valley through an LWS instance — see that module's docs for
/// how the two formulations relate.)
pub struct ClosureCost<W, E> {
    n: usize,
    d0: i64,
    w: W,
    e: E,
}

impl<W, E> ClosureCost<W, E>
where
    W: Fn(usize, usize) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    /// Build an instance from the closures `w(j, i)` and `e(d_j, j)`.
    pub fn new(n: usize, d0: i64, w: W, e: E) -> Self {
        ClosureCost { n, d0, w, e }
    }
}

impl<W, E> GlwsProblem for ClosureCost<W, E>
where
    W: Fn(usize, usize) -> i64 + Sync,
    E: Fn(i64, usize) -> i64 + Sync,
{
    fn n(&self) -> usize {
        self.n
    }
    fn d0(&self) -> i64 {
        self.d0
    }
    fn w(&self, j: usize, i: usize) -> i64 {
        (self.w)(j, i)
    }
    fn e(&self, d_j: i64, j: usize) -> i64 {
        (self.e)(d_j, j)
    }
}

/// Check the convex Monge condition (quadrangle inequality, Eq. 5) on every
/// quadruple `a < b < c < d` up to `n`.  Exponentially many quadruples — use
/// only on small instances in tests.
pub fn satisfies_convex_monge<P: GlwsProblem>(p: &P) -> bool {
    let n = p.n();
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..=n {
                for d in (c + 1)..=n {
                    if p.w(a, c) + p.w(b, d) > p.w(b, c) + p.w(a, d) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Check the concave Monge condition (inverse quadrangle inequality, Eq. 6).
pub fn satisfies_concave_monge<P: GlwsProblem>(p: &P) -> bool {
    let n = p.n();
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..=n {
                for d in (c + 1)..=n {
                    if p.w(a, c) + p.w(b, d) < p.w(b, c) + p.w(a, d) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_office_is_convex_monge() {
        let p = PostOfficeProblem::new(vec![1, 4, 6, 10, 11, 20, 23], 100);
        assert!(satisfies_convex_monge(&p));
        assert_eq!(p.n(), 7);
        assert_eq!(p.villages(), 7);
    }

    #[test]
    fn convex_gap_cost_is_convex_monge() {
        let p = ConvexGapCost::new(12, 5, 3, 2);
        assert!(satisfies_convex_monge(&p));
    }

    #[test]
    fn concave_gap_cost_is_concave_monge() {
        let p = ConcaveGapCost::new(12, 7, 4);
        assert!(satisfies_concave_monge(&p));
    }

    #[test]
    fn linear_cost_is_both() {
        let p = LinearGapCost { a: 3, b: 2, n: 10 };
        assert!(satisfies_convex_monge(&p));
        assert!(satisfies_concave_monge(&p));
    }

    #[test]
    fn concave_gap_increments_are_non_increasing() {
        let p = ConcaveGapCost::new(200, 3, 5);
        let g = |len: usize| p.w(0, len) - p.a;
        let mut prev_inc = g(1);
        for len in 2..=200usize {
            let inc = g(len) - g(len - 1);
            assert!(inc <= prev_inc, "increment grew at len {len}");
            prev_inc = inc;
        }
    }

    #[test]
    fn closure_cost_delegates() {
        let p = ClosureCost::new(5, 10, |j, i| ((i - j) * (i - j)) as i64, |d, _| d + 1);
        assert_eq!(p.n(), 5);
        assert_eq!(p.d0(), 10);
        assert_eq!(p.w(1, 4), 9);
        assert_eq!(p.e(7, 2), 8);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_coordinates_rejected() {
        PostOfficeProblem::new(vec![5, 3, 8], 10);
    }

    #[test]
    fn default_e_is_identity() {
        let p = ConvexGapCost::new(4, 1, 1, 1);
        assert_eq!(p.e(42, 3), 42);
    }
}
