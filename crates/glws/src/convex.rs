//! Parallel convex GLWS — Algorithm 1 of the paper (Theorem 4.1).
//!
//! The algorithm is a specialization of the Cordon framework.  It maintains
//! `now`, the last finalized state, and the best-decision interval array `B`
//! covering the tentative states.  Each round:
//!
//! 1. **FindCordon** (Sec. 4.2.1): probe batches of geometrically growing size
//!    after `now` (prefix doubling).  Each probed state `j` reads its current
//!    best decision from `B`, computes its tentative value `D[j]`, and places a
//!    sentinel at `s_j`, the *first* state that `j` could improve — found with
//!    a two-level binary search in `B`, valid because convex decision
//!    monotonicity makes "`j` beats the current best at `i`" a suffix-monotone
//!    predicate in `i`.  The leftmost sentinel is the cordon; every state in
//!    `[now+1, cordon-1]` is ready and its value computed in the probe is
//!    final.
//! 2. **UpdateBest** (Sec. 4.2.2): rebuild `B` for the states `[cordon, n]`
//!    from the newly finalized decisions `[now+1, cordon-1]` with the
//!    divide-and-conquer `FindIntervals`, which is work-efficient because the
//!    candidate-decision range splits along with the state range.
//!
//! The number of rounds equals the *perfect depth* of the DP DAG — the length
//! of the longest best-decision chain (Lemma 4.5) — e.g. the number of post
//! offices in the optimal solution of the running example.
//!
//! The paper's polylog-round OAT (Theorem 5.1) phrases each valley's combine
//! schedule as an instance of this solver; the shipped driver
//! (`pardp_oat::valley`) instead derives the same round structure from
//! weight-doubling thresholds, keeping every combine verbatim Garsia–Wachs —
//! its module docs spell out the correspondence.

use crate::best::BestDecisionArray;
use crate::cost::GlwsProblem;
use crate::GlwsResult;
use pardp_core::{prefix_doubling_cordon, run_phase_parallel, PhaseParallel};
use pardp_parutils::{maybe_join, round_min_grain, MetricsCollector};
use rayon::prelude::*;

/// Tie handling: a probe state places a sentinel wherever it is at least as
/// good as the current best (weak improvement).  This is conservative — it can
/// only move the cordon earlier, never finalize a wrong value — and it keeps
/// the two-level binary search valid in the presence of cost ties (see the
/// module documentation of [`crate::best`]).
#[inline]
fn weakly_beats(candidate: i64, incumbent: i64) -> bool {
    candidate <= incumbent
}

/// Solve a convex GLWS instance with the parallel cordon algorithm.
///
/// Requires convex total monotonicity of `E[j] + w(j, i)` (implied by the
/// convex Monge condition on `w`).  Produces the same DP values as
/// [`crate::naive_glws`] and [`crate::sequential_convex_glws`].
///
/// Runs [`ConvexGlwsCordon`] through the shared phase-parallel driver, which
/// supplies the round accounting, frontier telemetry and stall guard.
pub fn parallel_convex_glws<P: GlwsProblem>(problem: &P) -> GlwsResult {
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(ConvexGlwsCordon::new(problem), &metrics);
    GlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for Algorithm 1: each round is one
/// FindCordon + UpdateBest cycle, finalizing the states `[now+1, cordon-1]`.
pub struct ConvexGlwsCordon<'a, P: GlwsProblem> {
    problem: &'a P,
    d: Vec<i64>,
    best: Vec<usize>,
    b: BestDecisionArray,
    /// Per-round scratch for the `FindIntervals` output, reused across rounds
    /// so the round body allocates nothing at its high-water mark.
    intervals: Vec<(usize, usize, usize)>,
    now: usize,
    n: usize,
}

impl<'a, P: GlwsProblem> ConvexGlwsCordon<'a, P> {
    /// Initialize the DP arrays and the all-zero best-decision array.
    pub fn new(problem: &'a P) -> Self {
        let n = problem.n();
        let mut d = vec![0i64; n + 1];
        d[0] = problem.d0();
        ConvexGlwsCordon {
            problem,
            d,
            best: vec![0usize; n + 1],
            b: BestDecisionArray::initial(n),
            intervals: Vec::new(),
            now: 0,
            n,
        }
    }
}

impl<P: GlwsProblem> PhaseParallel for ConvexGlwsCordon<'_, P> {
    /// DP values plus the best decision of every state.
    type Output = (Vec<i64>, Vec<usize>);

    fn is_done(&self) -> bool {
        self.now >= self.n
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let problem = self.problem;
        let (now, n) = (self.now, self.n);
        // ------------------------------------------------------------------
        // FindCordon: prefix-doubling probe of the states after `now`.
        //
        // The DP array is split at `now`: the prefix holds finalized values
        // (read-only during the probes), the suffix receives the tentative
        // values computed by the probes.  Values written left of the eventual
        // cordon are final.
        // ------------------------------------------------------------------
        let (cordon, stats) = {
            let (d_final, d_tail) = self.d.split_at_mut(now + 1);
            let (_, best_tail) = self.best.split_at_mut(now + 1);
            let b_ref = &self.b;
            let metrics_ref = metrics;
            let d_final: &[i64] = d_final;

            prefix_doubling_cordon(now, n, |lo, hi| {
                let batch_d = &mut d_tail[(lo - now - 1)..=(hi - now - 1)];
                let batch_best = &mut best_tail[(lo - now - 1)..=(hi - now - 1)];
                let batch_len = batch_d.len();
                batch_d
                    .par_iter_mut()
                    .zip(batch_best.par_iter_mut())
                    .enumerate()
                    .with_min_len(round_min_grain(batch_len))
                    .map(|(off, (dj_slot, bj_slot))| {
                        let j = lo + off;
                        let bj = b_ref.decision_at(j);
                        let dj = problem.e(d_final[bj], bj) + problem.w(bj, j);
                        *dj_slot = dj;
                        *bj_slot = bj;
                        // First state after j that j can (weakly) improve.
                        let ej = problem.e(dj, j);
                        let mut local_probes = 0u64;
                        let sentinel = b_ref.first_position_where(j + 1, &mut |pos, inc| {
                            local_probes += 1;
                            let incumbent = problem.e(d_final[inc], inc) + problem.w(inc, pos);
                            weakly_beats(ej + problem.w(j, pos), incumbent)
                        });
                        metrics_ref.add_probes(local_probes);
                        metrics_ref.add_edges(2); // relaxation at j plus the candidate edge
                        sentinel
                    })
                    .filter_map(|s| s)
                    .min()
            })
        };
        metrics.add_wasted(stats.wasted as u64);

        let frontier = cordon - now - 1;
        debug_assert!(frontier >= 1, "cordon must make progress");

        // ------------------------------------------------------------------
        // UpdateBest: rebuild B for [cordon, n] from decisions [now+1, cordon-1].
        //
        // In the convex case the restricted best decision of every state at or
        // after the cordon lies inside the new frontier (see Sec. 4.2.2), so
        // the old array is discarded wholesale.
        // ------------------------------------------------------------------
        if cordon <= n {
            self.intervals.clear();
            find_intervals(
                problem,
                &self.d,
                now + 1,
                cordon - 1,
                cordon,
                n,
                &mut self.intervals,
                metrics,
            );
            self.b.rebuild_from_intervals(self.intervals.drain(..));
        } else {
            self.b.rebuild_from_intervals(std::iter::empty());
        }
        self.now = cordon - 1;
        frontier
    }

    fn finish(self) -> Self::Output {
        (self.d, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // Lemma 4.5: rounds == perfect depth <= n.
        Some(self.n as u64)
    }
}

/// `FindIntervals(jl, jr, il, ir)` (Alg. 1 lines 23–32): compute the
/// best-decision triples of the states `il..=ir` restricted to decisions
/// `jl..=jr`, exploiting convex decision monotonicity to split both ranges
/// around the midpoint state.  Appends `(l, r, j)` triples to `out` in
/// increasing state order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_intervals<P: GlwsProblem>(
    problem: &P,
    d: &[i64],
    jl: usize,
    jr: usize,
    il: usize,
    ir: usize,
    out: &mut Vec<(usize, usize, usize)>,
    metrics: &MetricsCollector,
) {
    if il > ir {
        return;
    }
    if jl == jr {
        out.push((il, ir, jl));
        return;
    }
    let im = (il + ir) / 2;
    // Best decision for the midpoint state among [jl, jr] (leftmost argmin).
    let jm = argmin_decision(problem, d, jl, jr, im, metrics);
    let state_count = ir - il + 1;
    let (mut left, right) = maybe_join(
        state_count,
        || {
            let mut v = Vec::new();
            if im > il {
                find_intervals(problem, d, jl, jm, il, im - 1, &mut v, metrics);
            }
            v
        },
        || {
            let mut v = Vec::new();
            find_intervals(problem, d, jm, jr, im + 1, ir, &mut v, metrics);
            v
        },
    );
    left.push((im, im, jm));
    left.extend(right);
    out.extend(left);
}

/// Leftmost argmin of `E[j] + w(j, i)` over `j in [jl, jr]` (all decisions
/// already finalized), evaluated as a parallel reduction for wide ranges.
pub(crate) fn argmin_decision<P: GlwsProblem>(
    problem: &P,
    d: &[i64],
    jl: usize,
    jr: usize,
    i: usize,
    metrics: &MetricsCollector,
) -> usize {
    let width = jr - jl + 1;
    metrics.add_edges(width as u64);
    if width < 2048 {
        let mut best_j = jl;
        let mut best_v = problem.e(d[jl], jl) + problem.w(jl, i);
        for j in (jl + 1)..=jr {
            let v = problem.e(d[j], j) + problem.w(j, i);
            if v < best_v {
                best_v = v;
                best_j = j;
            }
        }
        best_j
    } else {
        (jl..=jr)
            .into_par_iter()
            .with_min_len(round_min_grain(jr - jl + 1))
            .map(|j| (problem.e(d[j], j) + problem.w(j, i), j))
            .reduce_with(|a, b| if b < a { b } else { a })
            .map(|(_, j)| j)
            // analyze: allow(no-panics): the range is non-empty (width >=
            // 2048 on this branch), so the reduction always yields a value —
            // a silent fallback here would corrupt the argmin.
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ClosureCost, ConvexGapCost, LinearGapCost, PostOfficeProblem};
    use crate::naive::naive_glws;
    use crate::seq::sequential_convex_glws;

    fn pseudo_coords(n: usize, seed: u64, max_gap: u64) -> Vec<i64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut x = 0i64;
        (0..n)
            .map(|_| {
                x += (next() % max_gap) as i64 + 1;
                x
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_small_post_office() {
        for seed in 0..8 {
            for &open in &[1i64, 5, 50, 1000, 100_000] {
                let p = PostOfficeProblem::new(pseudo_coords(40, seed, 15), open);
                let got = parallel_convex_glws(&p);
                let want = naive_glws(&p);
                assert_eq!(got.d, want.d, "seed {seed} open {open}");
                assert!(got.check_consistency(&p), "seed {seed} open {open}");
            }
        }
    }

    #[test]
    fn matches_sequential_on_larger_instances() {
        for seed in 0..3 {
            for &open in &[10i64, 1_000, 1_000_000] {
                let p = PostOfficeProblem::new(pseudo_coords(3000, seed, 8), open);
                let got = parallel_convex_glws(&p);
                let want = sequential_convex_glws(&p);
                assert_eq!(got.d, want.d, "seed {seed} open {open}");
            }
        }
    }

    #[test]
    fn matches_naive_on_gap_cost_families() {
        for n in [1usize, 2, 3, 5, 17, 64, 200] {
            for &(a, b, c) in &[(0i64, 0i64, 1i64), (7, 3, 1), (100, 0, 5)] {
                let p = ConvexGapCost::new(n, a, b, c);
                let got = parallel_convex_glws(&p);
                let want = naive_glws(&p);
                assert_eq!(got.d, want.d, "n {n} ({a},{b},{c})");
            }
        }
    }

    #[test]
    fn linear_cost_ties_are_handled() {
        // Affine costs make every decision tie-heavy; values must still match.
        for n in [1usize, 5, 40, 150] {
            let p = LinearGapCost { a: 2, b: 3, n };
            assert_eq!(parallel_convex_glws(&p).d, naive_glws(&p).d);
        }
    }

    #[test]
    fn generalized_e_function() {
        let p = ClosureCost::new(
            120,
            5,
            |j, i| {
                let len = (i - j) as i64;
                20 + len * len
            },
            |d, j| d + (j % 7) as i64,
        );
        assert_eq!(parallel_convex_glws(&p).d, naive_glws(&p).d);
    }

    #[test]
    fn rounds_equal_perfect_depth() {
        // Lemma 4.5: the convex cordon algorithm runs in exactly as many rounds
        // as the longest best-decision chain.
        for seed in 0..5 {
            let p = PostOfficeProblem::new(pseudo_coords(500, seed, 10), 200);
            let got = parallel_convex_glws(&p);
            let depth = got.perfect_depth();
            assert_eq!(
                got.metrics.rounds as usize, depth,
                "seed {seed}: rounds {} vs perfect depth {depth}",
                got.metrics.rounds
            );
        }
    }

    #[test]
    fn one_cluster_means_one_round() {
        let p = PostOfficeProblem::new(pseudo_coords(200, 3, 5), i64::MAX / 8);
        let got = parallel_convex_glws(&p);
        assert_eq!(got.metrics.rounds, 1);
        assert_eq!(got.best[200], 0);
    }

    #[test]
    fn empty_and_singleton_instances() {
        let p = ConvexGapCost::new(0, 1, 1, 1);
        let r = parallel_convex_glws(&p);
        assert_eq!(r.d, vec![0]);
        let p = ConvexGapCost::new(1, 2, 3, 4);
        let r = parallel_convex_glws(&p);
        assert_eq!(r.d, vec![0, 9]);
        assert_eq!(r.metrics.rounds, 1);
    }

    #[test]
    fn work_counters_are_near_linear() {
        let n = 5000usize;
        let p = PostOfficeProblem::new(pseudo_coords(n, 11, 10), 300);
        let r = parallel_convex_glws(&p);
        // Edges + probes should be O(n log n); allow a generous constant.
        let bound = (n as u64) * 64;
        assert!(
            r.metrics.work_proxy() < bound,
            "work proxy {} exceeds {}",
            r.metrics.work_proxy(),
            bound
        );
        // Prefix doubling wastes at most as many states as it finalizes.
        assert!(r.metrics.wasted_states <= r.metrics.states_finalized + r.metrics.rounds);
    }
}
