//! Parallel concave GLWS (Sec. 4.3, Theorem 4.2).
//!
//! Three modifications relative to the convex algorithm:
//!
//! 1. **Sentinel placement.**  By concavity, if a tentative state `j` can
//!    improve *any* later state it can improve `j + 1`, so each probe only
//!    checks its immediate successor instead of binary-searching `B`.
//! 2. **FindIntervals.**  The recursion's decision ranges swap: if `jm` is the
//!    best new decision for the midpoint state `im`, states *before* `im` have
//!    their best new decision in `[jm, jr]` and states *after* `im` in
//!    `[jl, jm]`.
//! 3. **Merging with the old array.**  Unlike the convex case, states beyond
//!    the cordon may still prefer an *old* (already finalized) decision, so the
//!    freshly built `B_new` (decisions from the new frontier) must be merged
//!    with `B_old`.  By concave decision monotonicity the states preferring a
//!    new decision form a prefix `[cordon, p]`; the cut point `p` is found with
//!    one binary search that compares the two arrays' candidates (the
//!    simplification of Alg. 2 discussed in DESIGN.md; Alg. 2 itself is kept as
//!    an alternative for the ablation benchmark).

use crate::best::BestDecisionArray;
use crate::cost::GlwsProblem;
use crate::GlwsResult;
use pardp_core::{prefix_doubling_cordon, run_phase_parallel, PhaseParallel};
use pardp_parutils::{maybe_join, round_min_grain, MetricsCollector};
use rayon::prelude::*;

/// Strategy used to merge the new and old best-decision arrays after a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConcaveMergeStrategy {
    /// Single binary search over positions comparing the two arrays' candidate
    /// values (strictly-better-new wins); `O(log² n)` per round.
    #[default]
    PositionBinarySearch,
    /// The three-step search of Algorithm 2 in the paper (per-interval
    /// pre-processing, then two nested binary searches).  Same asymptotics per
    /// round up to log factors; kept for the ablation benchmark.
    PaperAlgorithm2,
}

/// Solve a concave GLWS instance with the parallel cordon algorithm using the
/// default merge strategy.
pub fn parallel_concave_glws<P: GlwsProblem>(problem: &P) -> GlwsResult {
    parallel_concave_glws_with(problem, ConcaveMergeStrategy::default())
}

/// Solve a concave GLWS instance with an explicit merge strategy (used by the
/// ablation benchmark).
///
/// Runs [`ConcaveGlwsCordon`] through the shared phase-parallel driver, which
/// supplies the round accounting, frontier telemetry and stall guard.
pub fn parallel_concave_glws_with<P: GlwsProblem>(
    problem: &P,
    merge: ConcaveMergeStrategy,
) -> GlwsResult {
    let metrics = MetricsCollector::new();
    let (d, best) = run_phase_parallel(ConcaveGlwsCordon::new(problem, merge), &metrics);
    GlwsResult {
        d,
        best,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for the concave variant of Algorithm 1: each
/// round is one FindCordon (with the successor-only sentinel rule) followed by
/// the build-and-merge of the best-decision array.
pub struct ConcaveGlwsCordon<'a, P: GlwsProblem> {
    problem: &'a P,
    merge: ConcaveMergeStrategy,
    d: Vec<i64>,
    best: Vec<usize>,
    b: BestDecisionArray,
    /// Per-round scratch for the `FindIntervals` output, reused across rounds
    /// so the round body allocates nothing at its high-water mark.
    intervals: Vec<(usize, usize, usize)>,
    now: usize,
    n: usize,
}

impl<'a, P: GlwsProblem> ConcaveGlwsCordon<'a, P> {
    /// Initialize the DP arrays and the all-zero best-decision array.
    pub fn new(problem: &'a P, merge: ConcaveMergeStrategy) -> Self {
        let n = problem.n();
        let mut d = vec![0i64; n + 1];
        d[0] = problem.d0();
        ConcaveGlwsCordon {
            problem,
            merge,
            d,
            best: vec![0usize; n + 1],
            b: BestDecisionArray::initial(n),
            intervals: Vec::new(),
            now: 0,
            n,
        }
    }
}

impl<P: GlwsProblem> PhaseParallel for ConcaveGlwsCordon<'_, P> {
    /// DP values plus the best decision of every state.
    type Output = (Vec<i64>, Vec<usize>);

    fn is_done(&self) -> bool {
        self.now >= self.n
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let problem = self.problem;
        let (now, n) = (self.now, self.n);
        // FindCordon with the concave sentinel rule: j sentinels j+1 if it can
        // (weakly) improve it.
        let (cordon, stats) = {
            let (d_final, d_tail) = self.d.split_at_mut(now + 1);
            let (_, best_tail) = self.best.split_at_mut(now + 1);
            let b_ref = &self.b;
            let metrics_ref = metrics;
            let d_final: &[i64] = d_final;

            prefix_doubling_cordon(now, n, |lo, hi| {
                let batch_d = &mut d_tail[(lo - now - 1)..=(hi - now - 1)];
                let batch_best = &mut best_tail[(lo - now - 1)..=(hi - now - 1)];
                let batch_len = batch_d.len();
                batch_d
                    .par_iter_mut()
                    .zip(batch_best.par_iter_mut())
                    .enumerate()
                    .with_min_len(round_min_grain(batch_len))
                    .map(|(off, (dj_slot, bj_slot))| {
                        let j = lo + off;
                        let bj = b_ref.decision_at(j);
                        let dj = problem.e(d_final[bj], bj) + problem.w(bj, j);
                        *dj_slot = dj;
                        *bj_slot = bj;
                        metrics_ref.add_edges(2);
                        if j + 1 > n {
                            return None;
                        }
                        // Incumbent value of j+1 given only finalized decisions.
                        let inc = b_ref.decision_at(j + 1);
                        let incumbent = problem.e(d_final[inc], inc) + problem.w(inc, j + 1);
                        let candidate = problem.e(dj, j) + problem.w(j, j + 1);
                        if candidate <= incumbent {
                            Some(j + 1)
                        } else {
                            None
                        }
                    })
                    .flatten()
                    .min()
            })
        };
        metrics.add_wasted(stats.wasted as u64);

        let frontier = cordon - now - 1;
        debug_assert!(frontier >= 1);

        if cordon <= n {
            // Build B_new: best decisions among the new frontier, for [cordon, n].
            self.intervals.clear();
            find_intervals_concave(
                problem,
                &self.d,
                now + 1,
                cordon - 1,
                cordon,
                n,
                &mut self.intervals,
                metrics,
            );
            let mut b_new = BestDecisionArray::empty();
            b_new.rebuild_from_intervals(self.intervals.drain(..));
            let mut b_old = std::mem::take(&mut self.b);
            b_old.clip_front(cordon);
            self.b = merge_new_old(
                problem, &self.d, b_new, b_old, cordon, n, self.merge, metrics,
            );
        } else {
            self.b.rebuild_from_intervals(std::iter::empty());
        }
        self.now = cordon - 1;
        frontier
    }

    fn finish(self) -> Self::Output {
        (self.d, self.best)
    }

    fn round_budget(&self) -> Option<u64> {
        // At least one state is finalized per round.
        Some(self.n as u64)
    }
}

/// Concave `FindIntervals`: like the convex version but with the decision
/// ranges swapped between the two recursive calls.
#[allow(clippy::too_many_arguments)]
fn find_intervals_concave<P: GlwsProblem>(
    problem: &P,
    d: &[i64],
    jl: usize,
    jr: usize,
    il: usize,
    ir: usize,
    out: &mut Vec<(usize, usize, usize)>,
    metrics: &MetricsCollector,
) {
    if il > ir {
        return;
    }
    if jl == jr {
        out.push((il, ir, jl));
        return;
    }
    let im = (il + ir) / 2;
    let jm = crate::convex::argmin_decision(problem, d, jl, jr, im, metrics);
    let state_count = ir - il + 1;
    let (mut left, right) = maybe_join(
        state_count,
        || {
            let mut v = Vec::new();
            if im > il {
                // Earlier states prefer later (or equal) decisions.
                find_intervals_concave(problem, d, jm, jr, il, im - 1, &mut v, metrics);
            }
            v
        },
        || {
            let mut v = Vec::new();
            // Later states prefer earlier (or equal) decisions.
            find_intervals_concave(problem, d, jl, jm, im + 1, ir, &mut v, metrics);
            v
        },
    );
    left.push((im, im, jm));
    left.extend(right);
    out.extend(left);
}

/// Value of state `i` using decision `j` (which must be finalized in `d`).
#[inline]
fn value_via<P: GlwsProblem>(problem: &P, d: &[i64], j: usize, i: usize) -> i64 {
    problem.e(d[j], j) + problem.w(j, i)
}

/// Merge `b_new` (decisions from the latest frontier, covering `[cordon, n]`)
/// with `b_old` (earlier decisions, clipped to `[cordon, n]`).  By concave
/// decision monotonicity the positions where a new decision is *strictly*
/// better form a prefix `[cordon, p]`.
#[allow(clippy::too_many_arguments)]
fn merge_new_old<P: GlwsProblem>(
    problem: &P,
    d: &[i64],
    b_new: BestDecisionArray,
    b_old: BestDecisionArray,
    cordon: usize,
    n: usize,
    strategy: ConcaveMergeStrategy,
    metrics: &MetricsCollector,
) -> BestDecisionArray {
    debug_assert_eq!(b_new.coverage(), Some((cordon, n)));
    debug_assert_eq!(b_old.coverage(), Some((cordon, n)));

    let new_strictly_better = |i: usize, probes: &mut u64| -> bool {
        *probes += 2;
        let jn = b_new.decision_at(i);
        let jo = b_old.decision_at(i);
        value_via(problem, d, jn, i) < value_via(problem, d, jo, i)
    };

    let mut probes = 0u64;
    let p = match strategy {
        ConcaveMergeStrategy::PositionBinarySearch => {
            // Largest position in [cordon, n] where the new decision strictly
            // wins (prefix-monotone predicate), or None.
            if !new_strictly_better(cordon, &mut probes) {
                None
            } else {
                let (mut lo, mut hi) = (cordon, n);
                while lo < hi {
                    let mid = (lo + hi).div_ceil(2);
                    if new_strictly_better(mid, &mut probes) {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                Some(lo)
            }
        }
        ConcaveMergeStrategy::PaperAlgorithm2 => {
            algorithm2_cut_point(problem, d, &b_new, &b_old, &mut probes)
        }
    };
    metrics.add_probes(probes);

    match p {
        None => b_old,
        Some(p) if p >= n => b_new,
        Some(p) => {
            let mut new_part = b_new;
            new_part.clip_back(p);
            let mut old_part = b_old;
            old_part.clip_front(p + 1);
            new_part.concat(old_part)
        }
    }
}

/// The cut-point search of Algorithm 2 in the paper: for each interval of
/// `B_new`, look up the best old decision of its left endpoint, locate the last
/// interval of `B_new` that still beats the old candidate there, then refine
/// with binary searches inside `B_old` and over positions.
///
/// Kept primarily for the ablation study; produces the same cut point as the
/// plain position binary search (up to ties, which do not affect DP values).
fn algorithm2_cut_point<P: GlwsProblem>(
    problem: &P,
    d: &[i64],
    b_new: &BestDecisionArray,
    b_old: &BestDecisionArray,
    probes: &mut u64,
) -> Option<usize> {
    // Step 1 (Alg. 2 lines 1-2): for every interval ([l_k, r_k], j_k) of B_new,
    // find the best old decision x_k of l_k, in parallel.
    let triples = b_new.triples();
    let xs: Vec<usize> = triples
        .par_iter()
        .with_min_len(round_min_grain(triples.len()))
        .map(|t| b_old.decision_at(t.l))
        .collect();
    *probes += triples.len() as u64;

    // Step 2 (line 3): last interval whose new decision still strictly beats
    // the old candidate at its left endpoint.
    let wins_at_left = |k: usize| -> bool {
        let t = &triples[k];
        value_via(problem, d, t.j, t.l) < value_via(problem, d, xs[k], t.l)
    };
    *probes += (triples.len().max(2)).ilog2() as u64 + 1;
    if triples.is_empty() || !wins_at_left(0) {
        return None;
    }
    let (mut lo, mut hi) = (0usize, triples.len() - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if wins_at_left(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let k = lo;
    let t = triples[k];

    // Step 3 (lines 4-5): the cut point lies inside interval k (or at its end).
    // Binary search the last position in [t.l, t.r] where the new decision j_k
    // strictly beats the best old decision of that position.
    let beats_old_at = |pos: usize, probes: &mut u64| -> bool {
        *probes += 2;
        let jo = b_old.decision_at(pos);
        value_via(problem, d, t.j, pos) < value_via(problem, d, jo, pos)
    };
    let (mut lo, mut hi) = (t.l, t.r);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if beats_old_at(mid, probes) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ClosureCost, ConcaveGapCost, LinearGapCost};
    use crate::naive::naive_glws;
    use crate::seq::sequential_concave_glws;

    #[test]
    fn matches_naive_on_sqrt_costs() {
        for n in [1usize, 2, 3, 8, 33, 100, 257] {
            for &(a, b) in &[(0i64, 1i64), (5, 3), (50, 2), (1000, 7)] {
                let p = ConcaveGapCost::new(n, a, b);
                let got = parallel_concave_glws(&p);
                let want = naive_glws(&p);
                assert_eq!(got.d, want.d, "n {n} a {a} b {b}");
                assert!(got.check_consistency(&p));
            }
        }
    }

    #[test]
    fn matches_sequential_on_larger_instances() {
        for &(a, b) in &[(3i64, 2i64), (200, 1)] {
            let p = ConcaveGapCost::new(4000, a, b);
            let got = parallel_concave_glws(&p);
            let want = sequential_concave_glws(&p);
            assert_eq!(got.d, want.d);
        }
    }

    #[test]
    fn both_merge_strategies_agree() {
        for n in [10usize, 64, 300] {
            for &(a, b) in &[(0i64, 2i64), (17, 5)] {
                let p = ConcaveGapCost::new(n, a, b);
                let r1 = parallel_concave_glws_with(&p, ConcaveMergeStrategy::PositionBinarySearch);
                let r2 = parallel_concave_glws_with(&p, ConcaveMergeStrategy::PaperAlgorithm2);
                assert_eq!(r1.d, r2.d, "n {n} a {a} b {b}");
                assert_eq!(r1.d, naive_glws(&p).d);
            }
        }
    }

    #[test]
    fn linear_costs_work_under_concave_solver() {
        for n in [1usize, 7, 90] {
            let p = LinearGapCost { a: 4, b: 6, n };
            assert_eq!(parallel_concave_glws(&p).d, naive_glws(&p).d);
        }
    }

    #[test]
    fn concave_closure_cost_with_general_e() {
        // Capped-linear gap cost (concave) with a generalized E function.
        let p = ClosureCost::new(
            150,
            0,
            |j, i| 100 + 10 * (i - j).min(7) as i64,
            |dj, j| dj + (j % 3) as i64,
        );
        let got = parallel_concave_glws(&p);
        let want = naive_glws(&p);
        assert_eq!(got.d, want.d);
    }

    #[test]
    fn multi_round_concave_instance_with_bonus_states() {
        // With E[j] = D[j] alone, concavity makes a single segment optimal and
        // the algorithm trivially finishes in one round.  A generalized E that
        // grants a bonus at certain states makes the optimum chain through
        // them, forcing multiple rounds and exercising the FindIntervals +
        // merge path of the concave algorithm.
        for n in [30usize, 100, 257] {
            let p = ClosureCost::new(
                n,
                0,
                |j, i| 200 + 5 * ((i - j).min(40) as i64),
                |d, j| d - if j > 0 && j % 7 == 3 { 400 } else { 0 },
            );
            let got = parallel_concave_glws(&p);
            let want = naive_glws(&p);
            assert_eq!(got.d, want.d, "n {n}");
            let got2 = parallel_concave_glws_with(&p, ConcaveMergeStrategy::PaperAlgorithm2);
            assert_eq!(got2.d, want.d, "n {n} (Algorithm 2 merge)");
            if n >= 100 {
                assert!(
                    got.metrics.rounds > 1,
                    "instance should need multiple rounds, got {}",
                    got.metrics.rounds
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let p = ConcaveGapCost::new(0, 1, 1);
        assert_eq!(parallel_concave_glws(&p).d, vec![0]);
        let p = ConcaveGapCost::new(1, 4, 3);
        let r = parallel_concave_glws(&p);
        assert_eq!(r.d, vec![0, 4 + 3000]);
        assert_eq!(r.metrics.rounds, 1);
    }

    #[test]
    fn work_counters_are_near_linear() {
        let n = 5000usize;
        let p = ConcaveGapCost::new(n, 50, 3);
        let r = parallel_concave_glws(&p);
        let bound = (n as u64) * 64;
        assert!(
            r.metrics.work_proxy() < bound,
            "work proxy {} exceeds {}",
            r.metrics.work_proxy(),
            bound
        );
    }
}
