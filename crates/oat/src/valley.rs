//! Polylog-round OAT construction (Theorem 5.1): Cartesian-tree valley
//! decomposition plus weight-doubling combine rounds.
//!
//! The interval cordon of [`crate::parallel_oat`] needs `n - 1` rounds — one
//! per diagonal of the Knuth table.  Theorem 5.1 instead parallelizes the
//! Garsia–Wachs *combine* process itself (Appendix A): the weight sequence
//! decomposes into **valleys** around its local minima (the leaves of the
//! max-rooted [Cartesian tree](cartesian_tree) of the sequence), and combines
//! in different valleys are independent because a combined package is
//! reinserted before the nearest larger element, which never crosses a
//! bounding wall that exceeds the package weight.
//!
//! [`ValleyOatCordon`] batches those independent combines into
//! weight-doubling rounds.  Each round:
//!
//! 1. picks a threshold `T = max(2·T_prev, 2^⌈log₂ min-2-sum⌉)`, so at least
//!    one pair is always eligible and `T` at least doubles per round;
//! 2. splits the working sequence into maximal nondecreasing runs (the
//!    ascending slopes of the current valleys) and, **in parallel per run**,
//!    replays verbatim Garsia–Wachs steps on the run's front pair: a combine
//!    fires only while the pair's 2-sum is at most `T`, the left wall still
//!    exceeds the second element (the locally-minimal-pair condition), and
//!    the package reinserts inside the run — every such step reads only
//!    run-local state plus the immutable wall, so runs never race;
//! 3. finishes with a short sequential sweep that performs the remaining
//!    eligible locally-minimal combines (wall-adjacent pairs and packages
//!    that escape their run), counted as `wasted` work in the metrics.
//!
//! After a round no 2-sum is below `T`, so the number of rounds is at most
//! `log₂(total weight) + O(1)` — within the Lemma 5.1 budget
//! [`crate::oat_height_bound`], and *polylogarithmic* in `n` for word-sized
//! weights, versus the interval cordon's `n - 1`.  Every combine is a bona
//! fide locally-minimal-pair step, which Karpinski–Larmore–Rytter show may be
//! scheduled in any order, so the result is a valid Garsia–Wachs l-tree and
//! its leaf levels are optimal alphabetic-tree depths; the tests pin cost
//! equality against [`crate::garsia_wachs`] and [`crate::interval_dp_oat`],
//! plus Kraft equality and ordered realizability of the depth vector.
//!
//! The paper reaches the same round bound by phrasing each valley's schedule
//! as a least-weight-subsequence instance for the parallel LWS engine of
//! `pardp-glws` (Larmore et al. [72]); this driver keeps the engine contract
//! (`run_phase_parallel`, metrics, stall guards, `round_budget`) but derives
//! the rounds directly from the doubling thresholds, trading the LWS oracle
//! for combine steps that are individually checkable against the sequential
//! algorithm.
//!
//! [`oat_cordon_auto`] routes tiny inputs (below [`OAT_VALLEY_MIN_N`]) to the
//! interval cordon via [`IntervalOatCordon`], returning the zero-dispatch
//! `EitherCordon` combinator exactly like the Tree-GLWS shape router.

use pardp_core::{run_phase_parallel, EitherCordon, FrontierArena, PhaseParallel};
use pardp_obst::ObstCordon;
use pardp_parutils::{par_map, MetricsCollector};

use crate::OatResult;

/// Max-rooted Cartesian tree of a weight sequence: heap-ordered by weight
/// (ties resolved leftward), in-order traversal yields the original indices.
///
/// Its leaves are exactly the local minima of the sequence — the valley
/// bottoms of the decomposition — and each node's ancestors are the
/// nearest-greater elements on either side.
#[derive(Debug, Clone)]
pub struct CartesianTree {
    /// Index of the maximum element (leftmost on ties); 0 when empty.
    pub root: usize,
    /// Left child per index, `-1` if none.
    pub left: Vec<isize>,
    /// Right child per index, `-1` if none.
    pub right: Vec<isize>,
    /// Parent per index, `-1` for the root.
    pub parent: Vec<isize>,
}

/// Build the max-rooted Cartesian tree with the classic O(n) stack
/// construction.  On equal weights the left element wins (stays the
/// ancestor), matching the strict-descent run boundaries used by the cordon.
pub fn cartesian_tree(weights: &[u64]) -> CartesianTree {
    let n = weights.len();
    let mut left = vec![-1isize; n];
    let mut right = vec![-1isize; n];
    let mut parent = vec![-1isize; n];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..n {
        let mut last: isize = -1;
        while let Some(&top) = stack.last() {
            if weights[top] < weights[i] {
                stack.pop();
                last = top as isize;
            } else {
                break;
            }
        }
        if last >= 0 {
            left[i] = last;
            parent[last as usize] = i as isize;
        }
        if let Some(&top) = stack.last() {
            right[top] = i as isize;
            parent[i] = top as isize;
        }
        stack.push(i);
    }
    CartesianTree {
        root: stack.first().copied().unwrap_or(0),
        left,
        right,
        parent,
    }
}

/// One valley of the decomposition: the basin around a local minimum,
/// bounded by the nearest strictly larger elements (walls) on either side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Valley {
    /// First index of the valley interior (wall excluded).
    pub lo: usize,
    /// Last index of the valley interior, inclusive (wall excluded).
    pub hi: usize,
    /// The local minimum — a leaf of the Cartesian tree.
    pub bottom: usize,
    /// The smaller bounding-wall weight: a combined package heavier than
    /// this escapes the valley on reinsertion (`u64::MAX` at sequence ends).
    pub cap: u64,
}

/// Decompose the sequence into valleys by walking up from each Cartesian-tree
/// leaf to its nearest bounding ancestor on each side.  Interiors of distinct
/// valleys are disjoint; walls (local maxima) belong to no valley.
pub fn valley_decomposition(weights: &[u64], tree: &CartesianTree) -> Vec<Valley> {
    let n = weights.len();
    let mut out = Vec::new();
    for v in 0..n {
        if tree.left[v] >= 0 || tree.right[v] >= 0 {
            continue;
        }
        let mut left_wall = None;
        let mut right_wall = None;
        let mut child = v as isize;
        let mut p = tree.parent[v];
        while p >= 0 && (left_wall.is_none() || right_wall.is_none()) {
            let pu = p as usize;
            if tree.right[pu] == child {
                if left_wall.is_none() {
                    left_wall = Some(pu);
                }
            } else if right_wall.is_none() {
                right_wall = Some(pu);
            }
            child = p;
            p = tree.parent[pu];
        }
        let cap_l = left_wall.map_or(u64::MAX, |w| weights[w]);
        let cap_r = right_wall.map_or(u64::MAX, |w| weights[w]);
        out.push(Valley {
            lo: left_wall.map_or(0, |w| w + 1),
            hi: right_wall.map_or(n - 1, |w| w - 1),
            bottom: v,
            cap: cap_l.min(cap_r),
        });
    }
    out
}

/// Cost and per-leaf depths of an optimal alphabetic tree — the common
/// output of the valley and interval OAT cordons (the driver owns the
/// metrics, so they are not part of the instance output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OatLayout {
    /// Optimal cost `Σ a_i · depth_i`.
    pub cost: u64,
    /// Depth of every leaf in the optimal tree.
    pub depths: Vec<u32>,
}

/// Below this size the router picks the interval cordon: the O(n²) diagonal
/// sweep is cheaper than the valley machinery's per-round fixed cost on tiny
/// inputs, and its `n - 1` rounds are few in absolute terms anyway.
pub const OAT_VALLEY_MIN_N: usize = 64;

/// An l-tree sequence element: a leaf (`enc = -(i+1)`) or a combined package
/// rooted at arena node `enc`.
#[derive(Debug, Clone, Copy)]
struct Item {
    weight: u64,
    enc: isize,
}

/// Output of one run's parallel combine phase.
struct RunOut {
    /// Remaining items of the run, ascending by weight.
    items: Vec<Item>,
    /// Locally allocated l-tree nodes; references at or above the round base
    /// are local to this run and remapped on append.
    nodes: Vec<(isize, isize)>,
    /// Scan/insert work performed.
    edges: u64,
}

/// Replay Garsia–Wachs combines on one maximal nondecreasing run.
///
/// The front pair of a sorted run is the only candidate locally minimal
/// pair; it is combined while its 2-sum is within `threshold`, the left
/// `wall` strictly exceeds the second element (the `left_ok` condition of
/// the sequential algorithm, since `wall + s1 > s1 + s2 ⇔ wall > s2`), and
/// the package reinserts before an in-run element (`x` at most the run's
/// immutable last weight).  `right_ok` holds automatically while the run has
/// at least three items (`s1 ≤ s3 ⇔ s1 + s2 ≤ s2 + s3`).  All reads are
/// run-local or the round-start wall, so runs are processed in parallel.
fn run_combines(run: &[Item], wall: u64, threshold: u64, round_base: usize) -> RunOut {
    let mut cur: Vec<Item> = run.to_vec();
    let mut head = 0usize;
    let mut nodes: Vec<(isize, isize)> = Vec::new();
    let mut edges = 0u64;
    while cur.len() - head >= 3 {
        let s1 = cur[head];
        let s2 = cur[head + 1];
        let x = s1.weight + s2.weight;
        if x > threshold || wall <= s2.weight || x > cur[cur.len() - 1].weight {
            break;
        }
        let enc = (round_base + nodes.len()) as isize;
        nodes.push((s1.enc, s2.enc));
        head += 2;
        // Reinsert before the first element >= x (the Garsia–Wachs rule);
        // the run is sorted, so the scan is a binary search.
        let pos = head + cur[head..].partition_point(|it| it.weight < x);
        edges += 1 + (cur.len() - pos) as u64;
        cur.insert(pos, Item { weight: x, enc });
    }
    let items = cur.split_off(head);
    RunOut {
        items,
        nodes,
        edges,
    }
}

/// Phase-parallel OAT cordon with polylog rounds (Theorem 5.1).
///
/// See the [module docs](self) for the round structure.  Frontier size per
/// round is the number of combines performed; the sequential sweep's
/// combines are additionally counted as `wasted` in the metrics, and the
/// number of parallel run tasks per round as `probes`.
#[derive(Debug)]
pub struct ValleyOatCordon {
    weights: Vec<u64>,
    seq: Vec<Item>,
    children: Vec<(isize, isize)>,
    threshold: u64,
    stitched: Vec<Item>,
    initial_valleys: Vec<Valley>,
}

impl ValleyOatCordon {
    /// Build the cordon: Cartesian tree, initial valley decomposition, and
    /// the leaf sequence.
    pub fn new(weights: &[u64]) -> Self {
        let n = weights.len();
        assert!(n < u32::MAX as usize, "sequence too long for packed runs");
        let initial_valleys = if n >= 2 {
            let tree = cartesian_tree(weights);
            valley_decomposition(weights, &tree)
        } else {
            Vec::new()
        };
        let seq = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Item {
                weight: w,
                enc: -((i as isize) + 1),
            })
            .collect();
        ValleyOatCordon {
            weights: weights.to_vec(),
            seq,
            children: Vec::with_capacity(n.saturating_sub(1)),
            threshold: 0,
            stitched: Vec::with_capacity(n),
            initial_valleys,
        }
    }

    /// The valley decomposition of the input sequence (before any combines).
    pub fn initial_valleys(&self) -> &[Valley] {
        &self.initial_valleys
    }
}

impl PhaseParallel for ValleyOatCordon {
    type Output = OatLayout;

    fn is_done(&self) -> bool {
        self.seq.len() <= 1
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        self.round_with(metrics, &mut FrontierArena::new())
    }

    fn round_with(&mut self, metrics: &MetricsCollector, arena: &mut FrontierArena) -> usize {
        let n_now = self.seq.len();
        debug_assert!(n_now >= 2);

        // Threshold: at least double, and at least the (power-of-two rounded)
        // smallest current 2-sum, so >= 1 pair is always eligible.
        let min_sum = self
            .seq
            .windows(2)
            .map(|w| w[0].weight + w[1].weight)
            .min()
            // analyze: allow(no-panics): `round` only runs while
            // `seq.len() >= 2` (`is_done` gates on it), so a pair exists; a
            // silent fallback would mis-set the combine threshold.
            .expect("at least one pair");
        self.threshold = (self.threshold.saturating_mul(2)).max(min_sum.next_power_of_two());
        let t = self.threshold;

        // Maximal nondecreasing runs (the ascending valley slopes), staged in
        // the driver's arena as ((lo << 32) | hi, wall-weight) pairs.
        let runs = arena.pairs_mut();
        let mut lo = 0usize;
        for p in 1..n_now {
            if self.seq[p].weight < self.seq[p - 1].weight {
                let wall = if lo == 0 {
                    u64::MAX
                } else {
                    self.seq[lo - 1].weight
                };
                runs.push((((lo as u64) << 32) | p as u64, wall));
                lo = p;
            }
        }
        let wall = if lo == 0 {
            u64::MAX
        } else {
            self.seq[lo - 1].weight
        };
        runs.push((((lo as u64) << 32) | n_now as u64, wall));
        metrics.add_edges(2 * n_now as u64); // min-sum scan + run partition
        metrics.add_probes(runs.len() as u64);

        // Parallel phase: independent Garsia–Wachs combines per run.
        let round_base = self.children.len();
        let seq_ref = &self.seq;
        let runs_ref: &[(u64, u64)] = runs;
        let outs: Vec<RunOut> = par_map(runs_ref.len(), |r| {
            let (packed, wall) = runs_ref[r];
            let (lo, hi) = ((packed >> 32) as usize, (packed & 0xffff_ffff) as usize);
            run_combines(&seq_ref[lo..hi], wall, t, round_base)
        });

        // Merge: append local l-tree nodes (remapping run-local references)
        // and stitch the leftover items back into one sequence.
        self.stitched.clear();
        let mut combines = 0usize;
        for out in outs {
            let shift = self.children.len() as isize - round_base as isize;
            let remap = |enc: isize| {
                if enc >= round_base as isize {
                    enc + shift
                } else {
                    enc
                }
            };
            for &(l, r) in &out.nodes {
                self.children.push((remap(l), remap(r)));
            }
            combines += out.nodes.len();
            self.stitched.extend(out.items.iter().map(|it| Item {
                weight: it.weight,
                enc: remap(it.enc),
            }));
            metrics.add_edges(out.edges);
        }
        std::mem::swap(&mut self.seq, &mut self.stitched);

        // Sequential sweep: remaining eligible locally minimal pairs —
        // wall-adjacent fronts and packages escaping their run.  Counted as
        // wasted (work the parallel phase could not take).
        let mut swept = 0u64;
        let mut edges = 0u64;
        let mut cursor = 0usize;
        while self.seq.len() >= 2 {
            let two = |s: &[Item], k: usize| s[k].weight + s[k + 1].weight;
            let last = self.seq.len() - 2;
            let mut found = None;
            let mut k = cursor;
            while k <= last {
                edges += 1;
                let s = two(&self.seq, k);
                if s <= t {
                    let left_ok = k == 0 || two(&self.seq, k - 1) > s;
                    let right_ok = k == last || s <= two(&self.seq, k + 1);
                    if left_ok && right_ok {
                        found = Some(k);
                        break;
                    }
                }
                k += 1;
            }
            let Some(p) = found else { break };
            let x = two(&self.seq, p);
            let enc = self.children.len() as isize;
            self.children.push((self.seq[p].enc, self.seq[p + 1].enc));
            self.seq.drain(p..=p + 1);
            let mut q = p;
            while q < self.seq.len() && self.seq[q].weight < x {
                edges += 1;
                q += 1;
            }
            self.seq.insert(q, Item { weight: x, enc });
            swept += 1;
            // Modifications touch indices >= p - 1 only; resume two pairs
            // earlier (pair p-2's right neighbour changed).
            cursor = p.saturating_sub(2);
        }
        metrics.add_edges(edges);
        metrics.add_wasted(swept);

        combines + swept as usize
    }

    fn finish(self) -> OatLayout {
        let n = self.weights.len();
        let mut depths = vec![0u32; n];
        if n >= 2 {
            let root = self.seq[0].enc;
            let mut stack = vec![(root, 0u32)];
            while let Some((enc, depth)) = stack.pop() {
                if enc < 0 {
                    depths[(-enc - 1) as usize] = depth;
                } else {
                    let (l, r) = self.children[enc as usize];
                    stack.push((l, depth + 1));
                    stack.push((r, depth + 1));
                }
            }
        }
        let cost = self
            .weights
            .iter()
            .zip(&depths)
            .map(|(&w, &d)| w * d as u64)
            .sum();
        OatLayout { cost, depths }
    }

    fn round_budget(&self) -> Option<u64> {
        let n = self.weights.len() as u64;
        if n < 2 {
            return Some(0);
        }
        // The threshold at least doubles per round and starts at the first
        // min-2-sum's power of two, so rounds <= log2(total weight) + O(1);
        // n - 1 combines also bound the rounds outright.
        let total: u64 = self.weights.iter().sum();
        let bits = 64 - total.leading_zeros() as u64;
        Some((n - 1).min(bits + 4))
    }
}

/// The interval-DP cordon (the OBST diagonal sweep restricted to leaf
/// weights) adapted to the [`OatLayout`] output, so the router's two arms
/// share an output type.  Runs in `n - 1` rounds — the pre-Theorem-5.1
/// baseline kept for tiny inputs and as the ablation partner.
pub struct IntervalOatCordon {
    inner: ObstCordon,
}

impl IntervalOatCordon {
    /// Wrap the OBST diagonal cordon for the given leaf weights.
    pub fn new(weights: &[u64]) -> Self {
        IntervalOatCordon {
            inner: ObstCordon::new(weights),
        }
    }
}

impl PhaseParallel for IntervalOatCordon {
    type Output = OatLayout;

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        self.inner.round(metrics)
    }

    fn round_with(&mut self, metrics: &MetricsCollector, arena: &mut FrontierArena) -> usize {
        self.inner.round_with(metrics, arena)
    }

    fn finish(self) -> OatLayout {
        let tables = self.inner.finish();
        OatLayout {
            cost: tables.cost(),
            depths: tables.leaf_depths(),
        }
    }

    fn round_budget(&self) -> Option<u64> {
        self.inner.round_budget()
    }
}

/// Route an OAT instance to the cheaper cordon: the interval cordon below
/// [`OAT_VALLEY_MIN_N`] leaves, the polylog-round valley cordon otherwise —
/// returned as the zero-dispatch `EitherCordon` so the choice stays a value
/// any driver (including the facade's `CordonSolver`) can run.
pub fn oat_cordon_auto(weights: &[u64]) -> EitherCordon<IntervalOatCordon, ValleyOatCordon> {
    if weights.len() < OAT_VALLEY_MIN_N {
        EitherCordon::First(IntervalOatCordon::new(weights))
    } else {
        EitherCordon::Second(ValleyOatCordon::new(weights))
    }
}

/// Parallel OAT via the valley cordon: polylog rounds (Theorem 5.1), same
/// cost as [`crate::garsia_wachs`] / [`crate::interval_dp_oat`].
pub fn parallel_oat_valley(weights: &[u64]) -> OatResult {
    let metrics = MetricsCollector::new();
    let layout = run_phase_parallel(ValleyOatCordon::new(weights), &metrics);
    let height = layout.depths.iter().copied().max().unwrap_or(0);
    OatResult {
        cost: layout.cost,
        depths: layout.depths,
        height,
        metrics: metrics.snapshot(),
    }
}

/// Parallel OAT via the size router ([`oat_cordon_auto`]).
pub fn parallel_oat_auto(weights: &[u64]) -> OatResult {
    let metrics = MetricsCollector::new();
    let layout = run_phase_parallel(oat_cordon_auto(weights), &metrics);
    let height = layout.depths.iter().copied().max().unwrap_or(0);
    OatResult {
        cost: layout.cost,
        depths: layout.depths,
        height,
        metrics: metrics.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{garsia_wachs, interval_dp_oat, oat_height_bound};

    fn pseudo_weights(n: usize, seed: u64, max_w: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % max_w + 1
            })
            .collect()
    }

    /// A depth sequence is realizable as an ordered full binary tree iff the
    /// classic stack merge reduces it to a single root of depth 0.
    fn alphabetically_realizable(depths: &[u32]) -> bool {
        let mut stack: Vec<u32> = Vec::new();
        for &d in depths {
            let mut cur = d;
            while stack.last() == Some(&cur) {
                if cur == 0 {
                    return false;
                }
                stack.pop();
                cur -= 1;
            }
            stack.push(cur);
        }
        stack == [0]
    }

    #[test]
    fn cartesian_tree_is_heap_ordered_with_inorder_identity() {
        for seed in 0..6 {
            let w = pseudo_weights(200, seed, 12); // many ties
            let t = cartesian_tree(&w);
            // Heap order, ties leftward: parent weight >= child; equal only
            // when the child lies right of the parent.
            for v in 0..w.len() {
                let p = t.parent[v];
                if p < 0 {
                    assert_eq!(v, t.root);
                    continue;
                }
                let pu = p as usize;
                assert!(w[pu] >= w[v], "heap order violated at {v}");
                if w[pu] == w[v] {
                    assert!(pu < v, "equal weights must keep the left element higher");
                }
                assert!(
                    t.left[pu] == v as isize || t.right[pu] == v as isize,
                    "parent/child links disagree"
                );
            }
            // In-order traversal must yield 0..n.
            let mut order = Vec::with_capacity(w.len());
            let mut stack = Vec::new();
            let mut cur = t.root as isize;
            while cur >= 0 || !stack.is_empty() {
                while cur >= 0 {
                    stack.push(cur as usize);
                    cur = t.left[cur as usize];
                }
                let v = stack.pop().unwrap();
                order.push(v);
                cur = t.right[v];
            }
            assert_eq!(order, (0..w.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn valleys_are_disjoint_basins_around_local_minima() {
        for seed in 0..6 {
            let w = pseudo_weights(300, seed, 40);
            let t = cartesian_tree(&w);
            let valleys = valley_decomposition(&w, &t);
            assert!(!valleys.is_empty());
            for v in &valleys {
                assert!(v.lo <= v.bottom && v.bottom <= v.hi);
                for i in v.lo..=v.hi {
                    assert!(w[i] <= v.cap, "interior element above the wall cap");
                }
            }
            for pair in valleys.windows(2) {
                assert!(
                    pair[0].hi < pair[1].lo,
                    "valley interiors must be disjoint and ordered"
                );
            }
        }
    }

    #[test]
    fn valley_matches_oracles_on_small_inputs() {
        for seed in 0..8 {
            for &n in &[0usize, 1, 2, 3, 4, 5, 8, 13, 20, 40, 90, 150] {
                let w = pseudo_weights(n, seed, 50);
                let got = parallel_oat_valley(&w);
                let gw = garsia_wachs(&w);
                assert_eq!(got.cost, gw.cost, "n {n} seed {seed} weights {w:?}");
                assert_eq!(got.cost, interval_dp_oat(&w), "n {n} seed {seed}");
                let recomputed: u64 = w.iter().zip(&got.depths).map(|(&a, &d)| a * d as u64).sum();
                assert_eq!(recomputed, got.cost, "depths must attain the cost");
                if n >= 1 {
                    assert!(
                        alphabetically_realizable(&got.depths),
                        "n {n} seed {seed}: depths {:?} not realizable in order",
                        got.depths
                    );
                }
            }
        }
    }

    #[test]
    fn valley_rounds_are_polylog_not_linear() {
        for seed in 0..4 {
            let w = pseudo_weights(2000, seed, 1000);
            let r = parallel_oat_valley(&w);
            assert_eq!(r.cost, garsia_wachs(&w).cost);
            let bound = oat_height_bound(&w) as u64;
            assert!(
                r.metrics.rounds <= bound,
                "rounds {} exceed the Lemma 5.1 budget {bound}",
                r.metrics.rounds
            );
            // The interval cordon would need n - 1 = 1999 rounds.
            assert!(
                r.metrics.rounds < 100,
                "rounds {} not polylog",
                r.metrics.rounds
            );
            assert_eq!(r.metrics.states_finalized, 1999);
        }
    }

    #[test]
    fn valley_handles_adversarial_profiles() {
        // Equal weights: a single plateau, all combines wall-adjacent.
        let equal = vec![7u64; 256];
        let r = parallel_oat_valley(&equal);
        assert_eq!(r.cost, 7 * 8 * 256);
        assert!(r.depths.iter().all(|&d| d == 8));
        // Exponentially growing: the optimal tree is a caterpillar.
        let expo: Vec<u64> = (0..40).map(|i| 1u64 << i).collect();
        let r = parallel_oat_valley(&expo);
        assert_eq!(r.cost, garsia_wachs(&expo).cost);
        assert!(alphabetically_realizable(&r.depths));
        // Perfect valley and mountain shapes.
        let valley: Vec<u64> = (0..50).map(|i| (50i64 - i).unsigned_abs() + 1).collect();
        let mountain: Vec<u64> = valley.iter().rev().copied().collect();
        for w in [valley, mountain] {
            let r = parallel_oat_valley(&w);
            assert_eq!(r.cost, interval_dp_oat(&w), "weights {w:?}");
            assert!(alphabetically_realizable(&r.depths));
        }
    }

    #[test]
    fn router_picks_interval_for_tiny_and_valley_for_large() {
        let tiny = pseudo_weights(OAT_VALLEY_MIN_N - 1, 1, 100);
        match oat_cordon_auto(&tiny) {
            EitherCordon::First(_) => {}
            EitherCordon::Second(_) => panic!("tiny input must use the interval cordon"),
        }
        let big = pseudo_weights(OAT_VALLEY_MIN_N, 1, 100);
        match oat_cordon_auto(&big) {
            EitherCordon::Second(_) => {}
            EitherCordon::First(_) => panic!("large input must use the valley cordon"),
        }
        // Both arms agree with the oracle through the router entry point.
        for n in [OAT_VALLEY_MIN_N - 5, OAT_VALLEY_MIN_N + 5] {
            let w = pseudo_weights(n, 9, 64);
            assert_eq!(parallel_oat_auto(&w).cost, interval_dp_oat(&w));
        }
    }

    #[test]
    fn initial_valleys_are_exposed() {
        let w = vec![5u64, 3, 4, 9, 2, 2, 6];
        let cordon = ValleyOatCordon::new(&w);
        let valleys = cordon.initial_valleys();
        assert!(!valleys.is_empty());
        // Local minimum at index 1 (5 > 3 < 4); on the 2,2 plateau the tie
        // rule keeps the left element as the wall, so the leaf is index 5.
        assert!(valleys.iter().any(|v| v.bottom == 1));
        assert!(valleys.iter().any(|v| v.bottom == 5 && v.lo == 5));
    }
}
