//! Optimal Alphabetic Trees (Sec. 5.1, Theorem 5.1).
//!
//! Given leaf weights `a[1..n]`, the OAT is the binary tree with those leaves
//! in order minimizing `Σ a_i · depth_i`.  This crate provides
//!
//! * [`interval_dp_oat`] — the `O(n²)` Knuth-style interval DP (exact oracle,
//!   also the OBST connection of Sec. 5.5),
//! * [`garsia_wachs`] — the classic `O(n log n)`-class sequential algorithm:
//!   repeatedly combine the leftmost locally minimal pair and reinsert the
//!   combined node before the nearest larger predecessor; the resulting
//!   *l-tree* has the same leaf levels as the OAT (phase 2 of Garsia–Wachs /
//!   Hu–Tucker), so cost and height are read directly off the l-tree,
//! * [`oat_height_bound`] — the `O(log W)` height bound of Lemma 5.1, which is
//!   what turns Theorem 5.1 into a polylog-span algorithm for word-sized
//!   integer weights (Corollary 5.1.1).
//!
//! Two phase-parallel constructions run through the shared
//! `run_phase_parallel` driver:
//!
//! * [`parallel_oat`] — the interval-DP cordon: the OAT is the OBST problem
//!   restricted to leaf weights (Sec. 5.5's observation), so the diagonal
//!   cordon of `pardp-obst` computes the optimal tree in `n - 1` rounds, and
//!   the split-point table reconstructs the leaf depths.
//! * [`parallel_oat_valley`] — the polylog-round construction of Theorem 5.1
//!   (the [`valley`] module): the Cartesian-tree valley decomposition of
//!   Larmore et al. [72] splits the weight sequence around its local minima,
//!   and weight-doubling rounds replay independent Garsia–Wachs combines in
//!   parallel across valley slopes, finishing in `O(log W)` rounds instead
//!   of `n - 1`.  [`parallel_oat_auto`] routes tiny inputs back to the
//!   interval cordon via [`oat_cordon_auto`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

pub mod valley;

pub use valley::{
    cartesian_tree, oat_cordon_auto, parallel_oat_auto, parallel_oat_valley, valley_decomposition,
    CartesianTree, IntervalOatCordon, OatLayout, Valley, ValleyOatCordon, OAT_VALLEY_MIN_N,
};

use pardp_core::run_phase_parallel;
use pardp_obst::ObstCordon;
use pardp_parutils::{Metrics, MetricsCollector};

/// Result of an OAT construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OatResult {
    /// Optimal cost `Σ a_i · depth_i`.
    pub cost: u64,
    /// Depth of every leaf in the optimal tree (root depth 0).
    pub depths: Vec<u32>,
    /// Height of the tree (`max(depths)`).
    pub height: u32,
    /// Work counters.
    pub metrics: Metrics,
}

/// Exact `O(n²)` interval DP for the optimal alphabetic tree (Knuth's split
/// bounds), returning only the optimal cost.  Oracle for [`garsia_wachs`].
pub fn interval_dp_oat(weights: &[u64]) -> u64 {
    let n = weights.len();
    if n <= 1 {
        return 0;
    }
    let mut pre = vec![0u64; n + 1];
    for i in 0..n {
        pre[i + 1] = pre[i] + weights[i];
    }
    let wsum = |i: usize, j: usize| pre[j + 1] - pre[i];
    let mut d = vec![vec![0u64; n]; n];
    let mut root = vec![vec![0usize; n]; n];
    for i in 0..n {
        root[i][i] = i;
    }
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            // Knuth's quadrangle-inequality bounds: the optimal split is
            // monotone in both endpoints, root[i][j-1] <= root[i][j] <=
            // root[i+1][j], so the candidate range below is never empty.
            // (`hi.max(lo)` here would silently mask a violation of that
            // invariant; assert it instead.)
            let lo = root[i][j - 1];
            let hi = root[i + 1][j].min(j - 1);
            debug_assert!(
                lo <= hi,
                "Knuth split-monotonicity violated on [{i}, {j}]: lo {lo} > hi {hi}"
            );
            let mut best = u64::MAX;
            let mut best_k = lo;
            for k in lo..=hi {
                let c = d[i][k] + d[k + 1][j];
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            d[i][j] = best + wsum(i, j);
            root[i][j] = best_k;
        }
    }
    d[0][n - 1]
}

#[derive(Debug, Clone, Copy)]
struct GwItem {
    weight: u64,
    /// Encoded tree reference: leaves are `-(i+1)`, internal nodes their arena
    /// index.
    enc: isize,
}

/// The Garsia–Wachs algorithm, following the description in Appendix A.1 of
/// the paper: repeatedly pick the leftmost locally minimal pair
/// `(a_i, a_{i+1})` (its 2-sum is a local minimum among the 2-sums), combine
/// it into a new l-tree node `x`, remove the pair, and insert `x` before the
/// first later element `a_j >= x` (or at the end).  The l-tree's leaf levels
/// equal the OAT's leaf depths, so cost and height are read off directly.
///
/// The scan-and-reinsert steps are linear, so the worst case is quadratic;
/// typical inputs behave much better, and the interval DP oracle used for
/// validation is quadratic regardless.
pub fn garsia_wachs(weights: &[u64]) -> OatResult {
    let metrics = MetricsCollector::new();
    let n = weights.len();
    if n == 0 {
        return OatResult {
            cost: 0,
            depths: Vec::new(),
            height: 0,
            metrics: metrics.snapshot(),
        };
    }
    if n == 1 {
        return OatResult {
            cost: 0,
            depths: vec![0],
            height: 0,
            metrics: metrics.snapshot(),
        };
    }

    // Arena of internal nodes: children[x] = (left, right) encoded like `enc`.
    let mut children: Vec<(isize, isize)> = Vec::with_capacity(n - 1);
    let mut seq: Vec<GwItem> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| GwItem {
            weight: w,
            enc: -((i as isize) + 1),
        })
        .collect();

    let mut edges = 0u64;
    while seq.len() > 1 {
        // Leftmost locally minimal pair: the first index i whose 2-sum is
        // strictly smaller than its left neighbour's and no larger than its
        // right neighbour's (the leftmost global minimum always qualifies).
        let two_sum = |s: &Vec<GwItem>, i: usize| s[i].weight + s[i + 1].weight;
        let last = seq.len() - 2;
        let mut pick = last;
        for i in 0..=last {
            edges += 1;
            let left_ok = i == 0 || two_sum(&seq, i - 1) > two_sum(&seq, i);
            let right_ok = i == last || two_sum(&seq, i) <= two_sum(&seq, i + 1);
            if left_ok && right_ok {
                pick = i;
                break;
            }
        }
        let x = two_sum(&seq, pick);
        let node_idx = children.len() as isize;
        children.push((seq[pick].enc, seq[pick + 1].enc));
        seq.drain(pick..=pick + 1);
        // Insert before the first element at or after the removal point with
        // weight >= x; at the end if there is none.
        let mut q = pick;
        while q < seq.len() && seq[q].weight < x {
            edges += 1;
            q += 1;
        }
        seq.insert(
            q,
            GwItem {
                weight: x,
                enc: node_idx,
            },
        );
        metrics.add_states(1);
    }
    metrics.add_edges(edges);

    // The single remaining element is the l-tree root; compute leaf depths.
    let root = seq[0].enc;
    let mut depths = vec![0u32; n];
    // Iterative DFS over the arena.
    let mut stack = vec![(root, 0u32)];
    while let Some((enc, depth)) = stack.pop() {
        if enc < 0 {
            depths[(-enc - 1) as usize] = depth;
        } else {
            let (l, r) = children[enc as usize];
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
    }
    let cost = weights
        .iter()
        .zip(&depths)
        .map(|(&w, &d)| w * d as u64)
        .sum();
    let height = depths.iter().copied().max().unwrap_or(0);
    OatResult {
        cost,
        depths,
        height,
        metrics: metrics.snapshot(),
    }
}

/// Parallel OAT via the interval-DP cordon: diagonals of the Knuth table are
/// the cordon frontiers, processed through the shared phase-parallel driver
/// (`n - 1` rounds).  Produces the same cost as [`garsia_wachs`] and
/// [`interval_dp_oat`], plus the leaf depths reconstructed from the
/// split-point table.
pub fn parallel_oat(weights: &[u64]) -> OatResult {
    let metrics = MetricsCollector::new();
    let tables = run_phase_parallel(ObstCordon::new(weights), &metrics);
    let depths = tables.leaf_depths();
    let height = depths.iter().copied().max().unwrap_or(0);
    OatResult {
        cost: tables.cost(),
        depths,
        height,
        metrics: metrics.snapshot(),
    }
}

/// The height bound of Lemma 5.1: for positive integer weights bounded by
/// `max_weight`, the OAT height is `O(log(total weight / min weight))` —
/// concretely at most `3 · (log₂(total) - log₂(min)) + 3`, because the subtree
/// weight at least doubles every three levels up.
pub fn oat_height_bound(weights: &[u64]) -> u32 {
    let total: u64 = weights.iter().sum();
    let min = weights.iter().copied().min().unwrap_or(1).max(1);
    if total == 0 {
        return 0;
    }
    let ratio_log = (64 - (total / min).leading_zeros()).max(1);
    3 * ratio_log + 3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_weights(n: usize, seed: u64, max_w: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % max_w + 1
            })
            .collect()
    }

    /// Unrestricted O(n³) interval DP: every split point considered, no
    /// Knuth bounds.  Reference for the property test below.
    fn cubic_dp_oat(weights: &[u64]) -> u64 {
        let n = weights.len();
        if n <= 1 {
            return 0;
        }
        let mut pre = vec![0u64; n + 1];
        for i in 0..n {
            pre[i + 1] = pre[i] + weights[i];
        }
        let mut d = vec![vec![0u64; n]; n];
        for len in 2..=n {
            for i in 0..=(n - len) {
                let j = i + len - 1;
                d[i][j] =
                    (i..j).map(|k| d[i][k] + d[k + 1][j]).min().unwrap() + (pre[j + 1] - pre[i]);
            }
        }
        d[0][n - 1]
    }

    #[test]
    fn knuth_bounded_dp_matches_unrestricted_cubic_reference() {
        // Random profiles plus the shapes that stress split monotonicity:
        // plateaus of equal weights (tied splits), monotone ramps, and
        // valley/mountain profiles.
        for seed in 0..12 {
            for &n in &[2usize, 3, 5, 9, 17, 33, 64] {
                let w = pseudo_weights(n, seed, 8); // small range => many ties
                assert_eq!(interval_dp_oat(&w), cubic_dp_oat(&w), "weights {w:?}");
            }
        }
        for n in [2usize, 7, 30, 63] {
            let equal = vec![3u64; n];
            assert_eq!(interval_dp_oat(&equal), cubic_dp_oat(&equal));
            let ramp: Vec<u64> = (1..=n as u64).collect();
            assert_eq!(interval_dp_oat(&ramp), cubic_dp_oat(&ramp));
            let valley: Vec<u64> = (0..n).map(|i| (2 * i).abs_diff(n) as u64 + 1).collect();
            assert_eq!(
                interval_dp_oat(&valley),
                cubic_dp_oat(&valley),
                "{valley:?}"
            );
            let mountain: Vec<u64> = valley.iter().rev().copied().collect();
            assert_eq!(interval_dp_oat(&mountain), cubic_dp_oat(&mountain));
        }
    }

    #[test]
    fn matches_interval_dp_on_small_inputs() {
        for seed in 0..10 {
            for &n in &[1usize, 2, 3, 4, 5, 8, 13, 20, 40, 80] {
                let w = pseudo_weights(n, seed, 50);
                let gw = garsia_wachs(&w);
                let want = interval_dp_oat(&w);
                assert_eq!(gw.cost, want, "n {n} seed {seed} weights {w:?}");
                // Cost recomputed from the reported depths must agree too.
                let recomputed: u64 = w.iter().zip(&gw.depths).map(|(&a, &d)| a * d as u64).sum();
                assert_eq!(recomputed, gw.cost);
            }
        }
    }

    #[test]
    fn equal_weights_give_balanced_tree() {
        let w = vec![7u64; 16];
        let r = garsia_wachs(&w);
        assert_eq!(r.height, 4);
        assert!(r.depths.iter().all(|&d| d == 4));
        assert_eq!(r.cost, 7 * 4 * 16);
    }

    #[test]
    fn skewed_weights_give_skewed_tree() {
        // Exponentially growing weights: the optimal tree is a caterpillar.
        let w: Vec<u64> = (0..12).map(|i| 1u64 << i).collect();
        let r = garsia_wachs(&w);
        assert_eq!(r.cost, interval_dp_oat(&w));
        assert!(r.height >= 10, "height {} should be near n", r.height);
    }

    #[test]
    fn depths_satisfy_kraft_equality() {
        // Leaf depths of a full binary tree satisfy Σ 2^{-d} = 1.
        for seed in 0..5 {
            let w = pseudo_weights(33, seed, 1000);
            let r = garsia_wachs(&w);
            let kraft: f64 = r.depths.iter().map(|&d| 0.5f64.powi(d as i32)).sum();
            assert!((kraft - 1.0).abs() < 1e-9, "Kraft sum {kraft}");
        }
    }

    #[test]
    fn height_respects_lemma_5_1_bound() {
        for seed in 0..5 {
            for &max_w in &[1u64, 10, 1000, 1 << 20] {
                let w = pseudo_weights(500, seed, max_w);
                let r = garsia_wachs(&w);
                assert!(
                    r.height <= oat_height_bound(&w),
                    "height {} exceeds bound {} (max_w {max_w})",
                    r.height,
                    oat_height_bound(&w)
                );
            }
        }
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(garsia_wachs(&[]).cost, 0);
        let one = garsia_wachs(&[5]);
        assert_eq!(one.cost, 0);
        assert_eq!(one.depths, vec![0]);
        let two = garsia_wachs(&[3, 9]);
        assert_eq!(two.cost, 12);
        assert_eq!(two.depths, vec![1, 1]);
    }

    #[test]
    fn hand_checked_example() {
        // Weights 1,2,3: optimum ((1,2),3) with cost 9 (cf. the OBST crate).
        let r = garsia_wachs(&[1, 2, 3]);
        assert_eq!(r.cost, 9);
        assert_eq!(r.depths, vec![2, 2, 1]);
    }

    #[test]
    fn parallel_oat_matches_garsia_wachs_cost() {
        for seed in 0..6 {
            for &n in &[1usize, 2, 3, 7, 20, 60] {
                let w = pseudo_weights(n, seed, 200);
                let par = parallel_oat(&w);
                let gw = garsia_wachs(&w);
                assert_eq!(par.cost, gw.cost, "n {n} seed {seed}");
                // The reported depths must themselves attain the cost.
                let recomputed: u64 = w.iter().zip(&par.depths).map(|(&a, &d)| a * d as u64).sum();
                assert_eq!(recomputed, par.cost, "n {n} seed {seed}");
            }
        }
    }

    #[test]
    fn parallel_oat_runs_one_round_per_diagonal() {
        let w = pseudo_weights(40, 3, 1000);
        let r = parallel_oat(&w);
        assert_eq!(r.metrics.rounds, 39);
        assert_eq!(r.metrics.frontier_sizes.len(), 39);
        // Diagonal δ holds n - δ intervals.
        assert_eq!(r.metrics.frontier_sizes[0], 39);
        assert_eq!(*r.metrics.frontier_sizes.last().unwrap(), 1);
    }

    #[test]
    fn parallel_oat_depths_form_a_full_binary_tree() {
        let w = pseudo_weights(33, 8, 500);
        let r = parallel_oat(&w);
        let kraft: f64 = r.depths.iter().map(|&d| 0.5f64.powi(d as i32)).sum();
        assert!((kraft - 1.0).abs() < 1e-9, "Kraft sum {kraft}");
        assert_eq!(r.height, r.depths.iter().copied().max().unwrap());
    }

    #[test]
    fn parallel_oat_trivial_sizes() {
        assert_eq!(parallel_oat(&[]).cost, 0);
        let one = parallel_oat(&[5]);
        assert_eq!(one.cost, 0);
        assert_eq!(one.depths, vec![0]);
        assert_eq!(one.metrics.rounds, 0);
        let two = parallel_oat(&[3, 9]);
        assert_eq!(two.cost, 12);
        assert_eq!(two.depths, vec![1, 1]);
    }
}
