//! Parallel pack / filter (ParlayLib `pack`, `filter`).

use crate::par::SEQ_CUTOFF;
use rayon::prelude::*;

/// Keep the elements of `items` whose predicate holds, preserving order.
pub fn par_filter<T, P>(items: &[T], pred: P) -> Vec<T>
where
    T: Clone + Send + Sync,
    P: Fn(&T) -> bool + Sync,
{
    if items.len() < SEQ_CUTOFF {
        items.iter().filter(|x| pred(x)).cloned().collect()
    } else {
        items.par_iter().filter(|x| pred(x)).cloned().collect()
    }
}

/// Return the indices `i` (in increasing order) for which `flag(i)` holds.
///
/// This is the `pack_index` primitive the cordon algorithms use to turn a
/// boolean "is this state on the cordon?" array into a frontier list.
pub fn par_pack_index<P>(n: usize, flag: P) -> Vec<usize>
where
    P: Fn(usize) -> bool + Sync,
{
    if n < SEQ_CUTOFF {
        (0..n).filter(|&i| flag(i)).collect()
    } else {
        (0..n).into_par_iter().filter(|&i| flag(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_preserves_order_small() {
        let v: Vec<u32> = (0..100).collect();
        let got = par_filter(&v, |x| x % 7 == 0);
        let want: Vec<u32> = (0..100).filter(|x| x % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_preserves_order_large() {
        let v: Vec<u32> = (0..80_000).collect();
        let got = par_filter(&v, |x| x % 3 == 1);
        let want: Vec<u32> = (0..80_000).filter(|x| x % 3 == 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_index_matches_filter() {
        let flags: Vec<bool> = (0..50_000).map(|i| (i * 7919) % 11 == 0).collect();
        let got = par_pack_index(flags.len(), |i| flags[i]);
        let want: Vec<usize> = (0..flags.len()).filter(|&i| flags[i]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_index_empty_and_all() {
        assert!(par_pack_index(0, |_| true).is_empty());
        assert_eq!(par_pack_index(5, |_| true), vec![0, 1, 2, 3, 4]);
        assert!(par_pack_index(5, |_| false).is_empty());
    }
}
