//! Work / round instrumentation.
//!
//! The paper's central claims are about *work* (number of states and
//! transitions processed, Sec. 2.2) and *span* (number of cordon rounds times
//! a polylogarithmic factor).  On machines with few cores, wall-clock speedup
//! says little, so every algorithm in this workspace reports a [`Metrics`]
//! snapshot: how many states were relaxed, how many transitions (edges) were
//! evaluated, how many cordon rounds were executed, the size of every round's
//! frontier, and how many states were touched "wastefully" by prefix doubling.
//! The benchmark harness prints these next to the running times so the
//! work-efficiency claims can be checked directly against the sequential
//! baselines.
//!
//! Round accounting has a single source of truth: the phase-parallel driver
//! (`pardp_core::run_phase_parallel`) calls [`MetricsCollector::record_round`]
//! once per cordon round, which keeps `rounds`, `states_finalized` and
//! `frontier_sizes` consistent by construction for every parallel algorithm.
//! Sequential and naive baselines use the fine-grained `add_*` methods.

use std::sync::atomic::{fence, AtomicU64, Ordering};
// analyze: allow(raw-parallelism): the frontier log needs interior mutability
// behind `&self`; it is touched once per round by the driver, never inside
// parallel loops, so a Mutex here cannot serialize worker threads.
use std::sync::{Mutex, PoisonError};

/// Immutable snapshot of the counters collected during one algorithm run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Number of cordon rounds (phase-parallel iterations).  For sequential
    /// algorithms this is 0.
    pub rounds: u64,
    /// Number of states whose DP value was finalized.
    pub states_finalized: u64,
    /// Number of transition evaluations (calls to the cost/relax function).
    pub edges_relaxed: u64,
    /// Number of states inspected by prefix doubling that turned out not to be
    /// ready in that round (the "wasted" work the paper amortizes).
    pub wasted_states: u64,
    /// Number of binary-search probes performed in best-decision structures.
    pub probes: u64,
    /// Size of each cordon round's frontier, in execution order.  Populated by
    /// the phase-parallel driver; empty for sequential algorithms.
    pub frontier_sizes: Vec<u64>,
}

impl Metrics {
    /// Total "work proxy": edges relaxed plus probes.  Useful for comparing a
    /// parallel algorithm against its sequential counterpart irrespective of
    /// clock noise.
    pub fn work_proxy(&self) -> u64 {
        self.edges_relaxed + self.probes
    }

    /// Largest frontier over all rounds (0 when no rounds ran).
    pub fn max_frontier(&self) -> u64 {
        self.frontier_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Mean frontier size over all rounds (0.0 when no rounds ran).
    pub fn mean_frontier(&self) -> f64 {
        if self.frontier_sizes.is_empty() {
            0.0
        } else {
            self.frontier_sizes.iter().sum::<u64>() as f64 / self.frontier_sizes.len() as f64
        }
    }

    /// Nearest-rank percentile of the per-round frontier sizes (`p` in
    /// `0.0..=100.0`; 0 when no rounds ran).  `frontier_percentile(50.0)` is
    /// the median round width, `frontier_percentile(100.0) == max_frontier()`
    /// — the frontier-shape summary the benchmark harness prints.
    pub fn frontier_percentile(&self, p: f64) -> u64 {
        self.frontier_percentiles(&[p])[0]
    }

    /// Nearest-rank percentiles for several `p` values at once, sorting the
    /// frontier log a single time (0 for every entry when no rounds ran).
    pub fn frontier_percentiles(&self, ps: &[f64]) -> Vec<u64> {
        if self.frontier_sizes.is_empty() {
            return vec![0; ps.len()];
        }
        let mut sorted = self.frontier_sizes.clone();
        sorted.sort_unstable();
        ps.iter()
            .map(|p| {
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.clamp(1, sorted.len()) - 1]
            })
            .collect()
    }
}

/// Thread-safe collector used while an algorithm runs.
///
/// The scalar counters are relaxed atomics: they are statistics, not
/// synchronization.  The per-round frontier log is mutex-guarded, but it is
/// only touched once per round (by the driver), never inside parallel loops.
///
/// # Snapshot consistency
///
/// The counters are independent atomics, so a [`MetricsCollector::snapshot`]
/// taken while updates are in flight can observe a *torn* mix — e.g. a round
/// counted in `rounds` whose frontier has not been pushed yet.  Two regimes:
///
/// * **Round-grained updates** ([`MetricsCollector::record_round`], the
///   phase-parallel driver's path): `record_round` brackets its three updates
///   with a `round_epoch` seqlock, and `snapshot` retries until it reads a
///   stable even epoch.  A snapshot therefore always sits on a round boundary:
///   `rounds == frontier_sizes.len()` and `states_finalized` equals the sum of
///   the frontier log (when only `record_round` is used).
/// * **Fine-grained updates** (the `add_*` methods used by sequential
///   baselines): individually atomic but not mutually consistent; a concurrent
///   snapshot may see some of a batch of related `add_*` calls and not others.
///   Callers that need exact totals must snapshot after the run quiesces —
///   which is what every harness in this workspace does.
///
/// `record_round` assumes a single writer (the driver); concurrent
/// `record_round` calls would interleave epoch brackets and could livelock a
/// snapshotter. The `add_*` methods are safe from any number of threads.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    rounds: AtomicU64,
    states_finalized: AtomicU64,
    edges_relaxed: AtomicU64,
    wasted_states: AtomicU64,
    probes: AtomicU64,
    /// Seqlock epoch for round-grained consistency: odd while `record_round`
    /// is mid-update, even and stable otherwise.
    round_epoch: AtomicU64,
    // analyze: allow(raw-parallelism): see the module-level import note — the
    // per-round log is driver-only, outside the parallel hot path.
    frontier_sizes: Mutex<Vec<u64>>,
}

impl MetricsCollector {
    /// Create a collector with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one cordon round that finalized `frontier` states.  This is the
    /// driver's entry point: it advances `rounds`, `states_finalized` and the
    /// frontier log together so they cannot drift apart.
    ///
    /// Single-writer: only the phase-parallel driver calls this, once per
    /// round (see the type-level snapshot-consistency notes).
    #[inline]
    pub fn record_round(&self, frontier: u64) {
        // ordering: Release — entering the odd (mid-update) epoch state must
        // be visible to a snapshotter before any of the updates below are.
        self.round_epoch.fetch_add(1, Ordering::Release);
        // ordering: Relaxed — statistics; the epoch bracket (not these RMWs)
        // provides the cross-counter consistency.
        self.rounds.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same as above.
        self.states_finalized.fetch_add(frontier, Ordering::Relaxed);
        self.frontier_sizes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(frontier);
        // ordering: Release publishes the three updates above before the
        // even (stable) epoch value a snapshotter's Acquire load observes.
        self.round_epoch.fetch_add(1, Ordering::Release);
    }

    /// Pre-size the frontier log for `rounds` upcoming rounds so that
    /// [`MetricsCollector::record_round`] performs no allocation on the hot
    /// path.  The phase-parallel driver calls this with the instance's round
    /// budget before the first round; the reservation is capped at one
    /// million entries (8 MB) to keep pathological budgets harmless.
    pub fn reserve_rounds(&self, rounds: usize) {
        const RESERVE_CAP: usize = 1 << 20;
        let mut log = self
            .frontier_sizes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let want = rounds.min(RESERVE_CAP);
        let have = log.capacity() - log.len();
        if want > have {
            log.reserve(want - have);
        }
    }

    /// Record one cordon round without frontier bookkeeping (sequential and
    /// naive baselines that only track a round count).
    #[inline]
    pub fn add_round(&self) {
        // ordering: Relaxed — lone statistic with no cross-counter invariant;
        // totals are read after the run quiesces (see the snapshot notes).
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` finalized states.
    #[inline]
    pub fn add_states(&self, n: u64) {
        // ordering: Relaxed — same as `add_round`.
        self.states_finalized.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` evaluated transitions.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        // ordering: Relaxed — same as `add_round`.
        self.edges_relaxed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` states visited by prefix doubling that were not finalized in
    /// that round.
    #[inline]
    pub fn add_wasted(&self, n: u64) {
        // ordering: Relaxed — same as `add_round`.
        self.wasted_states.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` binary-search probes.
    #[inline]
    pub fn add_probes(&self, n: u64) {
        // ordering: Relaxed — same as `add_round`.
        self.probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the current counter values.
    ///
    /// Retries while a [`MetricsCollector::record_round`] is mid-update, so
    /// the returned [`Metrics`] always sits on a round boundary with respect
    /// to the driver's round-grained accounting.  Concurrent `add_*` updates
    /// are individually atomic but not mutually consistent — see the
    /// type-level snapshot-consistency notes.
    pub fn snapshot(&self) -> Metrics {
        loop {
            // ordering: Acquire pairs with `record_round`'s closing Release —
            // an even epoch observed here means that round's updates are
            // visible to the loads below.
            let before = self.round_epoch.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = Metrics {
                // ordering: Relaxed (all five loads) — the epoch bracket,
                // not the individual loads, carries the consistency.
                rounds: self.rounds.load(Ordering::Relaxed),
                states_finalized: self.states_finalized.load(Ordering::Relaxed), // ordering: as above
                edges_relaxed: self.edges_relaxed.load(Ordering::Relaxed), // ordering: as above
                wasted_states: self.wasted_states.load(Ordering::Relaxed), // ordering: as above
                probes: self.probes.load(Ordering::Relaxed),               // ordering: as above
                frontier_sizes: self
                    .frontier_sizes
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            };
            // ordering: Acquire fence orders the counter loads above before
            // the epoch re-read below (classic seqlock reader exit).
            fence(Ordering::Acquire);
            // ordering: Relaxed — the fence above already orders this load.
            if self.round_epoch.load(Ordering::Relaxed) == before {
                return snap;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let c = MetricsCollector::new();
        c.add_round();
        c.add_round();
        c.add_states(10);
        c.add_edges(5);
        c.add_edges(7);
        c.add_wasted(3);
        c.add_probes(11);
        let m = c.snapshot();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.states_finalized, 10);
        assert_eq!(m.edges_relaxed, 12);
        assert_eq!(m.wasted_states, 3);
        assert_eq!(m.probes, 11);
        assert_eq!(m.work_proxy(), 23);
        assert!(m.frontier_sizes.is_empty(), "add_round logs no frontier");
    }

    #[test]
    fn record_round_keeps_round_accounting_consistent() {
        let c = MetricsCollector::new();
        c.record_round(3);
        c.record_round(5);
        c.record_round(1);
        let m = c.snapshot();
        assert_eq!(m.rounds, 3);
        assert_eq!(m.states_finalized, 9);
        assert_eq!(m.frontier_sizes, vec![3, 5, 1]);
        assert_eq!(m.max_frontier(), 5);
        assert!((m.mean_frontier() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn default_snapshot_is_zero() {
        let c = MetricsCollector::new();
        assert_eq!(c.snapshot(), Metrics::default());
        assert_eq!(c.snapshot().max_frontier(), 0);
        assert_eq!(c.snapshot().mean_frontier(), 0.0);
        assert_eq!(c.snapshot().frontier_percentile(50.0), 0);
    }

    #[test]
    fn frontier_percentiles_use_nearest_rank() {
        let m = Metrics {
            frontier_sizes: vec![5, 1, 9, 3, 7],
            ..Metrics::default()
        };
        assert_eq!(m.frontier_percentile(0.0), 1);
        assert_eq!(m.frontier_percentile(20.0), 1);
        assert_eq!(m.frontier_percentile(50.0), 5);
        assert_eq!(m.frontier_percentile(90.0), 9);
        assert_eq!(m.frontier_percentile(100.0), m.max_frontier());
        // The batched form sorts once and agrees entry-wise.
        assert_eq!(m.frontier_percentiles(&[20.0, 50.0, 90.0]), vec![1, 5, 9]);
        assert_eq!(
            Metrics::default().frontier_percentiles(&[50.0, 99.0]),
            vec![0, 0]
        );
    }

    #[test]
    fn snapshot_lands_on_round_boundaries() {
        // One driver thread records rounds while snapshotters race it: every
        // snapshot must sit on a round boundary — never a torn state where a
        // round was counted but its frontier not yet logged (or vice versa).
        let c = Arc::new(MetricsCollector::new());
        rayon::scope(|s| {
            let writer = Arc::clone(&c);
            s.spawn(move |_| {
                for i in 0..2000u64 {
                    writer.record_round(i % 7);
                }
            });
            for _ in 0..4 {
                let reader = Arc::clone(&c);
                s.spawn(move |_| {
                    for _ in 0..500 {
                        let m = reader.snapshot();
                        assert_eq!(m.rounds as usize, m.frontier_sizes.len());
                        assert_eq!(m.states_finalized, m.frontier_sizes.iter().sum::<u64>());
                    }
                });
            }
        });
        let m = c.snapshot();
        assert_eq!(m.rounds, 2000);
        assert_eq!(m.frontier_sizes.len(), 2000);
        assert_eq!(m.states_finalized, (0..2000u64).map(|i| i % 7).sum());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = Arc::new(MetricsCollector::new());
        rayon::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move |_| {
                    for _ in 0..1000 {
                        c.add_edges(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().edges_relaxed, 8000);
    }
}
