//! Parallel sorting.
//!
//! The sparse-LCS construction (Sec. 3) sorts the `L` matching pairs by
//! `(column asc, row desc)`, and the OAT valley decomposition (Appendix A)
//! sorts reinserted roots; both are handled by this stable parallel
//! merge sort, which degrades to `slice::sort_by_key` below the cutoff.

use crate::par::{maybe_join, SEQ_CUTOFF};

/// Stable parallel sort of `items` by the key extracted with `key`.
///
/// Allocates a fresh scratch buffer above the cutoff; callers that sort
/// repeatedly should hold a scratch `Vec` and use [`par_sort_by_key_with`]
/// instead, which reuses it across calls (arena-style, like the engine's
/// `FrontierArena`).
pub fn par_sort_by_key<T, K, F>(items: &mut [T], key: F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let mut scratch = Vec::new();
    par_sort_by_key_with(items, &mut scratch, key);
}

/// Stable parallel sort of `items` by `key`, merging through the reusable
/// `scratch` buffer.
///
/// The merge writes every scratch slot before reading it, so the buffer's
/// existing contents are irrelevant; it only needs to hold `items.len()`
/// initialized values.  On the first call (or the first call at a new
/// high-water length) the deficit is seeded by cloning from `items`; every
/// later call at or below that length performs **zero** heap allocation and
/// zero seeding clones, which is what keeps steady-state cordon rounds
/// allocation-free (`tests/alloc_counting.rs`).
pub fn par_sort_by_key_with<T, K, F>(items: &mut [T], scratch: &mut Vec<T>, key: F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = items.len();
    if n < SEQ_CUTOFF {
        items.sort_by_key(|x| key(x));
        return;
    }
    if scratch.len() < n {
        scratch.clear();
        scratch.extend_from_slice(items);
    }
    merge_sort(items, &mut scratch[..n], &key);
}

fn merge_sort<T, K, F>(data: &mut [T], buf: &mut [T], key: &F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n < SEQ_CUTOFF {
        data.sort_by_key(|x| key(x));
        return;
    }
    let mid = n / 2;
    {
        let (dl, dr) = data.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        maybe_join(n, || merge_sort(dl, bl, key), || merge_sort(dr, br, key));
    }
    // Merge data[..mid] and data[mid..] into buf, then copy back.
    {
        let (left, right) = data.split_at(mid);
        merge_into(left, right, buf, key);
    }
    data.clone_from_slice(buf);
}

fn merge_into<T, K, F>(left: &[T], right: &[T], out: &mut [T], key: &F)
where
    T: Clone,
    K: Ord,
    F: Fn(&T) -> K,
{
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        // `<=` keeps the sort stable.
        if key(&left[i]) <= key(&right[j]) {
            out[k] = left[i].clone();
            i += 1;
        } else {
            out[k] = right[j].clone();
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        out[k] = left[i].clone();
        i += 1;
        k += 1;
    }
    while j < right.len() {
        out[k] = right[j].clone();
        j += 1;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small_slice() {
        let mut v = vec![5u32, 1, 4, 1, 3];
        par_sort_by_key(&mut v, |x| *x);
        assert_eq!(v, vec![1, 1, 3, 4, 5]);
    }

    #[test]
    fn sorts_large_slice_matches_std() {
        let mut v: Vec<u64> = (0..100_000).map(|i| (i * 2654435761) % 1_000_003).collect();
        let mut want = v.clone();
        want.sort_unstable();
        par_sort_by_key(&mut v, |x| *x);
        assert_eq!(v, want);
    }

    #[test]
    fn sort_is_stable() {
        // Pairs sorted by first component only; second component records the
        // original order and must stay sorted within equal keys.
        let mut v: Vec<(u32, usize)> = (0..50_000).map(|i| ((i % 10) as u32, i)).collect();
        par_sort_by_key(&mut v, |p| p.0);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn sort_empty_and_singleton() {
        let mut e: Vec<u8> = vec![];
        par_sort_by_key(&mut e, |x| *x);
        assert!(e.is_empty());
        let mut s = vec![9u8];
        par_sort_by_key(&mut s, |x| *x);
        assert_eq!(s, vec![9]);
    }

    #[test]
    fn sort_reverse_input() {
        let mut v: Vec<u32> = (0..30_000).rev().collect();
        par_sort_by_key(&mut v, |x| *x);
        let want: Vec<u32> = (0..30_000).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn sort_with_reuses_the_scratch_buffer() {
        let mut scratch: Vec<u64> = Vec::new();
        let mut v: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 999_983).collect();
        par_sort_by_key_with(&mut v, &mut scratch, |x| *x);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        // The scratch was grown once; later calls at the same (or smaller)
        // length must reuse the very same allocation.
        let cap = scratch.capacity();
        let ptr = scratch.as_ptr();
        for round in 0..3u64 {
            let mut w: Vec<u64> = (0..50_000u64)
                .map(|i| i.wrapping_mul(11400714819323198485).wrapping_add(round) % 999_983)
                .collect();
            let mut want = w.clone();
            want.sort_unstable();
            par_sort_by_key_with(&mut w, &mut scratch, |x| *x);
            assert_eq!(w, want);
            assert_eq!(scratch.capacity(), cap, "scratch must not reallocate");
            assert_eq!(scratch.as_ptr(), ptr, "scratch must not move");
        }
        // Smaller inputs also reuse the same buffer.
        let mut small: Vec<u64> = (0..10_000).rev().collect();
        par_sort_by_key_with(&mut small, &mut scratch, |x| *x);
        assert!(small.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(scratch.as_ptr(), ptr);
    }

    #[test]
    fn sort_with_is_stable_and_matches_plain_sort() {
        let mut scratch: Vec<(u32, usize)> = Vec::new();
        let mut v: Vec<(u32, usize)> = (0..40_000).map(|i| ((i % 7) as u32, i)).collect();
        par_sort_by_key_with(&mut v, &mut scratch, |p| p.0);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }
}
