//! Parallel scans (prefix sums / prefix minima).
//!
//! The cordon constructions for LIS, LCS and GAP all reduce "which states are
//! on the cordon" to a *prefix-minimum* computation (Sec. 3 and Sec. 5.2 of
//! the paper), so an efficient parallel scan is a first-class substrate here.
//! The implementation is the textbook two-pass blocked scan: per-block
//! reductions, a (small) sequential scan over the block summaries, then a
//! parallel sweep that re-traverses each block with its carried prefix.

use crate::par::SEQ_CUTOFF;
use rayon::prelude::*;

/// Block size used by the two-pass scan.
const SCAN_BLOCK: usize = 4096;

/// Inclusive scan: `out[i] = op(id, items[0], ..., items[i])`.
pub fn par_scan_inclusive<T, Op>(items: &[T], id: T, op: Op) -> Vec<T>
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync + Send,
{
    scan_impl(items, id, op, true)
}

/// Exclusive scan: `out[i] = op(id, items[0], ..., items[i-1])`, `out[0] = id`.
pub fn par_scan_exclusive<T, Op>(items: &[T], id: T, op: Op) -> Vec<T>
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync + Send,
{
    scan_impl(items, id, op, false)
}

/// Inclusive prefix minimum: `out[i] = min(items[0..=i])`.
pub fn par_prefix_min_inclusive<T: Ord + Copy + Send + Sync>(items: &[T]) -> Vec<T> {
    if items.is_empty() {
        return Vec::new();
    }
    let id = items[0];
    par_scan_inclusive(items, id, |a, b| a.min(b))
}

fn scan_impl<T, Op>(items: &[T], id: T, op: Op, inclusive: bool) -> Vec<T>
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync + Send,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n < SEQ_CUTOFF {
        let mut out = Vec::with_capacity(n);
        let mut acc = id;
        for &x in items {
            if inclusive {
                acc = op(acc, x);
                out.push(acc);
            } else {
                out.push(acc);
                acc = op(acc, x);
            }
        }
        return out;
    }

    // Pass 1: per-block reductions.
    let block_sums: Vec<T> = items
        .par_chunks(SCAN_BLOCK)
        .map(|chunk| chunk.iter().fold(id, |acc, &x| op(acc, x)))
        .collect();

    // Sequential scan over the (short) block summary array.
    let mut block_prefix = Vec::with_capacity(block_sums.len());
    let mut acc = id;
    for &s in &block_sums {
        block_prefix.push(acc);
        acc = op(acc, s);
    }

    // Pass 2: sweep each block with its carried prefix.
    let mut out = vec![id; n];
    out.par_chunks_mut(SCAN_BLOCK)
        .zip(items.par_chunks(SCAN_BLOCK))
        .zip(block_prefix.par_iter())
        .for_each(|((out_chunk, in_chunk), &carry)| {
            let mut acc = carry;
            for (o, &x) in out_chunk.iter_mut().zip(in_chunk.iter()) {
                if inclusive {
                    acc = op(acc, x);
                    *o = acc;
                } else {
                    *o = acc;
                    acc = op(acc, x);
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_inclusive(items: &[u64]) -> Vec<u64> {
        let mut acc = 0;
        items
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }

    #[test]
    fn inclusive_sum_small() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(par_scan_inclusive(&v, 0, |a, b| a + b), seq_inclusive(&v));
    }

    #[test]
    fn inclusive_sum_large() {
        let v: Vec<u64> = (0..50_000).map(|i| (i * 31) % 97).collect();
        assert_eq!(par_scan_inclusive(&v, 0, |a, b| a + b), seq_inclusive(&v));
    }

    #[test]
    fn exclusive_sum_matches_shifted_inclusive() {
        let v: Vec<u64> = (0..30_000).map(|i| i % 13).collect();
        let inc = par_scan_inclusive(&v, 0, |a, b| a + b);
        let exc = par_scan_exclusive(&v, 0, |a, b| a + b);
        assert_eq!(exc[0], 0);
        for i in 1..v.len() {
            assert_eq!(exc[i], inc[i - 1]);
        }
    }

    #[test]
    fn prefix_min_matches_sequential() {
        let v: Vec<i64> = (0..40_000)
            .map(|i| ((i as i64 * 48271) % 10007) - 5000)
            .collect();
        let got = par_prefix_min_inclusive(&v);
        let mut acc = i64::MAX;
        for (i, &x) in v.iter().enumerate() {
            acc = acc.min(x);
            assert_eq!(got[i], acc);
        }
    }

    #[test]
    fn empty_scans() {
        let v: Vec<u64> = vec![];
        assert!(par_scan_inclusive(&v, 0, |a, b| a + b).is_empty());
        assert!(par_scan_exclusive(&v, 0, |a, b| a + b).is_empty());
        assert!(par_prefix_min_inclusive(&v).is_empty());
    }

    #[test]
    fn singleton_scan() {
        let v = vec![42u64];
        assert_eq!(par_scan_inclusive(&v, 0, |a, b| a + b), vec![42]);
        assert_eq!(par_scan_exclusive(&v, 0, |a, b| a + b), vec![0]);
    }
}
