//! Frontier-tuned grain-size policy.
//!
//! The cordon algorithms process one frontier per round, and frontier sizes
//! swing over orders of magnitude within a single run (the staircase problems
//! start wide and collapse; the interval DPs ramp up and down).  A fixed
//! fork-join grain is wrong at both ends: tiny frontiers should never pay a
//! pool round-trip, and huge frontiers should split into enough grains that
//! work stealing can balance them.  [`GrainPolicy`] closes the loop using the
//! same per-round telemetry that [`crate::Metrics::frontier_sizes`] and
//! [`crate::Metrics::frontier_percentile`] expose after a run: the driver
//! `observe`s each frontier as it executes and installs the policy's current
//! hint for the duration of the round; round code asks [`round_min_grain`]
//! for the `with_min_len` value of its hot parallel loops.
//!
//! The policy produces a *minimum grain length*:
//!
//! * below [`SEQ_CUTOFF`] states the whole loop stays sequential on the
//!   calling thread (the ParlayLib granularity-control idiom; the rayon shim
//!   executes a single grain inline with no pool traffic),
//! * above it, the grain targets `len / (threads × grains_per_thread)` where
//!   `grains_per_thread` adapts to the observed frontier *spread*: stable
//!   frontiers fork coarse (2 grains per thread — less scheduling overhead),
//!   bursty ones fork fine (8 grains per thread — better steal balance).

use crate::par::SEQ_CUTOFF;
use std::cell::Cell;
use std::collections::VecDeque;

/// Rounds of frontier history the policy keeps.
const WINDOW: usize = 32;

/// Frontier size spread (max/min over the window) above which the policy
/// switches to fine-grained splitting.
const BURSTY_SPREAD: u64 = 8;

/// Grains per thread for stable, uniform frontiers.
const GRAINS_COARSE: usize = 2;

/// Default grains per thread with little or no history.
const GRAINS_DEFAULT: usize = 4;

/// Grains per thread for bursty frontiers.
const GRAINS_FINE: usize = 8;

/// A snapshot of the policy's current decision parameters; cheap to copy into
/// the thread-local slot consulted by [`round_min_grain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrainHint {
    /// Loops shorter than this run sequentially.
    pub seq_below: usize,
    /// Target grain count per worker thread for longer loops.
    pub grains_per_thread: usize,
}

impl Default for GrainHint {
    fn default() -> Self {
        GrainHint {
            seq_below: SEQ_CUTOFF,
            grains_per_thread: GRAINS_DEFAULT,
        }
    }
}

/// Worker threads that can actually run simultaneously: the configured pool
/// size capped by the machine's available parallelism.  Splitting a loop into
/// more grains than the hardware can run concurrently buys no steal balance
/// and pays real scheduling cost — oversubscribed workers only add context
/// switches on the critical path.
fn effective_parallelism() -> usize {
    // Cached: `available_parallelism()` probes cgroup files on Linux, which
    // allocates — the sub-cutoff fast path must stay allocation-free.
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let hw = *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    rayon::current_num_threads().max(1).min(hw)
}

impl GrainHint {
    /// The `with_min_len` value for a parallel loop over `len` items.
    pub fn min_grain(&self, len: usize) -> usize {
        self.min_grain_for(len, effective_parallelism())
    }

    /// [`GrainHint::min_grain`] with an explicit simultaneous-thread count
    /// (exposed so the policy math is testable on any host).  With a single
    /// effective thread every loop stays inline — forking on a machine that
    /// can only run one grain at a time is pure overhead, whatever the
    /// configured pool size.
    pub fn min_grain_for(&self, len: usize, threads: usize) -> usize {
        if len < self.seq_below || threads <= 1 {
            // One grain: the shim runs the loop inline on the calling thread.
            return len.max(1);
        }
        let target = len.div_ceil((threads * self.grains_per_thread).max(1));
        // Never fork below a quarter cutoff of work per grain.
        target.max(SEQ_CUTOFF / 4).max(1)
    }

    /// Number of speculative blocks for a round over `items` coarse work units
    /// (e.g. DP *rows*, where each item is itself a loop — unlike
    /// [`GrainHint::min_grain`], whose `len` counts constant-cost states).
    /// Capped by the cached `available_parallelism()` exactly like
    /// `min_grain`: a single effective thread always gets one block, so
    /// single-core hosts take the pure sequential path with zero pool traffic.
    pub fn block_count(&self, items: usize, min_block: usize) -> usize {
        self.block_count_for(items, min_block, effective_parallelism())
    }

    /// [`GrainHint::block_count`] with an explicit simultaneous-thread count
    /// (testable on any host).  Never returns more blocks than threads that
    /// can actually run them, and never splits below `min_block` items per
    /// block (a too-small block pays more cross-block fix-up than its
    /// speculation saves).
    pub fn block_count_for(&self, items: usize, min_block: usize, threads: usize) -> usize {
        if threads <= 1 || items < 2 * min_block.max(1) {
            return 1;
        }
        (items / min_block.max(1)).min(threads).max(1)
    }
}

/// Auto-tuning grain policy fed by per-round frontier telemetry.
#[derive(Debug, Default)]
pub struct GrainPolicy {
    recent: VecDeque<u64>,
}

impl GrainPolicy {
    /// Policy with no history (uses [`GrainHint::default`] parameters).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed the window from a finished run's telemetry — the ablation path:
    /// re-running an instance with the frontier shape already known starts
    /// with the tuned grain from round one.
    pub fn from_metrics(metrics: &crate::Metrics) -> Self {
        let mut policy = Self::new();
        let tail = metrics.frontier_sizes.len().saturating_sub(WINDOW);
        for &f in &metrics.frontier_sizes[tail..] {
            policy.observe(f);
        }
        policy
    }

    /// Record the frontier size of a completed round.
    pub fn observe(&mut self, frontier: u64) {
        if self.recent.len() == WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(frontier);
    }

    /// Nearest-rank percentile of the recorded window (0 with no history).
    pub fn window_percentile(&self, p: f64) -> u64 {
        if self.recent.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = self.recent.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Current decision parameters derived from the window.
    pub fn hint(&self) -> GrainHint {
        if self.recent.len() < 4 {
            return GrainHint::default();
        }
        let lo = self.window_percentile(10.0).max(1);
        let hi = self.window_percentile(90.0).max(1);
        let grains_per_thread = if hi / lo >= BURSTY_SPREAD {
            GRAINS_FINE
        } else {
            GRAINS_COARSE
        };
        GrainHint {
            seq_below: SEQ_CUTOFF,
            grains_per_thread,
        }
    }

    /// The `with_min_len` value for a loop over `len` items under the current
    /// hint (see [`GrainHint::min_grain`]).
    pub fn min_grain(&self, len: usize) -> usize {
        self.hint().min_grain(len)
    }
}

thread_local! {
    /// Hint installed by the phase-parallel driver for the current round.
    static ACTIVE_HINT: Cell<Option<GrainHint>> = const { Cell::new(None) };
}

/// Install `policy`'s current hint for the duration of `f` on this thread.
///
/// The phase-parallel driver wraps each `round()` call in this so that round
/// code — which runs on the driver thread and only *forks* onto the pool —
/// sees the tuned parameters through [`round_min_grain`].
pub fn with_grain_policy<R>(policy: &GrainPolicy, f: impl FnOnce() -> R) -> R {
    let previous = ACTIVE_HINT.with(|c| c.replace(Some(policy.hint())));
    struct Restore(Option<GrainHint>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE_HINT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The [`GrainHint`] active in the current round: the driver-installed
/// [`GrainPolicy`] hint when one is active, the default parameters otherwise.
pub fn round_hint() -> GrainHint {
    ACTIVE_HINT.with(Cell::get).unwrap_or_default()
}

/// The `with_min_len` hint for a parallel loop over `len` items in the
/// current round (see [`round_hint`]).
pub fn round_min_grain(len: usize) -> usize {
    round_hint().min_grain(len)
}

/// The speculative block count for a round over `items` coarse work units in
/// the current round (see [`GrainHint::block_count`]).
pub fn round_block_count(items: usize, min_block: usize) -> usize {
    round_hint().block_count(items, min_block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_frontiers_stay_sequential() {
        let policy = GrainPolicy::new();
        for len in [0, 1, 10, SEQ_CUTOFF - 1] {
            assert_eq!(policy.min_grain(len), len.max(1), "len {len}");
        }
    }

    #[test]
    fn large_frontiers_split_proportionally_to_threads() {
        let hint = GrainHint::default();
        let len = 1 << 20;
        for threads in [2usize, 4, 8] {
            let grain = hint.min_grain_for(len, threads);
            assert!(grain >= SEQ_CUTOFF / 4);
            assert!(grain < len, "a large loop must fork at {threads} threads");
            // Default hint: ~4 grains per thread.
            assert_eq!(grain, len.div_ceil(threads * GRAINS_DEFAULT));
        }
    }

    #[test]
    fn single_effective_thread_never_forks() {
        // On one simultaneously-runnable thread (a single-core host, or a
        // pool of one worker), every loop must stay inline no matter how
        // large: grains beyond the hardware only add context switches.
        let hint = GrainHint::default();
        let len = 1 << 20;
        assert_eq!(hint.min_grain_for(len, 1), len);
        assert_eq!(hint.min_grain_for(len, 0), len);
    }

    #[test]
    fn block_count_is_capped_by_threads_and_floored_by_min_block() {
        let hint = GrainHint::default();
        // A single effective thread never speculates: the caller must take
        // its sequential path with zero pool traffic.
        assert_eq!(hint.block_count_for(1 << 20, 64, 1), 1);
        assert_eq!(hint.block_count_for(1 << 20, 64, 0), 1);
        // Too few items to fill two blocks: stay sequential.
        assert_eq!(hint.block_count_for(127, 64, 8), 1);
        // Plenty of items: one block per thread, never more.
        assert_eq!(hint.block_count_for(1_000, 64, 8), 8);
        assert_eq!(hint.block_count_for(1 << 20, 64, 8), 8);
        // Item-bound regime: blocks never shrink below min_block items.
        assert_eq!(hint.block_count_for(130, 64, 8), 2);
        assert_eq!(hint.block_count_for(192, 64, 8), 3);
        // Degenerate min_block is clamped instead of dividing by zero.
        assert_eq!(hint.block_count_for(16, 0, 8), 8);
    }

    #[test]
    fn stable_window_forks_coarser_than_bursty_window() {
        let mut stable = GrainPolicy::new();
        for _ in 0..WINDOW {
            stable.observe(50_000);
        }
        let mut bursty = GrainPolicy::new();
        for i in 0..WINDOW {
            bursty.observe(if i % 2 == 0 { 100 } else { 100_000 });
        }
        assert_eq!(stable.hint().grains_per_thread, GRAINS_COARSE);
        assert_eq!(bursty.hint().grains_per_thread, GRAINS_FINE);
        let len = 1 << 20;
        assert!(stable.hint().min_grain_for(len, 8) > bursty.hint().min_grain_for(len, 8));
    }

    #[test]
    fn from_metrics_seeds_the_window() {
        let metrics = crate::Metrics {
            frontier_sizes: (0..100u64)
                .map(|i| if i % 2 == 0 { 10 } else { 1_000_000 })
                .collect(),
            ..crate::Metrics::default()
        };
        let policy = GrainPolicy::from_metrics(&metrics);
        assert_eq!(policy.hint().grains_per_thread, GRAINS_FINE);
    }

    #[test]
    fn thread_local_install_and_restore() {
        let mut policy = GrainPolicy::new();
        for _ in 0..WINDOW {
            policy.observe(1_000_000);
        }
        let outside = round_hint();
        let inside = with_grain_policy(&policy, round_hint);
        // Stable window -> coarser grains than the default hint.
        assert_eq!(outside.grains_per_thread, GRAINS_DEFAULT);
        assert_eq!(inside.grains_per_thread, GRAINS_COARSE);
        // Restored after the closure.
        assert_eq!(round_hint(), outside);
    }

    #[test]
    fn window_is_bounded() {
        let mut policy = GrainPolicy::new();
        for i in 0..(WINDOW as u64 * 4) {
            policy.observe(i);
        }
        assert_eq!(policy.recent.len(), WINDOW);
    }
}
