//! Granularity-controlled fork–join helpers.
//!
//! All parallel algorithms in this workspace follow the same discipline: below
//! [`SEQ_CUTOFF`] elements the sequential code path is used directly, so the
//! asymptotic parallel structure never costs more than a small constant factor
//! over the sequential baselines on small inputs (this is the usual ParlayLib
//! granularity-control idiom the paper's implementation relies on).

use rayon::prelude::*;

/// Problem size below which parallel helpers fall back to sequential code.
///
/// The value is deliberately conservative: a rayon task spawn costs on the
/// order of a microsecond, so batches of a few thousand cheap operations are
/// the smallest unit worth forking for.
pub const SEQ_CUTOFF: usize = 2048;

/// Run two closures, in parallel when `size` is at least [`SEQ_CUTOFF`],
/// sequentially otherwise.
///
/// This mirrors `parlay::par_do_if` and keeps recursive divide-and-conquer
/// algorithms work-efficient near the leaves.
#[inline]
pub fn maybe_join<A, B, RA, RB>(size: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if size >= SEQ_CUTOFF {
        rayon::join(a, b)
    } else {
        (a(), b())
    }
}

/// Map `f` over `0..n` in parallel, producing a `Vec` of the results.
///
/// Equivalent to ParlayLib's `tabulate`.  Falls back to a sequential loop for
/// small `n`.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    if n < SEQ_CUTOFF {
        (0..n).map(f).collect()
    } else {
        // Pass by reference: `&F` is `Fn` and trivially `Clone`, so the
        // producer can split without requiring `F: Clone` in our public API.
        (0..n).into_par_iter().map(&f).collect()
    }
}

/// Visit disjoint mutable chunks of `data` in parallel, passing the starting
/// index of each chunk so callers can recover absolute positions.
pub fn par_chunks_mut_indexed<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if data.len() < SEQ_CUTOFF {
        for (c, slice) in data.chunks_mut(chunk).enumerate() {
            f(c * chunk, slice);
        }
    } else {
        data.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(c, slice)| f(c * chunk, slice));
    }
}

/// Run `f` inside a dedicated rayon pool with `threads` worker threads.
///
/// The benchmark harness uses this to produce the "Ours" vs "Ours (1 thread)"
/// series of the paper's figures without relying on global environment
/// variables.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        // analyze: allow(no-panics): the shim's builder is infallible and a
        // real rayon build failure at startup has no useful recovery —
        // deliberate fail-fast at harness setup, never on the hot path.
        .expect("failed to build rayon thread pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maybe_join_runs_both_closures_small() {
        let (a, b) = maybe_join(4, || 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn maybe_join_runs_both_closures_large() {
        let (a, b) = maybe_join(SEQ_CUTOFF * 2, || vec![1u8; 8], || 7usize);
        assert_eq!(a.len(), 8);
        assert_eq!(b, 7);
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let n = 10_000;
        let got = par_map(n, |i| i * i);
        let want: Vec<usize> = (0..n).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_empty() {
        let got: Vec<u32> = par_map(0, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn chunks_mut_indexed_covers_all_positions() {
        let mut v = vec![0usize; 5000];
        par_chunks_mut_indexed(&mut v, 37, |start, slice| {
            for (off, x) in slice.iter_mut().enumerate() {
                *x = start + off;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn with_threads_single_thread_pool_works() {
        let sum: u64 = with_threads(1, || (0..100u64).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn with_threads_multi_thread_pool_works() {
        let sum: u64 = with_threads(4, || (0..100u64).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunks_mut_zero_chunk_panics() {
        let mut v = vec![0u8; 4];
        par_chunks_mut_indexed(&mut v, 0, |_, _| {});
    }
}
