//! Parallel primitives and instrumentation shared by every algorithm crate.
//!
//! The paper's cost model (Sec. 2) is the classic binary fork–join model with
//! a randomized work-stealing scheduler.  [`rayon`] is the canonical Rust
//! implementation of that model: `rayon::join` is the binary fork, and a
//! parallel-for is simulated by a logarithmic-depth tree of joins.  This crate
//! wraps rayon with
//!
//! * granularity-controlled helpers ([`par`]) so that the parallel algorithms
//!   degrade gracefully to their sequential counterparts on tiny inputs,
//! * the ParlayLib-style primitives the paper relies on — reduce, scan
//!   (including prefix-minimum), pack/filter and sorting ([`reduce`],
//!   [`scan`], [`pack`], [`sort`]),
//! * work/round instrumentation ([`metrics`]) used by the benchmark harness to
//!   report *operation counts* in addition to wall-clock time, which is how we
//!   validate the paper's work bounds on machines with few cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grain;
pub mod metrics;
pub mod pack;
pub mod par;
pub mod reduce;
pub mod scan;
pub mod sort;

pub use grain::{round_block_count, round_min_grain, with_grain_policy, GrainHint, GrainPolicy};
pub use metrics::{Metrics, MetricsCollector};
pub use pack::{par_filter, par_pack_index};
pub use par::{maybe_join, par_chunks_mut_indexed, par_map, with_threads, SEQ_CUTOFF};
pub use reduce::{par_min_index, par_min_value, par_reduce};
pub use scan::{par_prefix_min_inclusive, par_scan_exclusive, par_scan_inclusive};
pub use sort::{par_sort_by_key, par_sort_by_key_with};
