//! Parallel reductions (ParlayLib `reduce` / `min_element`).

use crate::par::SEQ_CUTOFF;
use rayon::prelude::*;

/// Reduce `items` with the associative operation `op` and identity `id`.
///
/// `op` must be associative; the reduction order is unspecified.
pub fn par_reduce<T, Op>(items: &[T], id: T, op: Op) -> T
where
    T: Clone + Send + Sync,
    Op: Fn(T, T) -> T + Sync + Send,
{
    if items.len() < SEQ_CUTOFF {
        items.iter().cloned().fold(id, &op)
    } else {
        items.par_iter().cloned().reduce(|| id.clone(), &op)
    }
}

/// Minimum value of a non-empty slice (by `Ord`), computed in parallel.
pub fn par_min_value<T: Ord + Copy + Send + Sync>(items: &[T]) -> Option<T> {
    if items.is_empty() {
        return None;
    }
    if items.len() < SEQ_CUTOFF {
        items.iter().copied().min()
    } else {
        items.par_iter().copied().min()
    }
}

/// Index of the minimum element according to `key`, breaking ties towards the
/// smallest index (matching the deterministic behaviour of the sequential
/// algorithms we parallelize: the *leftmost* best decision is chosen).
pub fn par_min_index<T, K, Key>(items: &[T], key: Key) -> Option<usize>
where
    T: Sync,
    K: Ord + Send,
    Key: Fn(&T) -> K + Sync,
{
    if items.is_empty() {
        return None;
    }
    let pick = |a: (usize, K), b: (usize, K)| -> (usize, K) {
        // Smaller key wins; ties go to the smaller index so the result matches
        // a left-to-right sequential argmin.
        match b.1.cmp(&a.1) {
            std::cmp::Ordering::Less => b,
            std::cmp::Ordering::Greater => a,
            std::cmp::Ordering::Equal => {
                if b.0 < a.0 {
                    b
                } else {
                    a
                }
            }
        }
    };
    if items.len() < SEQ_CUTOFF {
        let mut best = (0usize, key(&items[0]));
        for (i, item) in items.iter().enumerate().skip(1) {
            best = pick(best, (i, key(item)));
        }
        Some(best.0)
    } else {
        items
            .par_iter()
            .enumerate()
            .map(|(i, item)| (i, key(item)))
            .reduce_with(pick)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sums_small_and_large() {
        let small: Vec<u64> = (0..100).collect();
        assert_eq!(par_reduce(&small, 0, |a, b| a + b), 4950);
        let large: Vec<u64> = (0..100_000).collect();
        assert_eq!(
            par_reduce(&large, 0, |a, b| a + b),
            large.iter().sum::<u64>()
        );
    }

    #[test]
    fn min_value_matches_iterator_min() {
        let v: Vec<i64> = (0..50_000)
            .map(|i| ((i * 2654435761u64 as i64) % 9973) - 500)
            .collect();
        assert_eq!(par_min_value(&v), v.iter().copied().min());
        let empty: Vec<i64> = vec![];
        assert_eq!(par_min_value(&empty), None);
    }

    #[test]
    fn min_index_breaks_ties_leftmost() {
        let v = vec![5, 3, 9, 3, 7];
        assert_eq!(par_min_index(&v, |x| *x), Some(1));
    }

    #[test]
    fn min_index_large_matches_sequential() {
        let v: Vec<u64> = (0..60_000).map(|i| (i * 48271) % 30011).collect();
        let seq = v
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i);
        assert_eq!(par_min_index(&v, |x| *x), seq);
    }

    #[test]
    fn min_index_empty_is_none() {
        let v: Vec<u8> = vec![];
        assert_eq!(par_min_index(&v, |x| *x), None);
    }
}
