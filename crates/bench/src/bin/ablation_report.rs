//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * A1 — prefix doubling vs the naive "probe everything" cordon search for
//!   convex GLWS (how much probing work each strategy does),
//! * A2 — tournament-tree cordon extraction vs a per-round rescan for LIS,
//! * A3 — the two concave-GLWS merge strategies (position binary search vs
//!   the paper's Algorithm 2),
//! * A4 — Tree-GLWS ancestor rescan vs heavy-light persistent envelopes
//!   (Theorem 5.3) across tree shapes, with per-round frontier percentiles.

use pardp_glws::{
    parallel_concave_glws_with, parallel_convex_glws, ConcaveGapCost, ConcaveMergeStrategy,
    PostOfficeProblem,
};
use pardp_lis::{parallel_lis, sequential_lis};
use pardp_treedp::{parallel_tree_glws, parallel_tree_glws_hld, CostShape, TreeGlwsInstance};
use pardp_workloads as workloads;
use std::time::Instant;

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

fn main() {
    let n = 1_000_000usize;

    println!("== A1: prefix-doubling waste in parallel convex GLWS (n = {n}) ==");
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "k", "states final", "states wasted", "waste %"
    );
    for &k in &[10usize, 1_000, 100_000] {
        let inst = workloads::post_office_instance(n, k, 5);
        let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
        let r = parallel_convex_glws(&p);
        let pct = 100.0 * r.metrics.wasted_states as f64 / r.metrics.states_finalized as f64;
        println!(
            "{:>10} {:>14} {:>16} {:>12.2}",
            k, r.metrics.states_finalized, r.metrics.wasted_states, pct
        );
    }

    println!();
    println!("== A2: tournament-tree LIS vs sequential Fenwick LIS (n = {n}) ==");
    println!("{:>10} {:>14} {:>14}", "k", "cordon (s)", "sequential (s)");
    for &k in &[10usize, 1_000, 100_000] {
        let a = workloads::lis_with_length(n, k, 9);
        let (tp, rp) = timed(|| parallel_lis(&a));
        let (ts, rs) = timed(|| sequential_lis(&a));
        assert_eq!(rp.length, rs.length);
        println!("{:>10} {:>14.4} {:>14.4}", k, tp, ts);
    }

    println!();
    println!("== A3: concave merge strategies (n = 200000) ==");
    println!("{:>22} {:>12} {:>12}", "strategy", "time (s)", "probes");
    for (name, strat) in [
        (
            "position binary search",
            ConcaveMergeStrategy::PositionBinarySearch,
        ),
        ("paper Algorithm 2", ConcaveMergeStrategy::PaperAlgorithm2),
    ] {
        let p = ConcaveGapCost::new(200_000, 50, 3);
        let (t, r) = timed(|| parallel_concave_glws_with(&p, strat));
        println!("{:>22} {:>12.4} {:>12}", name, t, r.metrics.probes);
    }

    println!();
    println!("== A4: Tree-GLWS ancestor rescan vs heavy-light envelopes (Theorem 5.3) ==");
    println!(
        "{:>18} {:>8} {:>8} {:>10} {:>12} {:>12} {:>8} {:>24}",
        "shape",
        "n",
        "height",
        "cordon",
        "time (s)",
        "work proxy",
        "rounds",
        "frontier p50/p90/p99/max"
    );
    let tn = 30_000usize;
    let tree_shapes: Vec<(&str, Vec<usize>)> = vec![
        ("path (h = n)", workloads::path_tree(tn)),
        ("caterpillar", workloads::caterpillar_tree(tn, tn / 2, 4)),
        ("random-attach", workloads::random_attachment_tree(tn, 4)),
        ("balanced-4ary", workloads::balanced_tree(tn, 4)),
    ];
    for (shape, parent) in tree_shapes {
        let lens = workloads::tree_edge_lengths(tn, 3, 4);
        let height = workloads::tree_height(&parent);
        let inst = TreeGlwsInstance::new(
            parent,
            &lens,
            0,
            |du, dv| {
                let len = (dv - du) as i64;
                25 + len * len
            },
            |d, _| d,
        );
        let (t_old, r_old) = timed(|| parallel_tree_glws(&inst));
        let (t_hld, r_hld) = timed(|| parallel_tree_glws_hld(&inst, CostShape::Convex));
        assert_eq!(r_old.d, r_hld.d);
        assert_eq!(r_old.best, r_hld.best);
        for (cordon, t, r) in [("rescan", t_old, &r_old), ("hld", t_hld, &r_hld)] {
            let pct = r.metrics.frontier_percentiles(&[50.0, 90.0, 99.0]);
            println!(
                "{:>18} {:>8} {:>8} {:>10} {:>12.4} {:>12} {:>8} {:>24}",
                shape,
                tn,
                height,
                cordon,
                t,
                r.metrics.work_proxy(),
                r.metrics.rounds,
                format!(
                    "{}/{}/{}/{}",
                    pct[0],
                    pct[1],
                    pct[2],
                    r.metrics.max_frontier()
                )
            );
        }
    }
}
