//! Regenerates Figure 7: parallel convex GLWS (post office) running time vs
//! the number of post offices `k`.
//!
//! Usage: `cargo run --release -p pardp-bench --bin fig7_glws [-- --n <villages>] [--paper-scale]`

use pardp_bench::{k_sweep, print_fig7, run_fig7};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let n = parse_flag(&args, "--n").unwrap_or(if paper_scale { 100_000_000 } else { 1_000_000 });
    let ns = [
        n,
        n.saturating_mul(10).min(if paper_scale {
            1_000_000_000
        } else {
            10_000_000
        }),
    ];
    for &n in &ns {
        let ks = k_sweep(100_000.min(n), 10);
        let rows = run_fig7(n, &ks, 7);
        print_fig7(&rows);
        println!();
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
