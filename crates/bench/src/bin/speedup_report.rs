//! Reports the Sec. 1 / Sec. 6 headline numbers: parallel-vs-sequential
//! behaviour of LCS and GLWS as the DP-DAG depth varies, including the
//! work-ratio (parallel work / sequential work) used to validate
//! work-efficiency on machines with few cores.

use pardp_bench::{run_fig6, run_fig7};

fn main() {
    let l = 1_000_000usize;
    let n = 1_000_000usize;
    println!("== Sparse LCS (L = {l}) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12}",
        "k", "par/seq time", "1thr/seq time", "work ratio", "rounds"
    );
    for row in run_fig6(l, &[100, 10_000, 1_000_000], 3) {
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>12.3} {:>12}",
            row.k,
            row.parallel_secs / row.sequential_secs,
            row.parallel_1t_secs / row.sequential_secs,
            row.parallel_work as f64 / row.sequential_work as f64,
            row.rounds
        );
    }
    println!();
    println!("== Convex GLWS / post office (n = {n}) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12}",
        "k", "par/seq time", "1thr/seq time", "work ratio", "rounds"
    );
    for row in run_fig7(n, &[10, 1_000, 100_000], 3) {
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>12.3} {:>12}",
            row.k,
            row.parallel_secs / row.sequential_secs,
            row.parallel_1t_secs / row.sequential_secs,
            row.parallel_work as f64 / row.sequential_work as f64,
            row.rounds
        );
    }
}
