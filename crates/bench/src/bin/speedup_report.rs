//! Reports the Sec. 1 / Sec. 6 headline numbers: parallel-vs-sequential
//! behaviour as the DP-DAG depth varies, including the work-ratio
//! (parallel work / sequential work) used to validate work-efficiency on
//! machines with few cores — and emits the machine-readable speedup
//! trajectory as `BENCH_speedup.json`.
//!
//! Usage: `speedup_report [--quick] [--out PATH]`
//!
//! * `--quick` shrinks every instance for smoke-test use (CI).
//! * `--out PATH` sets the JSON output path (default `BENCH_speedup.json`
//!   in the current directory).

use pardp_bench::{print_speedup, run_fig6, run_fig7, run_speedup, speedup_rows_to_json};

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_speedup.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.expect_value("--out");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: speedup_report [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    if !quick {
        let l = 1_000_000usize;
        let n = 1_000_000usize;
        println!("== Sparse LCS (L = {l}) ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12} {:>12}",
            "k", "par/seq time", "1thr/seq time", "work ratio", "rounds"
        );
        for row in run_fig6(l, &[100, 10_000, 1_000_000], 3) {
            println!(
                "{:>10} {:>14.3} {:>14.3} {:>12.3} {:>12}",
                row.k,
                row.parallel_secs / row.sequential_secs,
                row.parallel_1t_secs / row.sequential_secs,
                row.parallel_work as f64 / row.sequential_work as f64,
                row.rounds
            );
        }
        println!();
        println!("== Convex GLWS / post office (n = {n}) ==");
        println!(
            "{:>10} {:>14} {:>14} {:>12} {:>12}",
            "k", "par/seq time", "1thr/seq time", "work ratio", "rounds"
        );
        for row in run_fig7(n, &[10, 1_000, 100_000], 3) {
            println!(
                "{:>10} {:>14.3} {:>14.3} {:>12.3} {:>12}",
                row.k,
                row.parallel_secs / row.sequential_secs,
                row.parallel_1t_secs / row.sequential_secs,
                row.parallel_work as f64 / row.sequential_work as f64,
                row.rounds
            );
        }
        println!();
    }

    let rows = run_speedup(quick, &[1, 2, 4, 8]);
    print_speedup(&rows);
    let json = speedup_rows_to_json(&rows, quick);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!();
    println!("wrote {out} ({} rows)", rows.len());
}

/// Tiny helper so `--out` errors read well without pulling in a CLI crate.
trait ExpectValue {
    fn expect_value(&mut self, flag: &str) -> String;
}

impl<I: Iterator<Item = String>> ExpectValue for I {
    fn expect_value(&mut self, flag: &str) -> String {
        self.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    }
}
