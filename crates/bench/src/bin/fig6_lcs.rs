//! Regenerates Figure 6: parallel sparse LCS running time vs LCS length `k`.
//!
//! Usage: `cargo run --release -p pardp-bench --bin fig6_lcs [-- --l <pairs>] [--paper-scale]`
//! Defaults are scaled down from the paper's `L = 10^8 / 10^9` so the sweep
//! finishes quickly on a laptop; pass `--paper-scale` (and a lot of patience
//! and memory) for the original sizes.

use pardp_bench::{k_sweep, print_fig6, run_fig6};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let l = parse_flag(&args, "--l").unwrap_or(if paper_scale { 100_000_000 } else { 1_000_000 });
    let ls = [
        l,
        l.saturating_mul(10).min(if paper_scale {
            1_000_000_000
        } else {
            10_000_000
        }),
    ];
    for &l in &ls {
        let ks = k_sweep(l, 12);
        let rows = run_fig6(l, &ks, 42);
        print_fig6(&rows);
        println!();
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
