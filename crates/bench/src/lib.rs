//! Benchmark harness shared by the criterion benches and the report binaries.
//!
//! Every evaluation figure of the paper has a `run_*` function here that
//! produces one row per swept parameter value, reporting wall-clock times for
//! the series the paper plots ("Ours", "Ours (1 thread)", "Sequential") plus
//! the work/round counters that validate the asymptotic claims on machines
//! where wall-clock speedup is not observable (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_gap::{convex_gap_instance, parallel_gap_packed, sequential_gap};
use pardp_glws::{parallel_convex_glws, sequential_convex_glws, GlwsProblem, PostOfficeProblem};
use pardp_lcs::{parallel_sparse_lcs, sequential_sparse_lcs, MatchPair};
use pardp_lis::{parallel_lis, sequential_lis};
use pardp_oat::{garsia_wachs, parallel_oat, parallel_oat_valley};
use pardp_obst::{knuth_obst, parallel_obst};
use pardp_parutils::{with_threads, Metrics};
use pardp_treedp::{parallel_tree_glws_auto, sequential_tree_glws, CostShape, TreeGlwsInstance};
use pardp_workloads as workloads;
use serde::Serialize;
use std::time::Instant;

/// Measure the wall-clock seconds of one invocation of `f`.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

// ---------------------------------------------------------------------------
// Figure 6: parallel sparse LCS, running time vs LCS length k.
// ---------------------------------------------------------------------------

/// One row of the Fig. 6 table.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Number of matching pairs `L`.
    pub l: usize,
    /// LCS length `k` of the instance.
    pub k: usize,
    /// Parallel running time on the default thread pool ("Ours").
    pub parallel_secs: f64,
    /// Parallel algorithm restricted to one thread ("Ours (1 thread)").
    pub parallel_1t_secs: f64,
    /// Sequential sparse LCS (Hunt–Szymanski) baseline.
    pub sequential_secs: f64,
    /// Rounds executed by the cordon algorithm (equals `k`).
    pub rounds: u64,
    /// Work proxy of the parallel run (edges + probes).
    pub parallel_work: u64,
    /// Work proxy of the sequential run.
    pub sequential_work: u64,
}

/// Run the Fig. 6 sweep: sparse LCS with `l` matching pairs and LCS lengths
/// `ks`, timing the parallel algorithm on the ambient pool, on one thread,
/// and the sequential baseline.
pub fn run_fig6(l: usize, ks: &[usize], seed: u64) -> Vec<Fig6Row> {
    ks.iter()
        .map(|&k| {
            let raw = workloads::lcs_pairs_with(l, k.min(l), seed);
            let pairs: Vec<MatchPair> = raw.into_iter().map(|(i, j)| MatchPair { i, j }).collect();
            let (parallel_secs, par) = time_secs(|| parallel_sparse_lcs(&pairs));
            let (parallel_1t_secs, _) =
                time_secs(|| with_threads(1, || parallel_sparse_lcs(&pairs)));
            let (sequential_secs, seq) = time_secs(|| sequential_sparse_lcs(&pairs));
            assert_eq!(par.length, seq.length, "parallel and sequential disagree");
            Fig6Row {
                l,
                k: par.length as usize,
                parallel_secs,
                parallel_1t_secs,
                sequential_secs,
                rounds: par.metrics.rounds,
                parallel_work: par.metrics.work_proxy() + par.metrics.edges_relaxed,
                sequential_work: seq.metrics.work_proxy(),
            }
        })
        .collect()
}

/// Pretty-print Fig. 6 rows in the layout of the paper's figure.
pub fn print_fig6(rows: &[Fig6Row]) {
    println!("# Figure 6 — parallel sparse LCS, running time (s) vs LCS length k");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "L", "k", "Ours", "Ours(1thr)", "Sequential", "rounds"
    );
    for r in rows {
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.4} {:>12.4} {:>10}",
            r.l, r.k, r.parallel_secs, r.parallel_1t_secs, r.sequential_secs, r.rounds
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 7: parallel convex GLWS (post office), running time vs k.
// ---------------------------------------------------------------------------

/// One row of the Fig. 7 table.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Number of villages `n`.
    pub n: usize,
    /// Number of post offices in the optimal solution.
    pub k: usize,
    /// Parallel running time ("Ours").
    pub parallel_secs: f64,
    /// Parallel algorithm on one thread ("Ours (1 thread)").
    pub parallel_1t_secs: f64,
    /// Sequential Galil–Park baseline ("Sequential").
    pub sequential_secs: f64,
    /// Cordon rounds (equals `k`, the perfect depth — Lemma 4.5).
    pub rounds: u64,
    /// Work proxy of the parallel run.
    pub parallel_work: u64,
    /// Work proxy of the sequential run.
    pub sequential_work: u64,
}

/// Run the Fig. 7 sweep: post-office GLWS with `n` villages and the requested
/// numbers of clusters.
pub fn run_fig7(n: usize, ks: &[usize], seed: u64) -> Vec<Fig7Row> {
    ks.iter()
        .map(|&k| {
            let inst = workloads::post_office_instance(n, k.min(n), seed);
            let problem = PostOfficeProblem::new(inst.coords.clone(), inst.open_cost);
            let (parallel_secs, par) = time_secs(|| parallel_convex_glws(&problem));
            let (parallel_1t_secs, _) =
                time_secs(|| with_threads(1, || parallel_convex_glws(&problem)));
            let (sequential_secs, seq) = time_secs(|| sequential_convex_glws(&problem));
            assert_eq!(par.d, seq.d, "parallel and sequential disagree");
            Fig7Row {
                n,
                k: par.decision_depth(problem.n()),
                parallel_secs,
                parallel_1t_secs,
                sequential_secs,
                rounds: par.metrics.rounds,
                parallel_work: par.metrics.work_proxy(),
                sequential_work: seq.metrics.work_proxy(),
            }
        })
        .collect()
}

/// Pretty-print Fig. 7 rows in the layout of the paper's figure.
pub fn print_fig7(rows: &[Fig7Row]) {
    println!("# Figure 7 — parallel convex GLWS (post office), running time (s) vs k");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>10} {:>14} {:>14}",
        "n", "k", "Ours", "Ours(1thr)", "Sequential", "rounds", "par work", "seq work"
    );
    for r in rows {
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.4} {:>12.4} {:>10} {:>14} {:>14}",
            r.n,
            r.k,
            r.parallel_secs,
            r.parallel_1t_secs,
            r.sequential_secs,
            r.rounds,
            r.parallel_work,
            r.sequential_work
        );
    }
}

// ---------------------------------------------------------------------------
// Speedup trajectory: per-problem parallel-vs-sequential wall clock across
// thread counts, emitted as machine-readable BENCH_speedup.json.
// ---------------------------------------------------------------------------

/// One (problem, thread count) measurement of the speedup trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Problem / instance label.
    pub problem: String,
    /// Instance size.
    pub n: usize,
    /// Thread count the parallel run was pinned to.
    pub threads: usize,
    /// Best-of-reps sequential baseline wall clock.
    pub seq_secs: f64,
    /// Best-of-reps parallel wall clock at `threads` threads.
    pub par_secs: f64,
    /// Parallel work proxy / sequential work proxy.
    pub work_ratio: f64,
    /// Cordon rounds of the parallel run.
    pub rounds: u64,
    /// Largest frontier over all rounds.
    pub max_frontier: u64,
    /// Pool injector pushes during the parallel measurement (delta of the
    /// rayon shim's process-global dispatch counters around the timed
    /// region; 0 without the `threads` feature).  Optional for consumers —
    /// added after the first `pardp-speedup-v1` documents were committed.
    pub injector_pushes: u64,
    /// Worker wakeups during the parallel measurement (same provenance and
    /// caveats as `injector_pushes`).
    pub wakeups: u64,
}

impl SpeedupRow {
    /// Wall-clock ratio parallel / sequential (< 1.0 means the parallel
    /// algorithm beat the sequential baseline outright).
    pub fn par_over_seq(&self) -> f64 {
        if self.seq_secs > 0.0 {
            self.par_secs / self.seq_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Minimum wall clock over `reps` invocations, preceded by one *untimed*
/// warmup invocation, with the last timed result.  The warmup absorbs
/// one-time costs that are not the algorithm's steady state — lazy pool
/// initialization, page faults on freshly grown buffers, cold instruction
/// and data caches — so callers should invoke `best_of` *inside* a
/// `with_threads` scope (pool spin-up then lands in the warmup, not in rep
/// one).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let _ = f();
    let (mut best, mut out) = time_secs(&mut f);
    for _ in 1..reps {
        let (t, r) = time_secs(&mut f);
        if t < best {
            best = t;
        }
        out = r;
    }
    (best, out)
}

/// Run the parallel measurement pinned to `threads` threads, recording the
/// rayon shim's process-global dispatch-counter deltas across the whole
/// region (warmup and pool spin-up included: dispatch regressions there are
/// regressions too).  Returns `(secs, result, injector pushes, wakeups)`.
fn timed_parallel<R: Send>(
    threads: usize,
    reps: usize,
    f: impl FnMut() -> R + Send,
) -> (f64, R, u64, u64) {
    let (pushes_before, wakeups_before) = rayon::dispatch_diagnostics();
    let (secs, out) = with_threads(threads, || best_of(reps, f));
    let (pushes_after, wakeups_after) = rayon::dispatch_diagnostics();
    (
        secs,
        out,
        pushes_after - pushes_before,
        wakeups_after - wakeups_before,
    )
}

#[allow(clippy::too_many_arguments)]
fn speedup_row(
    problem: &str,
    n: usize,
    threads: usize,
    seq_secs: f64,
    par_secs: f64,
    par: &Metrics,
    seq: &Metrics,
    dispatch: (u64, u64),
) -> SpeedupRow {
    SpeedupRow {
        problem: problem.to_string(),
        n,
        threads,
        seq_secs,
        par_secs,
        work_ratio: if seq.work_proxy() > 0 {
            par.work_proxy() as f64 / seq.work_proxy() as f64
        } else {
            0.0
        },
        rounds: par.rounds,
        max_frontier: par.max_frontier(),
        injector_pushes: dispatch.0,
        wakeups: dispatch.1,
    }
}

/// Run the speedup sweep: for each problem, time the sequential baseline and
/// the parallel algorithm pinned to each thread count in `threads`.
///
/// The instances are deliberately *shallow* (small round count, wide
/// frontiers) — the regime where the paper's span bounds leave actual
/// parallelism for the pool to exploit.  `quick` shrinks every instance for
/// smoke-test use (CI runs `speedup_report --quick`).
pub fn run_speedup(quick: bool, threads: &[usize]) -> Vec<SpeedupRow> {
    let reps = if quick { 1 } else { 3 };
    let mut rows = Vec::new();

    // Shallow LIS: k = 4 rounds over a wide staircase.  The sequential
    // baseline pays a coordinate-compression sort plus a Fenwick log factor;
    // the cordon does k linear tournament rounds.
    {
        let n = if quick { 50_000 } else { 400_000 };
        let a = workloads::lis_with_length(n, 4, 7);
        let (seq_secs, seq) = best_of(reps, || sequential_lis(&a));
        for &t in threads {
            let (par_secs, par, pushes, wakeups) = timed_parallel(t, reps, || parallel_lis(&a));
            assert_eq!(par.length, seq.length, "lis parallel/sequential disagree");
            rows.push(speedup_row(
                "lis_shallow",
                n,
                t,
                seq_secs,
                par_secs,
                &par.metrics,
                &seq.metrics,
                (pushes, wakeups),
            ));
        }
    }

    // OBST: n - 1 diagonal rounds with identical Knuth-bound work on both
    // sides; the cordon's flat diagonal-major tables vs the baseline's
    // row-major `Vec<Vec>` grid.
    {
        let n = if quick { 400 } else { 2_000 };
        let weights = workloads::positive_weights(n, 1_000, 11);
        let (seq_secs, seq) = best_of(reps, || knuth_obst(&weights));
        for &t in threads {
            let (par_secs, par, pushes, wakeups) =
                timed_parallel(t, reps, || parallel_obst(&weights));
            assert_eq!(par.cost, seq.cost, "obst parallel/sequential disagree");
            rows.push(speedup_row(
                "obst",
                n,
                t,
                seq_secs,
                par_secs,
                &par.metrics,
                &seq.metrics,
                (pushes, wakeups),
            ));
        }
    }

    // Tree-GLWS through the shape-adaptive router (parallel_tree_glws_auto)
    // on the three shapes that span its decision space: a shallow balanced
    // tree (router picks the O(n·h) baseline cordon — the heavy-light
    // envelope machinery can't pay for itself at avg depth ~log n), a path,
    // and a caterpillar (router picks the Theorem 5.3 envelopes — the
    // baseline is quadratic there).  The sequential baseline is the naive
    // ancestor scan in all three rows, so par/seq on the deep shapes also
    // captures the work-efficiency win, not just parallelism.
    let tree_shapes: [(&str, Vec<usize>); 3] = if quick {
        [
            ("tree_glws_balanced", workloads::balanced_tree(20_000, 8)),
            ("tree_glws_path", workloads::path_tree(2_000)),
            (
                "tree_glws_caterpillar",
                workloads::caterpillar_tree(3_000, 1_500, 29),
            ),
        ]
    } else {
        [
            ("tree_glws_balanced", workloads::balanced_tree(200_000, 8)),
            ("tree_glws_path", workloads::path_tree(20_000)),
            (
                "tree_glws_caterpillar",
                workloads::caterpillar_tree(30_000, 15_000, 29),
            ),
        ]
    };
    for (problem, parent) in tree_shapes {
        let n = parent.len() - 1;
        let lens = workloads::tree_edge_lengths(n, 100, 13);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, |du, dv| (dv - du) as i64, |d, _| d);
        let (seq_secs, seq) = best_of(reps, || sequential_tree_glws(&inst));
        for &t in threads {
            let (par_secs, par, pushes, wakeups) = timed_parallel(t, reps, || {
                parallel_tree_glws_auto(&inst, CostShape::Convex)
            });
            assert_eq!(par.d, seq.d, "{problem} parallel/sequential disagree");
            rows.push(speedup_row(
                problem,
                n,
                t,
                seq_secs,
                par_secs,
                &par.metrics,
                &seq.metrics,
                (pushes, wakeups),
            ));
        }
    }

    // OAT with the valley cordon (Theorem 5.1) against the sequential
    // Garsia–Wachs baseline: O(log W) weight-doubling rounds with parallel
    // per-slope combines, vs the leftmost-pair rescans of the baseline
    // (quadratic on these sizes).
    {
        let n = if quick { 6_000 } else { 40_000 };
        let weights = workloads::positive_weights(n, 1 << 16, 23);
        let (seq_secs, seq) = best_of(reps, || garsia_wachs(&weights));
        for &t in threads {
            let (par_secs, par, pushes, wakeups) =
                timed_parallel(t, reps, || parallel_oat_valley(&weights));
            assert_eq!(
                par.cost, seq.cost,
                "oat_valley parallel/sequential disagree"
            );
            rows.push(speedup_row(
                "oat_valley",
                n,
                t,
                seq_secs,
                par_secs,
                &par.metrics,
                &seq.metrics,
                (pushes, wakeups),
            ));
        }
    }

    // The pre-Theorem-5.1 interval OAT cordon on the same profile (its own
    // smaller n — the diagonal DP is Θ(n²) in time and space): the ablation
    // partner showing what the valley decomposition buys.
    {
        let n = if quick { 400 } else { 2_000 };
        let weights = workloads::positive_weights(n, 1 << 16, 23);
        let (seq_secs, seq) = best_of(reps, || garsia_wachs(&weights));
        for &t in threads {
            let (par_secs, par, pushes, wakeups) =
                timed_parallel(t, reps, || parallel_oat(&weights));
            assert_eq!(
                par.cost, seq.cost,
                "oat_interval parallel/sequential disagree"
            );
            rows.push(speedup_row(
                "oat_interval",
                n,
                t,
                seq_secs,
                par_secs,
                &par.metrics,
                &seq.metrics,
                (pushes, wakeups),
            ));
        }
    }

    // GAP alignment with the packed cordon (Theorem 5.2): rounds equal the
    // instance's effective depth instead of the n + m anti-diagonals the
    // wavefront used to report here — the grid itself is deep but the
    // improvement chains are not.
    {
        let n = if quick { 300 } else { 1_000 };
        let (a, b) = workloads::gap_strings(n, n, 4, 17);
        let inst = convex_gap_instance(&a, &b, 3, 1, 1);
        let (seq_secs, seq) = best_of(reps, || sequential_gap(&inst));
        for &t in threads {
            let (par_secs, par, pushes, wakeups) =
                timed_parallel(t, reps, || parallel_gap_packed(&inst));
            assert_eq!(par.cost, seq.cost, "gap parallel/sequential disagree");
            rows.push(speedup_row(
                "gap",
                n,
                t,
                seq_secs,
                par_secs,
                &par.metrics,
                &seq.metrics,
                (pushes, wakeups),
            ));
        }
    }

    rows
}

/// Serialize speedup rows as the `BENCH_speedup.json` document (hand-rolled:
/// the offline `serde` shim does not provide serialization).
pub fn speedup_rows_to_json(rows: &[SpeedupRow], quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"pardp-speedup-v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"rows\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"problem\": \"{}\", \"n\": {}, \"threads\": {}, \"seq_secs\": {:.6}, \
             \"par_secs\": {:.6}, \"par_over_seq\": {:.4}, \"work_ratio\": {:.4}, \
             \"rounds\": {}, \"max_frontier\": {}, \"injector_pushes\": {}, \
             \"wakeups\": {}}}{}\n",
            r.problem,
            r.n,
            r.threads,
            r.seq_secs,
            r.par_secs,
            r.par_over_seq(),
            r.work_ratio,
            r.rounds,
            r.max_frontier,
            r.injector_pushes,
            r.wakeups,
            if idx + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pretty-print speedup rows as a table.
pub fn print_speedup(rows: &[SpeedupRow]) {
    println!("# Speedup trajectory — parallel vs sequential wall clock by thread count");
    println!(
        "{:>22} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8} {:>12} {:>10} {:>8}",
        "problem",
        "n",
        "threads",
        "seq (s)",
        "par (s)",
        "par/seq",
        "work ratio",
        "rounds",
        "max frontier",
        "inj push",
        "wakeups"
    );
    for r in rows {
        println!(
            "{:>22} {:>10} {:>8} {:>12.4} {:>12.4} {:>12.3} {:>12.3} {:>8} {:>12} {:>10} {:>8}",
            r.problem,
            r.n,
            r.threads,
            r.seq_secs,
            r.par_secs,
            r.par_over_seq(),
            r.work_ratio,
            r.rounds,
            r.max_frontier,
            r.injector_pushes,
            r.wakeups
        );
    }
}

/// Geometric sweep of `k` values up to `max_k` (mirroring the log-scaled x
/// axes of the paper's figures).
pub fn k_sweep(max_k: usize, points: usize) -> Vec<usize> {
    let mut ks = Vec::new();
    let mut k = 10usize.min(max_k).max(1);
    for _ in 0..points {
        if ks.last() != Some(&k) {
            ks.push(k);
        }
        if k >= max_k {
            break;
        }
        k = (k * 10).min(max_k);
    }
    ks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_smoke() {
        let rows = run_fig6(5_000, &[10, 100], 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].k, 10);
        assert_eq!(rows[1].k, 100);
        assert_eq!(rows[0].rounds, 10);
        print_fig6(&rows);
    }

    #[test]
    fn fig7_smoke() {
        let rows = run_fig7(5_000, &[5, 50], 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].k, 5);
        assert_eq!(rows[1].k, 50);
        assert_eq!(rows[0].rounds, 5);
        print_fig7(&rows);
    }

    #[test]
    fn k_sweep_is_geometric_and_capped() {
        assert_eq!(k_sweep(100_000, 10), vec![10, 100, 1000, 10_000, 100_000]);
        assert_eq!(k_sweep(500, 10), vec![10, 100, 500]);
        assert_eq!(k_sweep(5, 10), vec![5]);
    }
}
