//! Benchmark harness shared by the criterion benches and the report binaries.
//!
//! Every evaluation figure of the paper has a `run_*` function here that
//! produces one row per swept parameter value, reporting wall-clock times for
//! the series the paper plots ("Ours", "Ours (1 thread)", "Sequential") plus
//! the work/round counters that validate the asymptotic claims on machines
//! where wall-clock speedup is not observable (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_glws::{parallel_convex_glws, sequential_convex_glws, GlwsProblem, PostOfficeProblem};
use pardp_lcs::{parallel_sparse_lcs, sequential_sparse_lcs, MatchPair};
use pardp_parutils::with_threads;
use pardp_workloads as workloads;
use serde::Serialize;
use std::time::Instant;

/// Measure the wall-clock seconds of one invocation of `f`.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

// ---------------------------------------------------------------------------
// Figure 6: parallel sparse LCS, running time vs LCS length k.
// ---------------------------------------------------------------------------

/// One row of the Fig. 6 table.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Number of matching pairs `L`.
    pub l: usize,
    /// LCS length `k` of the instance.
    pub k: usize,
    /// Parallel running time on the default thread pool ("Ours").
    pub parallel_secs: f64,
    /// Parallel algorithm restricted to one thread ("Ours (1 thread)").
    pub parallel_1t_secs: f64,
    /// Sequential sparse LCS (Hunt–Szymanski) baseline.
    pub sequential_secs: f64,
    /// Rounds executed by the cordon algorithm (equals `k`).
    pub rounds: u64,
    /// Work proxy of the parallel run (edges + probes).
    pub parallel_work: u64,
    /// Work proxy of the sequential run.
    pub sequential_work: u64,
}

/// Run the Fig. 6 sweep: sparse LCS with `l` matching pairs and LCS lengths
/// `ks`, timing the parallel algorithm on the ambient pool, on one thread,
/// and the sequential baseline.
pub fn run_fig6(l: usize, ks: &[usize], seed: u64) -> Vec<Fig6Row> {
    ks.iter()
        .map(|&k| {
            let raw = workloads::lcs_pairs_with(l, k.min(l), seed);
            let pairs: Vec<MatchPair> = raw.into_iter().map(|(i, j)| MatchPair { i, j }).collect();
            let (parallel_secs, par) = time_secs(|| parallel_sparse_lcs(&pairs));
            let (parallel_1t_secs, _) =
                time_secs(|| with_threads(1, || parallel_sparse_lcs(&pairs)));
            let (sequential_secs, seq) = time_secs(|| sequential_sparse_lcs(&pairs));
            assert_eq!(par.length, seq.length, "parallel and sequential disagree");
            Fig6Row {
                l,
                k: par.length as usize,
                parallel_secs,
                parallel_1t_secs,
                sequential_secs,
                rounds: par.metrics.rounds,
                parallel_work: par.metrics.work_proxy() + par.metrics.edges_relaxed,
                sequential_work: seq.metrics.work_proxy(),
            }
        })
        .collect()
}

/// Pretty-print Fig. 6 rows in the layout of the paper's figure.
pub fn print_fig6(rows: &[Fig6Row]) {
    println!("# Figure 6 — parallel sparse LCS, running time (s) vs LCS length k");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "L", "k", "Ours", "Ours(1thr)", "Sequential", "rounds"
    );
    for r in rows {
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.4} {:>12.4} {:>10}",
            r.l, r.k, r.parallel_secs, r.parallel_1t_secs, r.sequential_secs, r.rounds
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 7: parallel convex GLWS (post office), running time vs k.
// ---------------------------------------------------------------------------

/// One row of the Fig. 7 table.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Number of villages `n`.
    pub n: usize,
    /// Number of post offices in the optimal solution.
    pub k: usize,
    /// Parallel running time ("Ours").
    pub parallel_secs: f64,
    /// Parallel algorithm on one thread ("Ours (1 thread)").
    pub parallel_1t_secs: f64,
    /// Sequential Galil–Park baseline ("Sequential").
    pub sequential_secs: f64,
    /// Cordon rounds (equals `k`, the perfect depth — Lemma 4.5).
    pub rounds: u64,
    /// Work proxy of the parallel run.
    pub parallel_work: u64,
    /// Work proxy of the sequential run.
    pub sequential_work: u64,
}

/// Run the Fig. 7 sweep: post-office GLWS with `n` villages and the requested
/// numbers of clusters.
pub fn run_fig7(n: usize, ks: &[usize], seed: u64) -> Vec<Fig7Row> {
    ks.iter()
        .map(|&k| {
            let inst = workloads::post_office_instance(n, k.min(n), seed);
            let problem = PostOfficeProblem::new(inst.coords.clone(), inst.open_cost);
            let (parallel_secs, par) = time_secs(|| parallel_convex_glws(&problem));
            let (parallel_1t_secs, _) =
                time_secs(|| with_threads(1, || parallel_convex_glws(&problem)));
            let (sequential_secs, seq) = time_secs(|| sequential_convex_glws(&problem));
            assert_eq!(par.d, seq.d, "parallel and sequential disagree");
            Fig7Row {
                n,
                k: par.decision_depth(problem.n()),
                parallel_secs,
                parallel_1t_secs,
                sequential_secs,
                rounds: par.metrics.rounds,
                parallel_work: par.metrics.work_proxy(),
                sequential_work: seq.metrics.work_proxy(),
            }
        })
        .collect()
}

/// Pretty-print Fig. 7 rows in the layout of the paper's figure.
pub fn print_fig7(rows: &[Fig7Row]) {
    println!("# Figure 7 — parallel convex GLWS (post office), running time (s) vs k");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>10} {:>14} {:>14}",
        "n", "k", "Ours", "Ours(1thr)", "Sequential", "rounds", "par work", "seq work"
    );
    for r in rows {
        println!(
            "{:>12} {:>12} {:>12.4} {:>14.4} {:>12.4} {:>10} {:>14} {:>14}",
            r.n,
            r.k,
            r.parallel_secs,
            r.parallel_1t_secs,
            r.sequential_secs,
            r.rounds,
            r.parallel_work,
            r.sequential_work
        );
    }
}

/// Geometric sweep of `k` values up to `max_k` (mirroring the log-scaled x
/// axes of the paper's figures).
pub fn k_sweep(max_k: usize, points: usize) -> Vec<usize> {
    let mut ks = Vec::new();
    let mut k = 10usize.min(max_k).max(1);
    for _ in 0..points {
        if ks.last() != Some(&k) {
            ks.push(k);
        }
        if k >= max_k {
            break;
        }
        k = (k * 10).min(max_k);
    }
    ks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_smoke() {
        let rows = run_fig6(5_000, &[10, 100], 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].k, 10);
        assert_eq!(rows[1].k, 100);
        assert_eq!(rows[0].rounds, 10);
        print_fig6(&rows);
    }

    #[test]
    fn fig7_smoke() {
        let rows = run_fig7(5_000, &[5, 50], 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].k, 5);
        assert_eq!(rows[1].k, 50);
        assert_eq!(rows[0].rounds, 5);
        print_fig7(&rows);
    }

    #[test]
    fn k_sweep_is_geometric_and_capped() {
        assert_eq!(k_sweep(100_000, 10), vec![10, 100, 1000, 10_000, 100_000]);
        assert_eq!(k_sweep(500, 10), vec![10, 100, 500]);
        assert_eq!(k_sweep(5, 10), vec![5]);
    }
}
