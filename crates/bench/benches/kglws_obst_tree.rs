//! Criterion bench for the remaining Sec. 5 problems: k-GLWS (Sec. 5.4),
//! OBST with Knuth's speedup (Sec. 5.5) and Tree-GLWS (Sec. 5.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_glws::{naive_kglws, parallel_kglws, PostOfficeProblem};
use pardp_obst::{knuth_obst, naive_obst, parallel_obst};
use pardp_treedp::{
    naive_tree_glws, parallel_tree_glws, parallel_tree_glws_hld, CostShape, TreeGlwsInstance,
};
use pardp_workloads::{
    balanced_tree, caterpillar_tree, path_tree, positive_weights, post_office_instance,
    random_tree, tree_edge_lengths,
};
use std::time::Duration;

fn bench_kglws(c: &mut Criterion) {
    let mut group = c.benchmark_group("kglws");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let inst = post_office_instance(20_000, 64, 3);
    let p = PostOfficeProblem::new(inst.coords, 0);
    for &k in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("parallel_dc", k), &k, |b, &k| {
            b.iter(|| parallel_kglws(&p, k))
        });
    }
    let small = post_office_instance(1_500, 16, 3);
    let ps = PostOfficeProblem::new(small.coords, 0);
    group.bench_function("naive_k16_n1500", |b| b.iter(|| naive_kglws(&ps, 16)));
    group.finish();
}

fn bench_obst(c: &mut Criterion) {
    let mut group = c.benchmark_group("obst");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let w = positive_weights(1_200, 1 << 16, 9);
    group.bench_function("knuth_n1200", |b| b.iter(|| knuth_obst(&w)));
    group.bench_function("parallel_diagonal_n1200", |b| b.iter(|| parallel_obst(&w)));
    let small = positive_weights(300, 1 << 16, 9);
    group.bench_function("naive_cubic_n300", |b| b.iter(|| naive_obst(&small)));
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_glws");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &bias in &[20u32, 90] {
        let parent = random_tree(10_000, bias, 4);
        let lens = tree_edge_lengths(10_000, 4, 4);
        let inst = TreeGlwsInstance::new(
            parent,
            &lens,
            0,
            |du, dv| {
                let len = (dv - du) as i64;
                25 + len * len
            },
            |d, _| d,
        );
        group.bench_with_input(BenchmarkId::new("parallel_levels", bias), &inst, |b, i| {
            b.iter(|| parallel_tree_glws(i))
        });
        group.bench_with_input(BenchmarkId::new("parallel_hld", bias), &inst, |b, i| {
            b.iter(|| parallel_tree_glws_hld(i, CostShape::Convex))
        });
        group.bench_with_input(BenchmarkId::new("sequential_scan", bias), &inst, |b, i| {
            b.iter(|| naive_tree_glws(i))
        });
    }
    group.finish();
}

/// The Theorem 5.3 ablation sweep: old ancestor-rescan cordon vs the
/// heavy-light one across tree *shapes*, from h ≈ n (path, caterpillar —
/// where the rescan is quadratic) to h = Θ(log n) (balanced — where it was
/// never the bottleneck).
fn bench_tree_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_glws_shapes");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let n = 6_000usize;
    let shapes: Vec<(&str, Vec<usize>)> = vec![
        ("deep_path", path_tree(n)),
        ("deep_caterpillar", caterpillar_tree(n, n / 2, 8)),
        ("shallow_balanced", balanced_tree(n, 4)),
    ];
    for (name, parent) in shapes {
        let lens = tree_edge_lengths(n, 3, 8);
        let inst = TreeGlwsInstance::new(
            parent,
            &lens,
            0,
            |du, dv| {
                let len = (dv - du) as i64;
                25 + len * len
            },
            |d, _| d,
        );
        group.bench_with_input(BenchmarkId::new("old_cordon", name), &inst, |b, i| {
            b.iter(|| parallel_tree_glws(i))
        });
        group.bench_with_input(BenchmarkId::new("hld_cordon", name), &inst, |b, i| {
            b.iter(|| parallel_tree_glws_hld(i, CostShape::Convex))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kglws,
    bench_obst,
    bench_tree,
    bench_tree_shapes
);
criterion_main!(benches);
