//! Criterion bench for the GAP edit distance (Theorem 5.2's recurrence):
//! parallel frontier evaluation vs the optimized sequential Γ_gap vs the
//! cubic naive recurrence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_gap::{convex_gap_instance, naive_gap, parallel_gap, sequential_gap};
use pardp_workloads::gap_strings;
use std::time::Duration;

fn bench_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[200usize, 600] {
        let (a, b) = gap_strings(n, n - n / 10, 4, 5);
        let inst = convex_gap_instance(&a, &b, 20, 1, 1);
        group.bench_with_input(BenchmarkId::new("parallel_frontier", n), &inst, |bn, i| {
            bn.iter(|| parallel_gap(i))
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_glws_rows", n),
            &inst,
            |bn, i| bn.iter(|| sequential_gap(i)),
        );
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("naive_cubic", n), &inst, |bn, i| {
                bn.iter(|| naive_gap(i))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gap);
criterion_main!(benches);
