//! Criterion bench for Theorem 3.1: LIS, parallel cordon/tournament vs the
//! sequential O(n log k) algorithm, swept over the LIS length `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_lis::{parallel_lis, sequential_lis};
use pardp_workloads::lis_with_length;
use std::time::Duration;

fn bench_lis(c: &mut Criterion) {
    let n = 200_000usize;
    let mut group = c.benchmark_group("lis");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[10usize, 1_000, 100_000] {
        let a = lis_with_length(n, k, 11);
        group.bench_with_input(BenchmarkId::new("parallel_cordon", k), &a, |b, a| {
            b.iter(|| parallel_lis(a))
        });
        group.bench_with_input(BenchmarkId::new("sequential_fenwick", k), &a, |b, a| {
            b.iter(|| sequential_lis(a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lis);
criterion_main!(benches);
