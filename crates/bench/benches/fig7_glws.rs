//! Criterion bench for Figure 7: convex GLWS (post office), parallel cordon
//! (Alg. 1) vs sequential Galil–Park vs the naive quadratic DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_glws::{naive_glws, parallel_convex_glws, sequential_convex_glws, PostOfficeProblem};
use pardp_workloads::post_office_instance;
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let n = 200_000usize;
    let mut group = c.benchmark_group("fig7_convex_glws");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[10usize, 1_000, 50_000] {
        let inst = post_office_instance(n, k, 7);
        let problem = PostOfficeProblem::new(inst.coords, inst.open_cost);
        group.bench_with_input(BenchmarkId::new("parallel_cordon", k), &problem, |b, p| {
            b.iter(|| parallel_convex_glws(p))
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_galil_park", k),
            &problem,
            |b, p| b.iter(|| sequential_convex_glws(p)),
        );
    }
    // The quadratic baseline only at a size where it terminates quickly.
    let small = post_office_instance(4_000, 50, 7);
    let problem = PostOfficeProblem::new(small.coords, small.open_cost);
    group.bench_function("naive_quadratic_n4000", |b| b.iter(|| naive_glws(&problem)));
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
