//! Criterion bench for the OAT pipeline (Theorem 5.1's sequential substrate):
//! Garsia–Wachs vs the interval DP, plus the height check of Lemma 5.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_oat::{garsia_wachs, interval_dp_oat};
use pardp_workloads::{positive_weights, skewed_weights};
use std::time::Duration;

fn bench_oat(c: &mut Criterion) {
    let mut group = c.benchmark_group("oat");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[2_000usize, 8_000] {
        let uniform = positive_weights(n, 1 << 20, 3);
        group.bench_with_input(
            BenchmarkId::new("garsia_wachs_uniform", n),
            &uniform,
            |b, w| b.iter(|| garsia_wachs(w)),
        );
        let skewed = skewed_weights(n, 1 << 20, 64, 3);
        group.bench_with_input(
            BenchmarkId::new("garsia_wachs_skewed", n),
            &skewed,
            |b, w| b.iter(|| garsia_wachs(w)),
        );
    }
    let small = positive_weights(1_000, 1 << 20, 3);
    group.bench_function("interval_dp_n1000", |b| b.iter(|| interval_dp_oat(&small)));
    group.finish();
}

criterion_group!(benches, bench_oat);
criterion_main!(benches);
