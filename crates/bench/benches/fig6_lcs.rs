//! Criterion bench for Figure 6: sparse LCS, parallel cordon vs sequential
//! Hunt–Szymanski, swept over the LCS length `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardp_lcs::{parallel_sparse_lcs, sequential_sparse_lcs, MatchPair};
use pardp_workloads::lcs_pairs_with;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let l = 200_000usize;
    let mut group = c.benchmark_group("fig6_sparse_lcs");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &k in &[100usize, 10_000, 200_000] {
        let pairs: Vec<MatchPair> = lcs_pairs_with(l, k, 42)
            .into_iter()
            .map(|(i, j)| MatchPair { i, j })
            .collect();
        group.bench_with_input(BenchmarkId::new("parallel_cordon", k), &pairs, |b, p| {
            b.iter(|| parallel_sparse_lcs(p))
        });
        group.bench_with_input(BenchmarkId::new("sequential_hs", k), &pairs, |b, p| {
            b.iter(|| sequential_sparse_lcs(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
