//! Per-rule fixture tests: every rule must fire on its seeded violation and
//! stay silent on the fixed form.  The fixture sources live under
//! `tests/fixtures/` (excluded from workspace scans) and are scanned here
//! under synthetic library paths so the library-only rules apply.

use pardp_analyze::{check_file, scan_file_source, Config, Finding};

const LIB_PATH: &str = "crates/fixture/src/lib.rs";

fn findings(rel_path: &str, src: &str, config: &Config) -> Vec<Finding> {
    check_file(&scan_file_source(rel_path, src), config)
}

fn rules_of(found: &[Finding]) -> Vec<&str> {
    found.iter().map(|f| f.rule).collect()
}

#[test]
fn unsafe_rules_fire_and_clear() {
    let config =
        Config::parse("unsafe-whitelist crates/fixture/src/lib.rs\n").expect("valid allowlist");
    let bad = findings(
        LIB_PATH,
        include_str!("fixtures/unsafe_bad.rs"),
        &Config::empty(),
    );
    assert!(rules_of(&bad).contains(&"unsafe-whitelist"), "{bad:?}");
    assert!(rules_of(&bad).contains(&"unsafe-safety-comment"), "{bad:?}");

    // Whitelisting the file clears the location rule but not the missing
    // SAFETY justification.
    let still = findings(LIB_PATH, include_str!("fixtures/unsafe_bad.rs"), &config);
    assert!(!rules_of(&still).contains(&"unsafe-whitelist"), "{still:?}");
    assert!(
        rules_of(&still).contains(&"unsafe-safety-comment"),
        "{still:?}"
    );

    let good = findings(LIB_PATH, include_str!("fixtures/unsafe_good.rs"), &config);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn ordering_rule_fires_and_clears() {
    let bad = findings(
        LIB_PATH,
        include_str!("fixtures/ordering_bad.rs"),
        &Config::empty(),
    );
    assert_eq!(rules_of(&bad), vec!["ordering-comment"; 2], "{bad:?}");

    let good = findings(
        LIB_PATH,
        include_str!("fixtures/ordering_good.rs"),
        &Config::empty(),
    );
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn hot_round_alloc_rule_fires_and_clears() {
    let bad = findings(
        LIB_PATH,
        include_str!("fixtures/hot_round_alloc_bad.rs"),
        &Config::empty(),
    );
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "hot-round-alloc").count(),
        3,
        "collect, to_vec and with_capacity inside round: {bad:?}"
    );

    let good = findings(
        LIB_PATH,
        include_str!("fixtures/hot_round_alloc_good.rs"),
        &Config::empty(),
    );
    assert!(
        good.is_empty(),
        "constructor allocation must not be flagged: {good:?}"
    );
}

#[test]
fn raw_parallelism_rule_fires_and_clears() {
    let bad = findings(
        LIB_PATH,
        include_str!("fixtures/raw_parallelism_bad.rs"),
        &Config::empty(),
    );
    let rules = rules_of(&bad);
    assert!(
        rules.iter().filter(|r| **r == "raw-parallelism").count() >= 4,
        "Mutex, Condvar, thread::spawn and thread::Builder: {bad:?}"
    );

    let good = findings(
        LIB_PATH,
        include_str!("fixtures/raw_parallelism_good.rs"),
        &Config::empty(),
    );
    assert!(
        good.is_empty(),
        "rayon facade + inline allows must be clean: {good:?}"
    );
}

#[test]
fn no_panics_rule_fires_and_clears() {
    let bad = findings(
        LIB_PATH,
        include_str!("fixtures/no_panics_bad.rs"),
        &Config::empty(),
    );
    assert_eq!(rules_of(&bad), vec!["no-panics"; 3], "{bad:?}");

    let good = findings(
        LIB_PATH,
        include_str!("fixtures/no_panics_good.rs"),
        &Config::empty(),
    );
    assert!(
        good.is_empty(),
        "typed errors and cfg(test) unwraps must be clean: {good:?}"
    );
}

#[test]
fn library_only_rules_skip_test_binaries() {
    // The same panicking source under a non-library path is fine (L2-L5 are
    // library-only); the unsafe rules still apply everywhere.
    let found = findings(
        "tests/some_integration_test.rs",
        include_str!("fixtures/no_panics_bad.rs"),
        &Config::empty(),
    );
    assert!(found.is_empty(), "{found:?}");
}
