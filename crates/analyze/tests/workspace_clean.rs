//! The workspace gate: `pardp-analyze` must report zero findings at HEAD with
//! the committed allowlist — the same invocation CI runs.

use std::path::Path;

use pardp_analyze::{analyze_root, Config};

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let allowlist = root.join("crates").join("analyze").join("allowlist.txt");
    let config = Config::load(&allowlist).expect("committed allowlist parses");
    let report = analyze_root(&root, &config).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "the tree must be clean at HEAD; run `cargo run -p pardp-analyze` and \
         fix (or justify) each finding:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "scan unexpectedly small: {} files",
        report.files_scanned
    );
}
