//! Fixed form: parallelism goes through the rayon facade; the one Mutex that
//! must stay (driver-only bookkeeping) carries an inline allow annotation.

// analyze: allow(raw-parallelism): driver-only bookkeeping outside the
// parallel hot path; the fixture documents the annotation escape hatch.
use std::sync::Mutex;

pub struct Log {
    // analyze: allow(raw-parallelism): see the import note above.
    lines: Mutex<Vec<String>>,
}

pub fn run_in_background(f: impl FnOnce() + Send) {
    rayon::scope(|s| s.spawn(|_| f()));
}
