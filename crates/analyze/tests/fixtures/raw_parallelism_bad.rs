//! Seeded violation: ad-hoc threads and raw synchronization outside the pool.

use std::sync::{Condvar, Mutex};

pub struct Queue {
    items: Mutex<Vec<u64>>,
    ready: Condvar,
}

pub fn run_in_background(f: impl FnOnce() + Send + 'static) {
    std::thread::spawn(f);
}

pub fn run_named(f: impl FnOnce() + Send + 'static) {
    let _ = std::thread::Builder::new().name("bg".into()).spawn(f);
}
