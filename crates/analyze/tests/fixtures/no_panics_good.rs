//! Fixed form: typed errors (or total functions) in library code; unwraps are
//! free inside `#[cfg(test)]` modules.

pub fn head(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

pub fn fallback(x: Option<u64>) -> u64 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Vec<u8> = vec![1, 2];
        assert_eq!(*w.first().expect("non-empty"), 1);
    }
}
