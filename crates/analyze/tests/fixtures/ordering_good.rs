//! Fixed form: every ordering carries a justification, on the same line or in
//! the comment block directly above.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static COUNT: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    // ordering: SeqCst — this counter doubles as a crude fence in the
    // fixture's imaginary protocol.
    COUNT.fetch_add(1, Ordering::SeqCst)
}

pub fn read() -> usize {
    COUNT.load(Ordering::Acquire) // ordering: pairs with the SeqCst bump
}

pub fn cmp(a: u32, b: u32) -> std::cmp::Ordering {
    // `cmp::Ordering` variants are not atomic orderings; no comment needed.
    a.cmp(&b).then(std::cmp::Ordering::Equal)
}
