//! Seeded violation: allocation inside a `PhaseParallel` round body.

pub struct Counting {
    left: usize,
}

impl PhaseParallel for Counting {
    type Output = Vec<usize>;

    fn is_done(&self) -> bool {
        self.left == 0
    }

    fn round(&mut self, _metrics: &MetricsCollector) -> usize {
        let batch: Vec<usize> = (0..self.left).collect();
        let copy = batch.to_vec();
        let staged = Vec::with_capacity(copy.len());
        drop(staged);
        self.left = 0;
        batch.len()
    }
}
