//! Seeded violation: panicking calls in library code.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("not a number")
}

pub fn fail() {
    panic!("unconditional");
}
