//! Seeded violation: atomic orderings without `// ordering:` justifications.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static COUNT: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    COUNT.fetch_add(1, Ordering::SeqCst)
}

pub fn read() -> usize {
    COUNT.load(Ordering::Acquire)
}
