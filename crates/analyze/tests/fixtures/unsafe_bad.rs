//! Seeded violation: `unsafe` outside the whitelist, without a SAFETY note.

pub fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
