//! Fixed form: buffers live on the instance, built in the constructor; the
//! round body only reuses them.  Allocation outside round bodies is fine.

pub struct Counting {
    left: usize,
    scratch: Vec<usize>,
}

impl Counting {
    pub fn new(n: usize) -> Self {
        Counting {
            left: n,
            scratch: Vec::with_capacity(n),
        }
    }
}

impl PhaseParallel for Counting {
    type Output = Vec<usize>;

    fn is_done(&self) -> bool {
        self.left == 0
    }

    fn round(&mut self, _metrics: &MetricsCollector) -> usize {
        self.scratch.clear();
        self.scratch.extend(0..self.left);
        self.left = 0;
        self.scratch.len()
    }
}
