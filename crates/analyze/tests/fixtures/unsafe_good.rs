//! Fixed form: the same block inside a whitelisted file with a SAFETY note
//! (the test scans this source under the whitelisted path).

pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
