//! Command-line front end for `pardp-analyze`.
//!
//! ```text
//! cargo run -p pardp-analyze -- --deny-all --json analyze_findings.json
//! ```
//!
//! Exit codes: `0` clean (or findings in warn-only mode), `1` findings under
//! `--deny-all`, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pardp_analyze::{analyze_root, Config, RULES};

const USAGE: &str = "\
pardp-analyze: static enforcement of the workspace's concurrency contracts

USAGE:
    pardp-analyze [OPTIONS]

OPTIONS:
    --root <DIR>        Workspace root to scan (default: auto-detected from cwd)
    --allowlist <FILE>  Allowlist file (default: <root>/crates/analyze/allowlist.txt)
    --json <FILE>       Also write machine-readable findings to <FILE>
    --deny-all          Exit non-zero when any finding is reported
    --quiet             Suppress per-finding output (summary only)
    --list-rules        Print the rule catalogue and exit
    --help              Show this help
";

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
    deny_all: bool,
    quiet: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        json: None,
        deny_all: false,
        quiet: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist requires a file argument")?;
                opts.allowlist = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json requires a file argument")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--deny-all" => opts.deny_all = true,
            "--quiet" => opts.quiet = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Walk up from the current directory to the first ancestor that contains
/// `crates/analyze` — the workspace root, wherever the binary was invoked.
fn detect_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors()
        .find(|d| d.join("crates/analyze").is_dir() && d.join("Cargo.toml").is_file())
        .map(PathBuf::from)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (id, summary) in RULES {
            println!("{id:<24} {summary}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = opts.root.or_else(detect_root) else {
        eprintln!("error: could not locate the workspace root; pass --root <DIR>");
        return ExitCode::from(2);
    };
    let allowlist = opts
        .allowlist
        .unwrap_or_else(|| root.join("crates/analyze/allowlist.txt"));
    let config = match Config::load(&allowlist) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("error: allowlist: {err}");
            return ExitCode::from(2);
        }
    };
    let report = match analyze_root(&root, &config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for finding in &report.findings {
            println!("{finding}");
        }
    }
    println!(
        "pardp-analyze: {} finding(s) across {} file(s)",
        report.findings.len(),
        report.files_scanned
    );

    if let Some(json_path) = &opts.json {
        if let Err(err) = std::fs::write(json_path, report.to_json()) {
            eprintln!("error: writing {}: {err}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if opts.deny_all && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
