//! `pardp-analyze` — static enforcement of the workspace's concurrency
//! contracts.
//!
//! The engine's central guarantees — bit-identical results at any thread
//! count, zero-allocation steady-state rounds, and `unsafe` confined to the
//! scoped-job pool — are enforced dynamically by `tests/determinism.rs` and
//! `tests/alloc_counting.rs`, which only catch a violation on the inputs they
//! happen to run.  This crate makes the contracts *un-regressable*: a
//! hand-rolled, comment/string-aware token scanner (no `syn`; this build
//! environment has no registry access, consistent with the `crates/compat`
//! philosophy) walks every Rust source in the workspace and a small rule
//! engine reports violations of the invariants below.
//!
//! # Rules
//!
//! | id                      | invariant                                                              |
//! |-------------------------|------------------------------------------------------------------------|
//! | `unsafe-whitelist`      | `unsafe` appears only in allowlisted files (the scoped-job pool)        |
//! | `unsafe-safety-comment` | every `unsafe` token carries a `// SAFETY:` / `# Safety` justification  |
//! | `ordering-comment`      | every atomic `Ordering::*` use carries a `// ordering:` justification   |
//! | `hot-round-alloc`       | no allocation calls inside `PhaseParallel::round`/`round_with` bodies   |
//! | `raw-parallelism`       | no `std::thread::spawn` / raw `Mutex` / `Condvar` outside the rayon shim|
//! | `no-panics`             | no `unwrap()` / `expect()` / `panic!` in library code                   |
//!
//! # Scope
//!
//! `unsafe-whitelist` and `unsafe-safety-comment` apply to **every** scanned
//! file (tests included: a test that needs `unsafe` must justify it).  The
//! other rules apply to **library code** only — `src/**` and `crates/*/src/**`
//! minus `src/bin/**` — and skip `#[cfg(test)]` module bodies, because tests
//! legitimately allocate, panic on failure, and orchestrate raw threads to
//! exercise the pool.
//!
//! # Exceptions
//!
//! Justified exceptions come in two forms, both committed to the repo:
//!
//! * a line in the allowlist file (`crates/analyze/allowlist.txt`):
//!   `<rule-id> <path-prefix>`, e.g.
//!   `unsafe-whitelist crates/compat/rayon/src/pool.rs`;
//! * an inline annotation on the offending line or in the comment block
//!   directly above it: `// analyze: allow(<rule-id>): <reason>`.
//!
//! Findings are reported human-readably and, via [`Report::to_json`], as a
//! machine-readable document that CI uploads as an artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// All rule identifiers, with a one-line summary each.
pub const RULES: &[(&str, &str)] = &[
    (
        "unsafe-whitelist",
        "`unsafe` is allowed only in allowlisted files (the scoped-job pool)",
    ),
    (
        "unsafe-safety-comment",
        "every `unsafe` must carry a `// SAFETY:` (or `# Safety` doc) justification",
    ),
    (
        "ordering-comment",
        "every atomic `Ordering::*` use must carry a `// ordering:` justification",
    ),
    (
        "hot-round-alloc",
        "no allocation calls inside `PhaseParallel::round`/`round_with` bodies",
    ),
    (
        "raw-parallelism",
        "no `std::thread::spawn`/`Mutex`/`Condvar` outside the rayon shim",
    ),
    (
        "no-panics",
        "no `unwrap()`/`expect()`/`panic!` in library code (typed errors are the house style)",
    ),
];

/// Returns true if `rule` is one of the identifiers in [`RULES`].
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Path of the offending file, relative to the analysis root.
    pub file: String,
    /// 1-based line number of the offending token.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of analyzing a set of files.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Serialize the report as a small, dependency-free JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors produced while loading inputs (never while scanning source text).
#[derive(Debug)]
pub enum AnalyzeError {
    /// A file or directory could not be read.
    Io(PathBuf, std::io::Error),
    /// The allowlist file is malformed.
    Allowlist {
        /// Path of the allowlist file.
        path: PathBuf,
        /// 1-based line of the malformed entry.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io(path, err) => write!(f, "{}: {err}", path.display()),
            AnalyzeError::Allowlist {
                path,
                line,
                message,
            } => {
                write!(f, "{}:{line}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Committed per-rule path exemptions (see the allowlist file format in the
/// crate docs).
#[derive(Debug, Clone, Default)]
pub struct Config {
    entries: Vec<(String, String)>,
}

impl Config {
    /// Empty configuration: no path-level exemptions.
    pub fn empty() -> Self {
        Config::default()
    }

    /// Parse allowlist text: one `<rule-id> <path-prefix>` entry per line,
    /// `#` starts a comment, blank lines ignored.  Unknown rule ids are an
    /// error so typos cannot silently disable a rule.
    pub fn parse(text: &str) -> Result<Self, (usize, String)> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let rule = parts.next().unwrap_or("");
            let prefix = parts.next().unwrap_or("");
            if prefix.is_empty() || parts.next().is_some() {
                return Err((
                    idx + 1,
                    format!("expected `<rule-id> <path-prefix>`, got `{line}`"),
                ));
            }
            if !is_known_rule(rule) {
                return Err((idx + 1, format!("unknown rule id `{rule}`")));
            }
            entries.push((rule.to_string(), prefix.to_string()));
        }
        Ok(Config { entries })
    }

    /// Load an allowlist from disk.
    pub fn load(path: &Path) -> Result<Self, AnalyzeError> {
        let text = fs::read_to_string(path).map_err(|e| AnalyzeError::Io(path.to_path_buf(), e))?;
        Config::parse(&text).map_err(|(line, message)| AnalyzeError::Allowlist {
            path: path.to_path_buf(),
            line,
            message,
        })
    }

    /// True when `rule` is exempted for `rel_path` by a path-prefix entry.
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, prefix)| r == rule && rel_path.starts_with(prefix.as_str()))
    }
}

// ---------------------------------------------------------------------------
// Lexer: comment/string-aware tokenization.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    line: usize,
    tok: Tok,
}

impl SpannedTok {
    fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(p) if *p == c)
    }
}

/// A scanned source file: tokens with comments and structure side tables.
#[derive(Debug, Clone)]
pub struct FileScan {
    /// Path relative to the analysis root (`/`-separated).
    pub rel_path: String,
    tokens: Vec<SpannedTok>,
    /// line -> concatenated comment text appearing on that line.
    comments: BTreeMap<usize, String>,
    /// Lines carrying at least one code token.
    code_lines: BTreeSet<usize>,
    /// Lines covered by an attribute (`#[...]` / `#![...]`).
    attr_lines: BTreeSet<usize>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod` bodies.
    test_spans: Vec<(usize, usize)>,
}

/// Tokenize `src`, skipping comments and literals but recording comment text
/// per line, and locate `#[cfg(test)]` module bodies.
pub fn scan_file_source(rel_path: &str, src: &str) -> FileScan {
    let chars: Vec<char> = src.chars().collect();
    let len = chars.len();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut tokens: Vec<SpannedTok> = Vec::new();
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();

    fn add_comment(map: &mut BTreeMap<usize, String>, line: usize, text: &str) {
        let slot = map.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }

    while i < len {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < len && chars[i + 1] == '/' {
            let start = i;
            while i < len && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            add_comment(&mut comments, line, &text);
            continue;
        }
        if c == '/' && i + 1 < len && chars[i + 1] == '*' {
            // Rust block comments nest.
            i += 2;
            let mut depth = 1usize;
            let mut buf = String::new();
            while i < len && depth > 0 {
                if chars[i] == '/' && i + 1 < len && chars[i + 1] == '*' {
                    depth += 1;
                    buf.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < len && chars[i + 1] == '/' {
                    depth -= 1;
                    buf.push_str("*/");
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        add_comment(&mut comments, line, &buf);
                        buf.clear();
                        line += 1;
                    } else {
                        buf.push(chars[i]);
                    }
                    i += 1;
                }
            }
            if !buf.is_empty() {
                add_comment(&mut comments, line, &buf);
            }
            continue;
        }
        // String literals.
        if c == '"' {
            i += 1;
            while i < len {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            if i + 1 < len && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                let mut j = i + 2;
                while j < len && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j < len && chars[j] == '\'' {
                    // 'a' — a char literal.
                    i = j + 1;
                } else {
                    // 'scope — a lifetime; skip the quote and the name.
                    i = j;
                }
            } else {
                // '\n', '\u{..}', '(' — an escaped or symbolic char literal.
                i += 1;
                while i < len {
                    if chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        i += 1;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Numbers (consumed, not emitted — no rule matches them).
        if c.is_ascii_digit() {
            while i < len && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            continue;
        }
        // Identifiers, raw strings, byte strings, raw identifiers.
        if c.is_alphabetic() || c == '_' {
            if let Some(next) = try_skip_literal_prefix(&chars, i, &mut line) {
                i = next;
                continue;
            }
            let start = i;
            while i < len && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            tokens.push(SpannedTok {
                line,
                tok: Tok::Ident(name),
            });
            continue;
        }
        tokens.push(SpannedTok {
            line,
            tok: Tok::Punct(c),
        });
        i += 1;
    }

    let code_lines: BTreeSet<usize> = tokens.iter().map(|t| t.line).collect();
    let (attr_lines, test_spans) = structure_pass(&tokens);
    FileScan {
        rel_path: rel_path.to_string(),
        tokens,
        comments,
        code_lines,
        attr_lines,
        test_spans,
    }
}

/// If position `i` starts a raw string (`r"`, `r#"`), byte/C string (`b"`,
/// `br#"`, `c"`, `cr#"`) or raw identifier (`r#name`), consume the literal
/// (or just the `r#` prefix) and return the next scan position.
fn try_skip_literal_prefix(chars: &[char], i: usize, line: &mut usize) -> Option<usize> {
    let len = chars.len();
    let c = chars[i];
    if c != 'r' && c != 'b' && c != 'c' {
        return None;
    }
    // Parse the prefix: optional `b`/`c`, then optional `r`, then `#`*.
    let mut j = i + 1;
    let mut raw = c == 'r';
    if (c == 'b' || c == 'c') && j < len && chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while j < len && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j < len && chars[j] == '"' {
        j += 1;
        if raw {
            // Raw body: no escapes; ends at `"` followed by `hashes` hashes.
            while j < len {
                if chars[j] == '\n' {
                    *line += 1;
                }
                if chars[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && j + 1 + k < len && chars[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        return Some(j + 1 + hashes);
                    }
                }
                j += 1;
            }
            return Some(j);
        }
        // `b"..."` / `c"..."`: plain string body with live escapes.
        while j < len {
            if chars[j] == '\\' {
                j += 2;
                continue;
            }
            if chars[j] == '"' {
                return Some(j + 1);
            }
            if chars[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
        return Some(j);
    }
    if c == 'r' && hashes == 1 && j < len && (chars[j].is_alphabetic() || chars[j] == '_') {
        // Raw identifier `r#name`: skip the prefix, lex the name normally.
        return Some(i + 2);
    }
    None
}

/// Post-pass over tokens: mark attribute lines and locate `#[cfg(test)] mod`
/// body line spans.
fn structure_pass(tokens: &[SpannedTok]) -> (BTreeSet<usize>, Vec<(usize, usize)>) {
    let mut attr_lines = BTreeSet::new();
    let mut test_spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct('!') {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        // Bracket-match the attribute body.
        let mut depth = 0i32;
        let mut has_cfg = false;
        let mut has_test = false;
        let mut has_not = false;
        let attr_start = i;
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[j].is_ident("cfg") {
                has_cfg = true;
            } else if tokens[j].is_ident("test") {
                has_test = true;
            } else if tokens[j].is_ident("not") {
                has_not = true;
            }
            j += 1;
        }
        let attr_end = j.min(tokens.len() - 1);
        for l in tokens[attr_start].line..=tokens[attr_end].line {
            attr_lines.insert(l);
        }
        let mut k = attr_end + 1;
        if has_cfg && has_test && !has_not {
            // Skip further attributes and visibility to see if a module
            // follows; record its brace span as test scope.
            while k < tokens.len() && tokens[k].is_punct('#') {
                let mut d = 0i32;
                while k < tokens.len() {
                    if tokens[k].is_punct('[') {
                        d += 1;
                    } else if tokens[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
            }
            if k < tokens.len() && tokens[k].is_ident("pub") {
                k += 1;
                if k < tokens.len() && tokens[k].is_punct('(') {
                    while k < tokens.len() && !tokens[k].is_punct(')') {
                        k += 1;
                    }
                    k += 1;
                }
            }
            if k + 1 < tokens.len() && tokens[k].is_ident("mod") {
                let mut b = k + 1;
                while b < tokens.len() && !tokens[b].is_punct('{') && !tokens[b].is_punct(';') {
                    b += 1;
                }
                if b < tokens.len() && tokens[b].is_punct('{') {
                    if let Some(close) = matching_brace(tokens, b) {
                        test_spans.push((tokens[b].line, tokens[close].line));
                    }
                }
            }
        }
        i = attr_end + 1;
    }
    (attr_lines, test_spans)
}

/// Index of the `}` matching the `{` at `open` (which must be a `{`).
fn matching_brace(tokens: &[SpannedTok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in tokens[open..].iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(open + off);
            }
        }
    }
    None
}

impl FileScan {
    fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// True when a comment containing any of `needles` sits on `line` itself
    /// or in the contiguous comment/attribute/blank block directly above it.
    fn justified_near(&self, line: usize, needles: &[&str]) -> bool {
        let hit = |l: usize| {
            self.comments
                .get(&l)
                .is_some_and(|text| needles.iter().any(|n| text.contains(n)))
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        let mut steps = 0usize;
        while l > 1 && steps < 80 {
            l -= 1;
            steps += 1;
            let comment = self.comments.contains_key(&l);
            let code = self.code_lines.contains(&l);
            let attr = self.attr_lines.contains(&l);
            if comment && hit(l) {
                return true;
            }
            if code && !attr {
                // A real code line terminates the block.
                return false;
            }
            // Blank, comment-only, or attribute line: keep walking up.
        }
        false
    }

    /// True when an `// analyze: allow(<rule>)` annotation covers `line`.
    fn allowed_inline(&self, line: usize, rule: &str) -> bool {
        let needle = format!("analyze: allow({rule})");
        self.justified_near(line, &[&needle])
    }
}

// ---------------------------------------------------------------------------
// Rule engine.
// ---------------------------------------------------------------------------

/// True for paths the library-code rules apply to: `src/**` and
/// `crates/*/src/**`, excluding `src/bin/**` (binaries may print-and-exit).
pub fn is_library_path(rel: &str) -> bool {
    let under_src =
        rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    under_src && !rel.contains("/bin/")
}

/// Run every rule against one scanned file.
pub fn check_file(scan: &FileScan, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_unsafe(scan, config, &mut findings);
    if is_library_path(&scan.rel_path) {
        check_ordering(scan, config, &mut findings);
        check_hot_round_alloc(scan, config, &mut findings);
        check_raw_parallelism(scan, config, &mut findings);
        check_no_panics(scan, config, &mut findings);
    }
    findings
}

fn push_finding(
    findings: &mut Vec<Finding>,
    scan: &FileScan,
    config: &Config,
    rule: &'static str,
    line: usize,
    message: String,
) {
    if config.allows(rule, &scan.rel_path) || scan.allowed_inline(line, rule) {
        return;
    }
    findings.push(Finding {
        rule,
        file: scan.rel_path.clone(),
        line,
        message,
    });
}

/// L1: `unsafe` only in allowlisted files, and every `unsafe` justified.
fn check_unsafe(scan: &FileScan, config: &Config, findings: &mut Vec<Finding>) {
    for t in &scan.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        push_finding(
            findings,
            scan,
            config,
            "unsafe-whitelist",
            t.line,
            "`unsafe` outside the allowlisted scoped-job pool; route parallelism through \
             `crates/compat/rayon` or add a justified exception"
                .to_string(),
        );
        if !scan.justified_near(t.line, &["SAFETY", "# Safety"]) {
            push_finding(
                findings,
                scan,
                config,
                "unsafe-safety-comment",
                t.line,
                "`unsafe` without a `// SAFETY:` (or `# Safety` doc) justification".to_string(),
            );
        }
    }
}

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// L2: every atomic `Ordering::<variant>` use carries an `// ordering:`
/// justification.  `std::cmp::Ordering` variants do not match.
fn check_ordering(scan: &FileScan, config: &Config, findings: &mut Vec<Finding>) {
    let t = &scan.tokens;
    for i in 0..t.len() {
        if !t[i].is_ident("Ordering") {
            continue;
        }
        if i + 3 >= t.len() || !t[i + 1].is_punct(':') || !t[i + 2].is_punct(':') {
            continue;
        }
        let Tok::Ident(variant) = &t[i + 3].tok else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&variant.as_str()) {
            continue;
        }
        if scan.in_test_span(t[i].line) {
            continue;
        }
        if !scan.justified_near(t[i].line, &["ordering:"]) {
            push_finding(
                findings,
                scan,
                config,
                "ordering-comment",
                t[i].line,
                format!("atomic `Ordering::{variant}` without an `// ordering:` justification"),
            );
        }
    }
}

/// L3: no allocation calls inside `round`/`round_with` bodies of
/// `PhaseParallel` impls — the static form of `tests/alloc_counting.rs`.
fn check_hot_round_alloc(scan: &FileScan, config: &Config, findings: &mut Vec<Finding>) {
    let t = &scan.tokens;
    let mut i = 0usize;
    while i < t.len() {
        if !t[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Find the impl body `{`, tracking `<...>` nesting and skipping the
        // `>` of `->` arrows so generic headers parse correctly.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut names_phase_parallel = false;
        let mut body_open: Option<usize> = None;
        while j < t.len() {
            match &t[j].tok {
                Tok::Ident(name) if name == "PhaseParallel" => names_phase_parallel = true,
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !(j > 0 && t[j - 1].is_punct('-')) => angle -= 1,
                Tok::Punct('{') if angle <= 0 => {
                    body_open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        if !names_phase_parallel {
            i = open;
            continue;
        }
        let Some(close) = matching_brace(t, open) else {
            i = open + 1;
            continue;
        };
        // Inside the impl body, find `fn round` / `fn round_with` bodies.
        let mut k = open + 1;
        while k < close {
            let is_round_fn = t[k].is_ident("fn")
                && k + 1 < close
                && (t[k + 1].is_ident("round") || t[k + 1].is_ident("round_with"));
            if !is_round_fn {
                k += 1;
                continue;
            }
            let fn_name = match &t[k + 1].tok {
                Tok::Ident(n) => n.clone(),
                Tok::Punct(_) => String::new(),
            };
            let mut b = k + 2;
            while b < close && !t[b].is_punct('{') {
                b += 1;
            }
            let Some(fn_close) = matching_brace(t, b) else {
                break;
            };
            scan_alloc_patterns(scan, config, t, b, fn_close, &fn_name, findings);
            k = fn_close + 1;
        }
        i = close + 1;
    }
}

/// Flag the allocation forms listed by the rule within `tokens[open..close]`.
#[allow(clippy::too_many_arguments)]
fn scan_alloc_patterns(
    scan: &FileScan,
    config: &Config,
    t: &[SpannedTok],
    open: usize,
    close: usize,
    fn_name: &str,
    findings: &mut Vec<Finding>,
) {
    let mut report = |line: usize, what: &str| {
        push_finding(
            findings,
            scan,
            config,
            "hot-round-alloc",
            line,
            format!(
                "`{what}` inside `PhaseParallel::{fn_name}`: hot-round bodies must not \
                 allocate (hoist into the constructor or the `FrontierArena`)"
            ),
        );
    };
    let mut i = open;
    while i < close {
        match &t[i].tok {
            Tok::Ident(name)
                if (name == "Vec" || name == "Box")
                    && i + 3 < close
                    && t[i + 1].is_punct(':')
                    && t[i + 2].is_punct(':')
                    && t[i + 3].is_ident("new") =>
            {
                report(t[i].line, &format!("{name}::new"));
                i += 4;
                continue;
            }
            Tok::Ident(name) if name == "vec" && i + 1 < close && t[i + 1].is_punct('!') => {
                report(t[i].line, "vec!");
                i += 2;
                continue;
            }
            Tok::Ident(name) if name == "with_capacity" => {
                report(t[i].line, "with_capacity");
            }
            Tok::Punct('.') if i + 1 < close && t[i + 1].is_ident("collect") => {
                report(t[i + 1].line, ".collect()");
                i += 2;
                continue;
            }
            Tok::Punct('.') if i + 1 < close && t[i + 1].is_ident("to_vec") => {
                report(t[i + 1].line, ".to_vec()");
                i += 2;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// L4: all parallelism flows through the rayon shim — no raw `Mutex`,
/// `Condvar`, or `thread::spawn` elsewhere, so determinism and grain policy
/// stay centralized.
fn check_raw_parallelism(scan: &FileScan, config: &Config, findings: &mut Vec<Finding>) {
    let t = &scan.tokens;
    for i in 0..t.len() {
        if scan.in_test_span(t[i].line) {
            continue;
        }
        match &t[i].tok {
            Tok::Ident(name) if name == "Mutex" || name == "Condvar" => {
                push_finding(
                    findings,
                    scan,
                    config,
                    "raw-parallelism",
                    t[i].line,
                    format!(
                        "raw `{name}` outside `crates/compat/rayon`: route synchronization \
                         through the shim so determinism and grain policy stay centralized"
                    ),
                );
            }
            Tok::Ident(name)
                if name == "thread"
                    && i + 3 < t.len()
                    && t[i + 1].is_punct(':')
                    && t[i + 2].is_punct(':')
                    && (t[i + 3].is_ident("spawn") || t[i + 3].is_ident("Builder")) =>
            {
                let Tok::Ident(what) = &t[i + 3].tok else {
                    continue;
                };
                push_finding(
                    findings,
                    scan,
                    config,
                    "raw-parallelism",
                    t[i].line,
                    format!("`thread::{what}` outside `crates/compat/rayon`: use the pool"),
                );
            }
            _ => {}
        }
    }
}

/// L5: no `unwrap()` / `expect()` / `panic!` in library code; typed errors
/// (`StallError`, `GapTracebackError`) are the house style.
fn check_no_panics(scan: &FileScan, config: &Config, findings: &mut Vec<Finding>) {
    let t = &scan.tokens;
    for i in 0..t.len() {
        if scan.in_test_span(t[i].line) {
            continue;
        }
        match &t[i].tok {
            Tok::Punct('.')
                if i + 2 < t.len()
                    && (t[i + 1].is_ident("unwrap") || t[i + 1].is_ident("expect"))
                    && t[i + 2].is_punct('(') =>
            {
                let Tok::Ident(method) = &t[i + 1].tok else {
                    continue;
                };
                push_finding(
                    findings,
                    scan,
                    config,
                    "no-panics",
                    t[i + 1].line,
                    format!(
                        "`.{method}()` in library code: return a typed error \
                         (house style: `StallError`/`GapTracebackError`)"
                    ),
                );
            }
            Tok::Ident(name) if name == "panic" && i + 1 < t.len() && t[i + 1].is_punct('!') => {
                push_finding(
                    findings,
                    scan,
                    config,
                    "no-panics",
                    t[i].line,
                    "`panic!` in library code: return a typed error instead".to_string(),
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Directories never scanned: build output, VCS metadata, and this crate's
/// seeded-violation fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git"];
const SKIP_PREFIXES: &[&str] = &["crates/analyze/tests/fixtures"];

/// Collect every `.rs` file under `root` (sorted, root-relative,
/// `/`-separated), skipping build output and the analyzer's own fixtures.
pub fn collect_rust_files(root: &Path) -> Result<Vec<String>, AnalyzeError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| AnalyzeError::Io(dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| AnalyzeError::Io(dir.clone(), e))?;
            let path = entry.path();
            let file_type = entry
                .file_type()
                .map_err(|e| AnalyzeError::Io(path.clone(), e))?;
            if file_type.is_symlink() {
                continue;
            }
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if file_type.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                stack.push(path);
            } else if rel.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every Rust source under `root` with `config`.
pub fn analyze_root(root: &Path, config: &Config) -> Result<Report, AnalyzeError> {
    let files = collect_rust_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for rel in &files {
        let path = root.join(rel);
        let src = fs::read_to_string(&path).map_err(|e| AnalyzeError::Io(path.clone(), e))?;
        let scan = scan_file_source(rel, &src);
        report.findings.extend(check_file(&scan, config));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_scan(src: &str) -> FileScan {
        scan_file_source("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let scan = lib_scan(
            "// unsafe in a comment\nlet s = \"unsafe Mutex panic!\";\n/* unsafe /* nested */ still comment */\nlet r = r#\"unsafe\"#;\n",
        );
        let findings = check_file(&scan, &Config::empty());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let scan =
            lib_scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet nl = '\\n';\n");
        // Nothing to find; the point is the lexer does not desynchronize and
        // swallow real tokens after a lifetime.
        assert!(check_file(&scan, &Config::empty()).is_empty());
    }

    #[test]
    fn unsafe_is_flagged_and_safety_comment_recognized() {
        let bad = lib_scan("pub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n");
        let findings = check_file(&bad, &Config::empty());
        assert!(findings.iter().any(|f| f.rule == "unsafe-whitelist"));
        assert!(findings.iter().any(|f| f.rule == "unsafe-safety-comment"));

        let justified = lib_scan("// SAFETY: provably unreachable\npub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n");
        let findings = check_file(&justified, &Config::empty());
        assert!(findings.iter().any(|f| f.rule == "unsafe-whitelist"));
        assert!(!findings.iter().any(|f| f.rule == "unsafe-safety-comment"));
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let scan = lib_scan("match a.cmp(&b) { std::cmp::Ordering::Less => {} _ => {} }\n");
        assert!(check_file(&scan, &Config::empty()).is_empty());
    }

    #[test]
    fn atomic_ordering_requires_comment() {
        let bad = lib_scan("fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n");
        assert_eq!(
            check_file(&bad, &Config::empty())
                .iter()
                .filter(|f| f.rule == "ordering-comment")
                .count(),
            1
        );
        let good = lib_scan(
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); // ordering: stats only\n}\n",
        );
        assert!(check_file(&good, &Config::empty()).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_library_rules() {
        let scan = lib_scan(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v: Vec<u32> = Vec::new(); v.last().unwrap(); }\n}\n",
        );
        assert!(check_file(&scan, &Config::empty()).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let scan = lib_scan("#[cfg(not(test))]\nmod prod {\n    pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n");
        assert!(check_file(&scan, &Config::empty())
            .iter()
            .any(|f| f.rule == "no-panics"));
    }

    #[test]
    fn inline_allow_suppresses_one_rule_only() {
        let scan = lib_scan(
            "// analyze: allow(no-panics): demo\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(check_file(&scan, &Config::empty()).is_empty());
        let other = lib_scan(
            "// analyze: allow(ordering-comment): wrong rule\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(check_file(&other, &Config::empty())
            .iter()
            .any(|f| f.rule == "no-panics"));
    }

    #[test]
    fn allowlist_prefixes_and_validation() {
        let cfg = Config::parse("no-panics crates/compat/\n# comment\n").expect("parses");
        assert!(cfg.allows("no-panics", "crates/compat/rayon/src/pool.rs"));
        assert!(!cfg.allows("no-panics", "crates/core/src/lib.rs"));
        assert!(!cfg.allows("unsafe-whitelist", "crates/compat/rayon/src/pool.rs"));
        assert!(Config::parse("not-a-rule path\n").is_err());
        assert!(Config::parse("no-panics\n").is_err());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let scan = lib_scan(
            "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap_or_else(|e| e.into_inner()) } // analyze: allow(raw-parallelism): demo\n",
        );
        assert!(!check_file(&scan, &Config::empty())
            .iter()
            .any(|f| f.rule == "no-panics"));
    }

    #[test]
    fn non_library_paths_skip_library_rules_but_not_unsafe() {
        let scan = scan_file_source(
            "tests/demo.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { unsafe { std::hint::unreachable_unchecked() } }\n",
        );
        let findings = check_file(&scan, &Config::empty());
        assert!(!findings.iter().any(|f| f.rule == "no-panics"));
        assert!(findings.iter().any(|f| f.rule == "unsafe-whitelist"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let report = Report {
            findings: vec![Finding {
                rule: "no-panics",
                file: "a\"b.rs".to_string(),
                line: 3,
                message: "tab\there".to_string(),
            }],
            files_scanned: 1,
        };
        let json = report.to_json();
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"finding_count\": 1"));
    }
}
