//! The GAP edit-distance problem (Sec. 5.2, Theorem 5.2).
//!
//! GAP aligns two strings `A[1..n]` and `B[1..m]` where a whole block of
//! characters can be deleted at once: deleting `A[l+1..r]` costs `w1(l, r)`
//! and deleting `B[l+1..r]` costs `w2(l, r)`.  The GAP recurrence is
//!
//! ```text
//! P[i][j] = min_{i' < i} D[i'][j] + w1(i', i)        (a gap in A, column GLWS)
//! Q[i][j] = min_{j' < j} D[i][j'] + w2(j', j)        (a gap in B, row GLWS)
//! D[i][j] = min( P[i][j], Q[i][j], D[i-1][j-1] if A[i] = B[j] )
//! ```
//!
//! With convex (or concave) gap costs every row and every column is a GLWS
//! instance, so the optimized sequential algorithm `Γ_gap` runs in
//! `O(nm log n)` instead of `O(n²m)`.  This crate provides
//!
//! * [`naive_gap`] — the direct `O(n²m + nm²)` recurrence (oracle),
//! * [`sequential_gap`] — `Γ_gap`: row-major evaluation with one online
//!   convex decision structure per row and per column (`O(nm log n)`),
//! * [`parallel_gap`] — the *wavefront* parallel evaluation: cells are
//!   processed in anti-diagonal frontiers of the grid DAG, each frontier in
//!   parallel, with the same per-row/per-column structures and the same
//!   `O(nm log n)` work.  Its round count is always the grid depth `n + m`;
//!   it is kept as the oracle / ablation partner for the packed variant,
//! * [`parallel_gap_packed`] — the fully packed cordon of Theorem 5.2: each
//!   round finalizes *every* cell whose tentative value can no longer change
//!   (the safe set), not just the next anti-diagonal, so the number of rounds
//!   is exactly the instance's effective depth `k` — the longest chain of
//!   strict tentative-value improvements — instead of `n + m`.  Work stays
//!   `O(nm log n)` plus one wasted probe per row per round.
//!
//! Both parallel variants produce bit-identical grids (validated against each
//! other and against the naive oracle in the tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{round_min_grain, Metrics, MetricsCollector};
use rayon::prelude::*;

/// A GAP problem instance: two strings plus the two block-deletion cost
/// functions (given as [`GlwsProblem`]-style cost families over positions).
pub struct GapInstance<'a, W1, W2> {
    /// First string (length `n`).
    pub a: &'a [u8],
    /// Second string (length `m`).
    pub b: &'a [u8],
    /// Cost of deleting `A[l+1..=r]`.
    pub w1: W1,
    /// Cost of deleting `B[l+1..=r]`.
    pub w2: W2,
}

/// Result of a GAP computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapResult {
    /// `d[i][j]` = minimum alignment cost of `A[1..=i]` vs `B[1..=j]`.
    pub d: Vec<Vec<i64>>,
    /// Total alignment cost `d[n][m]`.
    pub cost: i64,
    /// Work / round counters.
    pub metrics: Metrics,
}

const INF: i64 = i64::MAX / 4;

impl<'a, W1, W2> GapInstance<'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Create an instance from strings and gap-cost closures.
    pub fn new(a: &'a [u8], b: &'a [u8], w1: W1, w2: W2) -> Self {
        GapInstance { a, b, w1, w2 }
    }

    #[inline]
    fn matches(&self, i: usize, j: usize) -> bool {
        self.a[i - 1] == self.b[j - 1]
    }
}

/// Build a GAP instance with the affine-plus-quadratic convex gap penalty
/// `w(l, r) = open + ext·(r-l) + quad·(r-l)²` on both strings.
pub fn convex_gap_instance<'a>(
    a: &'a [u8],
    b: &'a [u8],
    open: i64,
    ext: i64,
    quad: i64,
) -> GapInstance<'a, impl Fn(usize, usize) -> i64 + Sync, impl Fn(usize, usize) -> i64 + Sync> {
    assert!(quad >= 0, "quadratic coefficient must be non-negative");
    let cost = move |l: usize, r: usize| {
        let len = (r - l) as i64;
        open + ext * len + quad * len * len
    };
    GapInstance::new(a, b, cost, cost)
}

/// Direct evaluation of the GAP recurrence, `O(n²m + nm²)` work.
pub fn naive_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (n, m) = (inst.a.len(), inst.b.len());
    let mut d = vec![vec![INF; m + 1]; n + 1];
    d[0][0] = 0;
    let mut edges = 0u64;
    for i in 0..=n {
        for j in 0..=m {
            if i == 0 && j == 0 {
                continue;
            }
            let mut best = INF;
            for ip in 0..i {
                edges += 1;
                if d[ip][j] < INF {
                    best = best.min(d[ip][j] + (inst.w1)(ip, i));
                }
            }
            for jp in 0..j {
                edges += 1;
                if d[i][jp] < INF {
                    best = best.min(d[i][jp] + (inst.w2)(jp, j));
                }
            }
            if i > 0 && j > 0 && inst.matches(i, j) && d[i - 1][j - 1] < INF {
                edges += 1;
                best = best.min(d[i - 1][j - 1]);
            }
            d[i][j] = best;
        }
    }
    metrics.add_edges(edges);
    metrics.add_states(((n + 1) * (m + 1)) as u64);
    let cost = d[n][m];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

// ---------------------------------------------------------------------------
// Online convex decision structure (shared by the sequential and parallel
// optimized algorithms).
// ---------------------------------------------------------------------------

/// An online best-decision structure for a convex cost: decisions are inserted
/// in increasing position order and queries may come at any later position.
/// Queries do not mutate the structure (binary search over takeover
/// positions), so tentative probes are safe.
#[derive(Debug, Clone)]
struct ConvexDecisionList {
    /// `(takeover, decision, decision_value)` — from `takeover` on (until the
    /// next entry's takeover), `decision` is the best inserted decision.
    entries: Vec<(usize, usize, i64)>,
    horizon: usize,
}

impl ConvexDecisionList {
    fn new(horizon: usize) -> Self {
        ConvexDecisionList {
            entries: Vec::new(),
            horizon,
        }
    }

    /// Clear the list for reuse, keeping its allocation.
    fn reset(&mut self, horizon: usize) {
        self.entries.clear();
        self.horizon = horizon;
    }

    /// Insert a decision at `pos` with value `val`; `cost(l, r)` is the gap
    /// cost.  Decisions must be inserted in increasing `pos` order.
    fn insert(&mut self, pos: usize, val: i64, cost: &impl Fn(usize, usize) -> i64) {
        if val >= INF {
            return;
        }
        let candidate = |q: usize| val + cost(pos, q);
        // Pop entries that the new decision dominates from their own takeover.
        while let Some(&(start, dec, dval)) = self.entries.last() {
            if start > pos && candidate(start) <= dval + cost(dec, start) {
                self.entries.pop();
            } else {
                break;
            }
        }
        // Find the takeover position of the new decision vs the current last.
        let takeover = match self.entries.last() {
            None => pos + 1,
            Some(&(start, dec, dval)) => {
                let incumbent = |q: usize| dval + cost(dec, q);
                // First q in (max(start, pos)+1 ..= horizon] where the new
                // decision is at least as good (suffix property of convexity).
                let mut lo = start.max(pos) + 1;
                let mut hi = self.horizon + 1; // horizon+1 = never
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if candidate(mid) <= incumbent(mid) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        };
        if takeover <= self.horizon {
            self.entries.push((takeover, pos, val));
        }
    }

    /// Best value at query position `q` (must be greater than every inserted
    /// decision position), or `INF` if no decision applies.
    fn query(&self, q: usize, cost: &impl Fn(usize, usize) -> i64) -> i64 {
        let idx = self.entries.partition_point(|&(start, _, _)| start <= q);
        if idx == 0 {
            return INF;
        }
        let (_, dec, dval) = self.entries[idx - 1];
        dval + cost(dec, q)
    }
}

/// The optimized sequential algorithm `Γ_gap`: row-major evaluation with one
/// [`ConvexDecisionList`] per row (for `Q`) and per column (for `P`).
/// Requires convex gap costs.  `O(nm log(n+m))` work.
pub fn sequential_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (n, m) = (inst.a.len(), inst.b.len());
    let mut d = vec![vec![INF; m + 1]; n + 1];
    let mut row_struct: Vec<ConvexDecisionList> =
        (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
    let mut col_struct: Vec<ConvexDecisionList> =
        (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
    let mut probes = 0u64;
    for i in 0..=n {
        for j in 0..=m {
            let value = if i == 0 && j == 0 {
                0
            } else {
                let p = col_struct[j].query(i, &inst.w1);
                let q = row_struct[i].query(j, &inst.w2);
                probes += 2;
                let mut best = p.min(q);
                if i > 0 && j > 0 && inst.matches(i, j) {
                    best = best.min(d[i - 1][j - 1]);
                }
                best
            };
            d[i][j] = value;
            row_struct[i].insert(j, value, &inst.w2);
            col_struct[j].insert(i, value, &inst.w1);
            metrics.add_edges(3);
        }
    }
    metrics.add_probes(probes);
    metrics.add_states(((n + 1) * (m + 1)) as u64);
    let cost = d[n][m];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// Parallel GAP: the grid DAG is evaluated frontier by frontier
/// (anti-diagonals `i + j = const`), all cells of a frontier in parallel, with
/// the same per-row/per-column convex decision structures as
/// [`sequential_gap`] (each structure receives exactly one insertion per
/// frontier, performed in parallel across rows/columns).  Work `O(nm log n)`.
pub fn parallel_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let d = run_phase_parallel(GapCordon::new(inst), &metrics);
    let cost = d[inst.a.len()][inst.b.len()];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for the parallel GAP evaluation: each round
/// processes one anti-diagonal frontier of the grid DAG.
pub struct GapCordon<'i, 'a, W1, W2> {
    inst: &'i GapInstance<'a, W1, W2>,
    d: Vec<Vec<i64>>,
    row_struct: Vec<ConvexDecisionList>,
    col_struct: Vec<ConvexDecisionList>,
    diag: usize,
    n: usize,
    m: usize,
    /// Reused per-round frontier-value buffer (grown once to the widest
    /// anti-diagonal).
    values: Vec<i64>,
}

impl<'i, 'a, W1, W2> GapCordon<'i, 'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Initialize the DP grid and seed the per-row/per-column structures with
    /// the boundary cell.
    pub fn new(inst: &'i GapInstance<'a, W1, W2>) -> Self {
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut d = vec![vec![INF; m + 1]; n + 1];
        d[0][0] = 0;
        let mut row_struct: Vec<ConvexDecisionList> =
            (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
        let mut col_struct: Vec<ConvexDecisionList> =
            (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
        row_struct[0].insert(0, 0, &inst.w2);
        col_struct[0].insert(0, 0, &inst.w1);
        GapCordon {
            inst,
            d,
            row_struct,
            col_struct,
            diag: 1,
            n,
            m,
            values: Vec::new(),
        }
    }
}

impl<W1, W2> PhaseParallel for GapCordon<'_, '_, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// The completed DP grid.
    type Output = Vec<Vec<i64>>;

    fn is_done(&self) -> bool {
        self.diag > self.n + self.m
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (inst, diag, n, m) = (self.inst, self.diag, self.n, self.m);
        // Cells (i, j) with i + j = diag; non-empty for every 1 <= diag <= n+m.
        let i_lo = diag.saturating_sub(m);
        let i_hi = diag.min(n);
        let d_ref = &self.d;
        let row_ref = &self.row_struct;
        let col_ref = &self.col_struct;
        let cells = i_hi - i_lo + 1;
        let grain = round_min_grain(cells);
        // Reuse the frontier-value buffer across rounds (`collect_into_vec`
        // refills it in place).
        let mut values = std::mem::take(&mut self.values);
        (i_lo..=i_hi)
            .into_par_iter()
            .map(|i| {
                let j = diag - i;
                let p = col_ref[j].query(i, &inst.w1);
                let q = row_ref[i].query(j, &inst.w2);
                let mut best = p.min(q);
                if i > 0 && j > 0 && inst.matches(i, j) {
                    best = best.min(d_ref[i - 1][j - 1]);
                }
                best
            })
            .with_min_len(grain)
            .collect_into_vec(&mut values);
        // Write the frontier values, then insert each cell into its row and
        // column structure (one insertion per structure, all structures
        // disjoint, so the two loops parallelize over rows and columns).
        for (off, &v) in values.iter().enumerate() {
            let i = i_lo + off;
            let j = diag - i;
            self.d[i][j] = v;
        }
        let w2 = &inst.w2;
        let w1 = &inst.w1;
        self.row_struct[i_lo..=i_hi]
            .par_iter_mut()
            .enumerate()
            .with_min_len(grain)
            .for_each(|(off, rs)| {
                let i = i_lo + off;
                let j = diag - i;
                rs.insert(j, values[off], w2);
            });
        let j_lo = diag - i_hi;
        let j_hi = diag - i_lo;
        let d_now = &self.d;
        self.col_struct[j_lo..=j_hi]
            .par_iter_mut()
            .enumerate()
            .with_min_len(grain)
            .for_each(|(off, cs)| {
                let j = j_lo + off;
                let i = diag - j;
                cs.insert(i, d_now[i][j], w1);
            });
        self.values = values;
        metrics.add_edges(3 * cells as u64);
        metrics.add_probes(2 * cells as u64);
        self.diag += 1;
        cells
    }

    fn finish(self) -> Self::Output {
        self.d
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per anti-diagonal: the grid depth n + m.
        Some((self.n + self.m) as u64)
    }
}

// ---------------------------------------------------------------------------
// Packed cordon (Theorem 5.2): rounds = effective depth instead of n + m.
// ---------------------------------------------------------------------------

/// Packed parallel GAP (Theorem 5.2): identical values and work as
/// [`parallel_gap`], but the round count equals the instance's *effective
/// depth* `k` — the longest chain of strict tentative-value improvements —
/// instead of the grid depth `n + m`.
///
/// Each round finalizes the entire *safe set*: every cell whose tentative
/// value (computed from already-finalized cells) provably equals its final DP
/// value.  A cell is kept back (Bad) exactly when a cell finalized in the
/// same round strictly improves its tentative, or when one of its
/// predecessors is kept back; one wasted probe per row per round is charged
/// to `wasted_states`.
pub fn parallel_gap_packed<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let d = run_phase_parallel(PackedGapCordon::new(inst), &metrics);
    let cost = d[inst.a.len()][inst.b.len()];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for the packed GAP evaluation.
///
/// The finalized region is always a *staircase* (a down-set of the grid): row
/// `i` is finalized exactly on columns `0..r[i]`, with `r` non-increasing in
/// `i`.  Each round sweeps rows top-down, extending every watermark as far as
/// the safe-set rule allows:
///
/// * a cell's tentative `T` is the best reachable value through cells
///   finalized *before* this round (global row/column structures, plus the
///   diagonal match edge),
/// * a cell is **safe** iff every unfinalized predecessor is safe and no
///   predecessor finalized *this* round strictly improves `T`.  Within-round
///   predecessors are checked through per-row/per-column *band* structures
///   holding only this round's finalizations; cross-row blocking is the
///   `cutoff` watermark minimum, which also keeps the staircase invariant.
///
/// Every cell whose predecessors were all finalized before the round is safe
/// by construction, so each round finalizes at least the whole ready
/// wavefront — rounds never exceed `n + m` and match the effective depth
/// exactly (pinned against a brute-force oracle in the tests).
pub struct PackedGapCordon<'i, 'a, W1, W2> {
    inst: &'i GapInstance<'a, W1, W2>,
    d: Vec<Vec<i64>>,
    /// Global structures over cells finalized in *previous* rounds.
    row_struct: Vec<ConvexDecisionList>,
    col_struct: Vec<ConvexDecisionList>,
    /// `r[i]` = first unfinalized column of row `i` (`m + 1` = row done).
    r: Vec<usize>,
    /// Snapshot of `r` at the start of the current round.
    r_start: Vec<usize>,
    /// Per-column within-round veto structures, lazily cleared via `epoch`.
    col_band: Vec<ConvexDecisionList>,
    col_band_epoch: Vec<u64>,
    epoch: u64,
    /// Within-round veto structure for the row currently being swept.
    row_band: ConvexDecisionList,
    /// First row that can still make progress (rows above are finalized).
    row_lo: usize,
    n: usize,
    m: usize,
}

impl<'i, 'a, W1, W2> PackedGapCordon<'i, 'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Initialize the DP grid, the staircase watermarks, and the structures.
    pub fn new(inst: &'i GapInstance<'a, W1, W2>) -> Self {
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut d = vec![vec![INF; m + 1]; n + 1];
        d[0][0] = 0;
        let mut row_struct: Vec<ConvexDecisionList> =
            (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
        let mut col_struct: Vec<ConvexDecisionList> =
            (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
        row_struct[0].insert(0, 0, &inst.w2);
        col_struct[0].insert(0, 0, &inst.w1);
        let mut r = vec![0usize; n + 1];
        r[0] = 1;
        PackedGapCordon {
            inst,
            d,
            row_struct,
            col_struct,
            r_start: r.clone(),
            r,
            col_band: (0..=m).map(|_| ConvexDecisionList::new(n)).collect(),
            col_band_epoch: vec![0; m + 1],
            epoch: 0,
            row_band: ConvexDecisionList::new(m),
            row_lo: 0,
            n,
            m,
        }
    }
}

impl<W1, W2> PhaseParallel for PackedGapCordon<'_, '_, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// The completed DP grid.
    type Output = Vec<Vec<i64>>;

    fn is_done(&self) -> bool {
        // `r` is non-increasing, so the last row's watermark bounds them all.
        self.r[self.n] > self.m
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (inst, n, m) = (self.inst, self.n, self.m);
        let (w1, w2) = (&inst.w1, &inst.w2);
        self.epoch += 1;
        while self.row_lo <= n && self.r[self.row_lo] > m {
            self.row_lo += 1;
        }
        let row_lo = self.row_lo;
        self.r_start.copy_from_slice(&self.r);
        let mut finalized = 0usize;
        let mut probes = 0u64;
        let mut wasted = 0u64;
        // Touched column range of this round (for the parallel publish phase).
        let (mut col_lo, mut col_hi) = (m + 1, 0usize);
        let mut row_hi = row_lo;
        // `cutoff` = min over rows above of the post-round watermark: a cell
        // (i, j) with j >= cutoff has an unfinalized column predecessor that
        // this round does not resolve, so it cannot be safe.  Rows above
        // `row_lo` are fully finalized and impose no cutoff.
        let mut cutoff = m + 1;
        for i in row_lo..=n {
            if cutoff == 0 {
                break;
            }
            row_hi = i;
            let start = self.r[i];
            if start >= cutoff {
                // Blocked at its first unfinalized cell by the column above;
                // the new watermark equals the old one (>= cutoff already).
                continue;
            }
            self.row_band.reset(m);
            let mut j = start;
            while j < cutoff {
                // Tentative from cells finalized before this round.
                let mut t = self.col_struct[j].query(i, w1);
                t = t.min(self.row_struct[i].query(j, w2));
                probes += 2;
                // The diagonal predecessor is always finalized here (it lies
                // strictly left of the cutoff): merge it into the tentative
                // if it predates the round, veto on it if it is from this
                // round and strictly improving.
                let mut diag_new = INF;
                if i > 0 && j > 0 && inst.matches(i, j) {
                    if j - 1 < self.r_start[i - 1] {
                        t = t.min(self.d[i - 1][j - 1]);
                    } else {
                        diag_new = self.d[i - 1][j - 1];
                    }
                }
                // Veto: a cell finalized this round strictly improves the
                // tentative => the cell's value is not settled yet (Bad).
                let band_col = if self.col_band_epoch[j] == self.epoch {
                    probes += 1;
                    self.col_band[j].query(i, w1)
                } else {
                    INF
                };
                let band_row = self.row_band.query(j, w2);
                probes += 1;
                if band_col < t || band_row < t || diag_new < t {
                    wasted += 1;
                    break;
                }
                self.d[i][j] = t;
                self.row_band.insert(j, t, w2);
                if self.col_band_epoch[j] != self.epoch {
                    self.col_band_epoch[j] = self.epoch;
                    self.col_band[j].reset(n);
                }
                self.col_band[j].insert(i, t, w1);
                finalized += 1;
                j += 1;
            }
            if j > start {
                col_lo = col_lo.min(start);
                col_hi = col_hi.max(j);
            }
            self.r[i] = j;
            cutoff = cutoff.min(j);
        }
        // Publish this round's cells into the global structures: each row and
        // each column receives a contiguous, independent run of insertions
        // (the staircase invariant makes per-column row ranges contiguous).
        if finalized > 0 {
            let (rs, rstart, d) = (&self.r, &self.r_start, &self.d);
            let grain_rows = round_min_grain(row_hi - row_lo + 1);
            self.row_struct[row_lo..=row_hi]
                .par_iter_mut()
                .enumerate()
                .with_min_len(grain_rows)
                .for_each(|(off, st)| {
                    let i = row_lo + off;
                    for j in rstart[i]..rs[i] {
                        st.insert(j, d[i][j], w2);
                    }
                });
            let grain_cols = round_min_grain(col_hi - col_lo);
            self.col_struct[col_lo..col_hi]
                .par_iter_mut()
                .enumerate()
                .with_min_len(grain_cols)
                .for_each(|(off, st)| {
                    let j = col_lo + off;
                    // Rows finalized in column j this round: r_start[i] <= j
                    // < r[i]; both watermark arrays are non-increasing, so
                    // this is the contiguous range [q, p).
                    let p = rs.partition_point(|&x| x > j);
                    let q = rstart.partition_point(|&x| x > j);
                    for i in q..p {
                        st.insert(i, d[i][j], w1);
                    }
                });
        }
        metrics.add_edges(3 * finalized as u64);
        metrics.add_probes(probes);
        metrics.add_wasted(wasted);
        finalized
    }

    fn finish(self) -> Self::Output {
        self.d
    }

    fn round_budget(&self) -> Option<u64> {
        // The effective depth never exceeds the grid depth n + m.
        Some((self.n + self.m) as u64)
    }
}

// ---------------------------------------------------------------------------
// Alignment reconstruction.
// ---------------------------------------------------------------------------

/// One move of an optimal GAP alignment, as recovered by
/// [`reconstruct_gap_ops`].  Positions are 1-based, matching the DP indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapOp {
    /// Align `A[i]` with `B[j]` (the characters are equal).
    Match {
        /// Position in `A`.
        i: usize,
        /// Position in `B`.
        j: usize,
    },
    /// Delete the block `A[l+1..=r]` at cost `w1(l, r)`.
    GapA {
        /// Left endpoint (exclusive).
        l: usize,
        /// Right endpoint (inclusive).
        r: usize,
    },
    /// Delete the block `B[l+1..=r]` at cost `w2(l, r)`.
    GapB {
        /// Left endpoint (exclusive).
        l: usize,
        /// Right endpoint (inclusive).
        r: usize,
    },
}

/// Trace one optimal alignment back through a completed DP grid `d` (as
/// returned by any of the GAP evaluations).  Deterministic tie-breaking:
/// prefer a match, then the shortest gap in `A`, then the shortest gap in
/// `B` — so identical grids always reconstruct identical alignments.
///
/// # Panics
///
/// Panics if `d` is not a valid DP grid for `inst` (no predecessor explains
/// some cell's value).
pub fn reconstruct_gap_ops<W1, W2>(inst: &GapInstance<'_, W1, W2>, d: &[Vec<i64>]) -> Vec<GapOp>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let (n, m) = (inst.a.len(), inst.b.len());
    assert_eq!(d.len(), n + 1, "grid has wrong number of rows");
    assert_eq!(d[0].len(), m + 1, "grid has wrong number of columns");
    let (mut i, mut j) = (n, m);
    let mut ops = Vec::new();
    while i > 0 || j > 0 {
        let cur = d[i][j];
        if i > 0 && j > 0 && inst.matches(i, j) && d[i - 1][j - 1] == cur {
            ops.push(GapOp::Match { i, j });
            i -= 1;
            j -= 1;
        } else if let Some(ip) = (0..i).rev().find(|&ip| d[ip][j] + (inst.w1)(ip, i) == cur) {
            ops.push(GapOp::GapA { l: ip, r: i });
            i = ip;
        } else if let Some(jp) = (0..j).rev().find(|&jp| d[i][jp] + (inst.w2)(jp, j) == cur) {
            ops.push(GapOp::GapB { l: jp, r: j });
            j = jp;
        } else {
            panic!("not a valid GAP DP grid at cell ({i}, {j})");
        }
    }
    ops.reverse();
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_string(n: usize, seed: u64, alphabet: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % alphabet) as u8
            })
            .collect()
    }

    #[test]
    fn identical_strings_align_for_free() {
        let a = pseudo_string(30, 1, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        assert_eq!(naive_gap(&inst).cost, 0);
        assert_eq!(sequential_gap(&inst).cost, 0);
        assert_eq!(parallel_gap(&inst).cost, 0);
    }

    #[test]
    fn deleting_everything_when_no_matches() {
        // Disjoint alphabets: the only option is to delete both strings whole.
        let a = vec![0u8; 12];
        let b = vec![1u8; 7];
        let inst = convex_gap_instance(&a, &b, 3, 2, 0);
        let expect = (3 + 2 * 12) + (3 + 2 * 7);
        assert_eq!(naive_gap(&inst).cost, expect);
        assert_eq!(sequential_gap(&inst).cost, expect);
        assert_eq!(parallel_gap(&inst).cost, expect);
    }

    #[test]
    fn optimized_algorithms_match_naive_on_random_inputs() {
        for seed in 0..6 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1), (50, 3, 2)] {
                let a = pseudo_string(28, seed, 3);
                let b = pseudo_string(23, seed + 77, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                let want = naive_gap(&inst);
                let seq = sequential_gap(&inst);
                let par = parallel_gap(&inst);
                assert_eq!(seq.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
                assert_eq!(par.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
            }
        }
    }

    #[test]
    fn asymmetric_gap_costs() {
        // Deleting from A is much more expensive than deleting from B.
        let a = pseudo_string(20, 3, 2);
        let b = pseudo_string(25, 9, 2);
        let inst = GapInstance::new(
            &a,
            &b,
            |l: usize, r: usize| 100 + 10 * (r - l) as i64,
            |l: usize, r: usize| 1 + (r - l) as i64,
        );
        let want = naive_gap(&inst);
        assert_eq!(sequential_gap(&inst).d, want.d);
        assert_eq!(parallel_gap(&inst).d, want.d);
    }

    #[test]
    fn empty_strings() {
        let empty: Vec<u8> = vec![];
        let b = pseudo_string(5, 2, 3);
        let inst = convex_gap_instance(&empty, &b, 4, 1, 1);
        let want = naive_gap(&inst);
        // Splitting the deletion of B into gaps of 2 and 3 beats one gap of 5:
        // (4+2+4) + (4+3+9) = 26 < 4+5+25 = 34.
        assert_eq!(want.cost, 26);
        assert_eq!(sequential_gap(&inst).cost, want.cost);
        assert_eq!(parallel_gap(&inst).cost, want.cost);
        let inst = convex_gap_instance(&empty, &empty, 4, 1, 1);
        assert_eq!(parallel_gap(&inst).cost, 0);
    }

    #[test]
    fn parallel_rounds_equal_grid_depth() {
        let a = pseudo_string(15, 5, 4);
        let b = pseudo_string(10, 6, 4);
        let inst = convex_gap_instance(&a, &b, 2, 1, 1);
        let r = parallel_gap(&inst);
        assert_eq!(r.metrics.rounds, 25);
    }

    #[test]
    fn block_deletion_beats_char_by_char_with_convex_open_cost() {
        // A = B plus an inserted block; with a large opening cost the optimum
        // removes the block with a single gap.
        let mut a = pseudo_string(40, 8, 5);
        let b = a.clone();
        // Insert a block of 6 junk symbols (value 9, absent from b) into a.
        for _ in 0..6 {
            a.insert(20, 9);
        }
        let inst = convex_gap_instance(&a, &b, 30, 1, 0);
        let want = naive_gap(&inst);
        // One gap of length 6 in A: 30 + 6.
        assert_eq!(want.cost, 36);
        assert_eq!(parallel_gap(&inst).cost, 36);
        assert_eq!(sequential_gap(&inst).cost, 36);
    }

    /// Brute-force oracle for the packed schedule: simulate round assignment
    /// cell by cell.  A cell finalizes in round `M` (the latest round among
    /// its predecessors) when the best value through *earlier*-finalized
    /// predecessors already equals its DP value, and in round `M + 1`
    /// otherwise (its tentative still strictly improves in round `M`).  The
    /// maximum over all cells is the instance's effective depth.
    fn effective_depth_oracle<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> u64
    where
        W1: Fn(usize, usize) -> i64 + Sync,
        W2: Fn(usize, usize) -> i64 + Sync,
    {
        let d = naive_gap(inst).d;
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut rd = vec![vec![0u64; m + 1]; n + 1];
        let mut depth = 0;
        for i in 0..=n {
            for j in 0..=m {
                if i == 0 && j == 0 {
                    continue;
                }
                let mut preds: Vec<(u64, i64)> = Vec::new();
                for ip in 0..i {
                    preds.push((rd[ip][j], d[ip][j] + (inst.w1)(ip, i)));
                }
                for jp in 0..j {
                    preds.push((rd[i][jp], d[i][jp] + (inst.w2)(jp, j)));
                }
                if i > 0 && j > 0 && inst.matches(i, j) {
                    preds.push((rd[i - 1][j - 1], d[i - 1][j - 1]));
                }
                let max_r = preds.iter().map(|&(r, _)| r).max().unwrap();
                let older = preds
                    .iter()
                    .filter(|&&(r, _)| r < max_r)
                    .map(|&(_, v)| v)
                    .min()
                    .unwrap_or(INF);
                rd[i][j] = if older == d[i][j] { max_r } else { max_r + 1 };
                depth = depth.max(rd[i][j]);
            }
        }
        depth
    }

    fn assert_packed_depth<W1, W2>(inst: &GapInstance<'_, W1, W2>)
    where
        W1: Fn(usize, usize) -> i64 + Sync,
        W2: Fn(usize, usize) -> i64 + Sync,
    {
        let packed = parallel_gap_packed(inst);
        let depth = effective_depth_oracle(inst);
        assert!(
            packed.metrics.rounds <= depth + 1,
            "packed rounds {} exceed effective depth {depth} + 1",
            packed.metrics.rounds
        );
        assert_eq!(
            packed.metrics.rounds, depth,
            "packed rounds should match the effective depth exactly"
        );
        assert!(packed.metrics.rounds <= (inst.a.len() + inst.b.len()) as u64);
    }

    #[test]
    fn packed_matches_wavefront_and_naive_on_random_inputs() {
        for seed in 0..6 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1), (50, 3, 2)] {
                let a = pseudo_string(28, seed, 3);
                let b = pseudo_string(23, seed + 77, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                let want = naive_gap(&inst);
                let wave = parallel_gap(&inst);
                let packed = parallel_gap_packed(&inst);
                assert_eq!(packed.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
                assert_eq!(packed.d, wave.d, "seed {seed} cost ({open},{ext},{quad})");
                assert!(
                    packed.metrics.rounds <= wave.metrics.rounds,
                    "packing must never use more rounds than the wavefront"
                );
                assert_eq!(
                    reconstruct_gap_ops(&inst, &packed.d),
                    reconstruct_gap_ops(&inst, &wave.d),
                    "identical grids must reconstruct identical alignments"
                );
            }
        }
    }

    #[test]
    fn packed_matches_wavefront_on_adversarial_instances() {
        // Identical strings: the all-match diagonal aligns for free.
        let a = pseudo_string(30, 1, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        let packed = parallel_gap_packed(&inst);
        assert_eq!(packed.cost, 0);
        assert_eq!(packed.d, parallel_gap(&inst).d);

        // Disjoint alphabets: both strings must be deleted whole.
        let z = vec![0u8; 12];
        let o = vec![1u8; 7];
        let inst = convex_gap_instance(&z, &o, 3, 2, 0);
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);

        // Empty strings on either side, and both empty (zero rounds).
        let empty: Vec<u8> = vec![];
        let b = pseudo_string(5, 2, 3);
        let inst = convex_gap_instance(&empty, &b, 4, 1, 1);
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);
        let inst = convex_gap_instance(&b, &empty, 4, 1, 1);
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);
        let inst = convex_gap_instance(&empty, &empty, 4, 1, 1);
        let trivial = parallel_gap_packed(&inst);
        assert_eq!(trivial.cost, 0);
        assert_eq!(trivial.metrics.rounds, 0);

        // Asymmetric costs (deleting from A is much more expensive).
        let a = pseudo_string(20, 3, 2);
        let b = pseudo_string(25, 9, 2);
        let inst = GapInstance::new(
            &a,
            &b,
            |l: usize, r: usize| 100 + 10 * (r - l) as i64,
            |l: usize, r: usize| 1 + (r - l) as i64,
        );
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);
    }

    #[test]
    fn packed_rounds_equal_effective_depth() {
        for seed in 0..4 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1)] {
                let a = pseudo_string(18, seed, 3);
                let b = pseudo_string(15, seed + 41, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                assert_packed_depth(&inst);
            }
        }
        // Adversarial shapes.
        let a = pseudo_string(16, 1, 4);
        assert_packed_depth(&convex_gap_instance(&a, &a, 5, 1, 1));
        let z = vec![0u8; 10];
        let o = vec![1u8; 8];
        assert_packed_depth(&convex_gap_instance(&z, &o, 3, 2, 0));
        let empty: Vec<u8> = vec![];
        assert_packed_depth(&convex_gap_instance(&empty, &o, 4, 1, 1));
    }

    #[test]
    fn packed_compresses_rounds_on_shallow_instances() {
        // Disjoint alphabets with an affine cost have effective depth 2: one
        // gap along each axis reaches every cell through round-1 boundary
        // cells.  The wavefront still runs all n + m anti-diagonals; the
        // packed cordon collapses them.
        let z = vec![0u8; 60];
        let o = vec![1u8; 60];
        let inst = convex_gap_instance(&z, &o, 3, 2, 0);
        let wave = parallel_gap(&inst);
        let packed = parallel_gap_packed(&inst);
        assert_eq!(wave.metrics.rounds, 120);
        assert_eq!(packed.d, wave.d);
        assert_eq!(packed.metrics.rounds, 2);

        // An all-match instance is the opposite extreme: the diagonal is a
        // chain of strict improvements, so the effective depth is n — still
        // half the wavefront's 2n rounds.
        let a = pseudo_string(60, 7, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        let wave = parallel_gap(&inst);
        let packed = parallel_gap_packed(&inst);
        assert_eq!(packed.d, wave.d);
        assert_eq!(packed.metrics.rounds, 60);
        assert_eq!(wave.metrics.rounds, 120);
    }

    #[test]
    fn reconstruction_covers_both_strings_and_recomputes_cost() {
        let a = pseudo_string(24, 11, 3);
        let b = pseudo_string(19, 12, 3);
        let inst = convex_gap_instance(&a, &b, 4, 1, 1);
        let res = parallel_gap_packed(&inst);
        let ops = reconstruct_gap_ops(&inst, &res.d);
        let (mut i, mut j, mut cost) = (0usize, 0usize, 0i64);
        for op in &ops {
            match *op {
                GapOp::Match { i: oi, j: oj } => {
                    assert_eq!((oi, oj), (i + 1, j + 1), "match must advance both");
                    assert_eq!(a[oi - 1], b[oj - 1], "matched characters must agree");
                    i = oi;
                    j = oj;
                }
                GapOp::GapA { l, r } => {
                    assert_eq!(l, i, "A-gap must start at the current position");
                    cost += (inst.w1)(l, r);
                    i = r;
                }
                GapOp::GapB { l, r } => {
                    assert_eq!(l, j, "B-gap must start at the current position");
                    cost += (inst.w2)(l, r);
                    j = r;
                }
            }
        }
        assert_eq!((i, j), (a.len(), b.len()), "ops must cover both strings");
        assert_eq!(cost, res.cost, "op costs must recompute the DP optimum");
    }

    #[test]
    fn convex_decision_list_matches_bruteforce() {
        // Standalone check of the online structure against brute force.
        let cost = |l: usize, r: usize| {
            let len = (r - l) as i64;
            7 + 2 * len + len * len
        };
        let horizon = 60;
        let mut list = ConvexDecisionList::new(horizon);
        let mut inserted: Vec<(usize, i64)> = Vec::new();
        let mut state = 12345u64;
        for pos in 0..40usize {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let val = (state % 50) as i64;
            list.insert(pos, val, &cost);
            inserted.push((pos, val));
            // Query a few positions after pos.
            for q in (pos + 1)..=(pos + 5).min(horizon) {
                let want = inserted.iter().map(|&(p, v)| v + cost(p, q)).min().unwrap();
                assert_eq!(list.query(q, &cost), want, "pos {pos} q {q}");
            }
        }
    }
}
