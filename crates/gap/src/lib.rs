//! The GAP edit-distance problem (Sec. 5.2, Theorem 5.2).
//!
//! GAP aligns two strings `A[1..n]` and `B[1..m]` where a whole block of
//! characters can be deleted at once: deleting `A[l+1..r]` costs `w1(l, r)`
//! and deleting `B[l+1..r]` costs `w2(l, r)`.  The GAP recurrence is
//!
//! ```text
//! P[i][j] = min_{i' < i} D[i'][j] + w1(i', i)        (a gap in A, column GLWS)
//! Q[i][j] = min_{j' < j} D[i][j'] + w2(j', j)        (a gap in B, row GLWS)
//! D[i][j] = min( P[i][j], Q[i][j], D[i-1][j-1] if A[i] = B[j] )
//! ```
//!
//! With convex (or concave) gap costs every row and every column is a GLWS
//! instance, so the optimized sequential algorithm `Γ_gap` runs in
//! `O(nm log n)` instead of `O(n²m)`.  This crate provides
//!
//! * [`naive_gap`] — the direct `O(n²m + nm²)` recurrence (oracle),
//! * [`sequential_gap`] — `Γ_gap`: row-major evaluation with one online
//!   convex decision structure per row and per column (`O(nm log n)`),
//! * [`parallel_gap`] — the *wavefront* parallel evaluation: cells are
//!   processed in anti-diagonal frontiers of the grid DAG, each frontier in
//!   parallel, with the same per-row/per-column structures and the same
//!   `O(nm log n)` work.  Its round count is always the grid depth `n + m`;
//!   it is kept as the oracle / ablation partner for the packed variant,
//! * [`parallel_gap_packed`] — the fully packed cordon of Theorem 5.2: each
//!   round finalizes *every* cell whose tentative value can no longer change
//!   (the safe set), not just the next anti-diagonal, so the number of rounds
//!   is exactly the instance's effective depth `k` — the longest chain of
//!   strict tentative-value improvements — instead of `n + m`.  Work stays
//!   `O(nm log n)` plus one wasted probe per row per round.
//!
//! Both parallel variants produce bit-identical grids (validated against each
//! other and against the naive oracle in the tests).
//!
//! Alignment traceback is provided in three flavors: the panicking
//! [`reconstruct_gap_ops`], the fallible [`try_reconstruct_gap_ops`] (both
//! grid-only, `O(n·(n+m))` worst case), and the near-linear
//! [`try_reconstruct_gap_ops_with_provenance`] driven by the two-bit-per-cell
//! predecessor flags of [`sequential_gap_with_provenance`].
//!
//! # The speculative-veto sweep invariant
//!
//! The packed round is executed as a *block-parallel speculative sweep*: the
//! candidate rows are split into contiguous blocks, each block is solved in
//! parallel against the **round-start snapshot** (the frozen global
//! row/column decision lists, the `r_start` watermarks, and grid cells
//! finalized in previous rounds), and a sequential fix-up pass then replays
//! the true sweep.  Correctness rests on one invariant:
//!
//! > every value a speculative block caches is a **pure function of
//! > round-start state** — `min` of the frozen column query, the frozen row
//! > query, and the previous-round diagonal — i.e. exactly the tentative the
//! > sequential sweep would compute for that cell from scratch.
//!
//! Speculation therefore only decides *what is precomputed*, never *what is
//! finalized*: the fix-up pass consumes cached tentatives where available,
//! computes fresh ones past each block's speculation horizon, and applies the
//! real cross-block cutoffs and within-round veto bands itself.  The fix-up
//! is bit-identical to the plain sequential sweep at **any** block count
//! (including 1 = no speculation), so rounds still equal the effective depth
//! exactly and grids are deterministic at any thread count.  A block's own
//! veto *simulation* (used only to bound how far it speculates) stops at any
//! cell whose same-round diagonal predecessor lies in another block — the one
//! dependency a snapshot cannot decide.
//!
//! Within a block (and within the fix-up) the per-cell decision-list queries
//! are cursor-amortized: one binary search seeds a cursor per row/column
//! list, and subsequent queries at monotonically increasing positions advance
//! it linearly.  Within-round veto checks scan the finalized run directly
//! while it is short (`BAND_BRUTE_MAX` cells), upgrading to a
//! `ConvexDecisionList` band only for long runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{round_block_count, round_min_grain, Metrics, MetricsCollector};
use rayon::prelude::*;

/// A GAP problem instance: two strings plus the two block-deletion cost
/// functions (given as [`GlwsProblem`]-style cost families over positions).
pub struct GapInstance<'a, W1, W2> {
    /// First string (length `n`).
    pub a: &'a [u8],
    /// Second string (length `m`).
    pub b: &'a [u8],
    /// Cost of deleting `A[l+1..=r]`.
    pub w1: W1,
    /// Cost of deleting `B[l+1..=r]`.
    pub w2: W2,
}

/// Result of a GAP computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapResult {
    /// `d[i][j]` = minimum alignment cost of `A[1..=i]` vs `B[1..=j]`.
    pub d: Vec<Vec<i64>>,
    /// Total alignment cost `d[n][m]`.
    pub cost: i64,
    /// Work / round counters.
    pub metrics: Metrics,
}

const INF: i64 = i64::MAX / 4;

impl<'a, W1, W2> GapInstance<'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Create an instance from strings and gap-cost closures.
    pub fn new(a: &'a [u8], b: &'a [u8], w1: W1, w2: W2) -> Self {
        GapInstance { a, b, w1, w2 }
    }

    #[inline]
    fn matches(&self, i: usize, j: usize) -> bool {
        self.a[i - 1] == self.b[j - 1]
    }
}

/// Build a GAP instance with the affine-plus-quadratic convex gap penalty
/// `w(l, r) = open + ext·(r-l) + quad·(r-l)²` on both strings.
pub fn convex_gap_instance<'a>(
    a: &'a [u8],
    b: &'a [u8],
    open: i64,
    ext: i64,
    quad: i64,
) -> GapInstance<'a, impl Fn(usize, usize) -> i64 + Sync, impl Fn(usize, usize) -> i64 + Sync> {
    assert!(quad >= 0, "quadratic coefficient must be non-negative");
    let cost = move |l: usize, r: usize| {
        let len = (r - l) as i64;
        open + ext * len + quad * len * len
    };
    GapInstance::new(a, b, cost, cost)
}

/// Direct evaluation of the GAP recurrence, `O(n²m + nm²)` work.
pub fn naive_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (n, m) = (inst.a.len(), inst.b.len());
    let mut d = vec![vec![INF; m + 1]; n + 1];
    d[0][0] = 0;
    let mut edges = 0u64;
    for i in 0..=n {
        for j in 0..=m {
            if i == 0 && j == 0 {
                continue;
            }
            let mut best = INF;
            for ip in 0..i {
                edges += 1;
                if d[ip][j] < INF {
                    best = best.min(d[ip][j] + (inst.w1)(ip, i));
                }
            }
            for jp in 0..j {
                edges += 1;
                if d[i][jp] < INF {
                    best = best.min(d[i][jp] + (inst.w2)(jp, j));
                }
            }
            if i > 0 && j > 0 && inst.matches(i, j) && d[i - 1][j - 1] < INF {
                edges += 1;
                best = best.min(d[i - 1][j - 1]);
            }
            d[i][j] = best;
        }
    }
    metrics.add_edges(edges);
    metrics.add_states(((n + 1) * (m + 1)) as u64);
    let cost = d[n][m];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

// ---------------------------------------------------------------------------
// Online convex decision structure (shared by the sequential and parallel
// optimized algorithms).
// ---------------------------------------------------------------------------

/// An online best-decision structure for a convex cost: decisions are inserted
/// in increasing position order and queries may come at any later position.
/// Queries do not mutate the structure (binary search over takeover
/// positions), so tentative probes are safe.
#[derive(Debug, Clone)]
struct ConvexDecisionList {
    /// `(takeover, decision, decision_value)` — from `takeover` on (until the
    /// next entry's takeover), `decision` is the best inserted decision.
    entries: Vec<(usize, usize, i64)>,
    horizon: usize,
}

impl ConvexDecisionList {
    fn new(horizon: usize) -> Self {
        ConvexDecisionList {
            entries: Vec::new(),
            horizon,
        }
    }

    /// Clear the list for reuse, keeping its allocation.
    fn reset(&mut self, horizon: usize) {
        self.entries.clear();
        self.horizon = horizon;
    }

    /// Insert a decision at `pos` with value `val`; `cost(l, r)` is the gap
    /// cost.  Decisions must be inserted in increasing `pos` order.
    fn insert(&mut self, pos: usize, val: i64, cost: &impl Fn(usize, usize) -> i64) {
        if val >= INF {
            return;
        }
        let candidate = |q: usize| val + cost(pos, q);
        // Pop entries that the new decision dominates from their own takeover.
        while let Some(&(start, dec, dval)) = self.entries.last() {
            if start > pos && candidate(start) <= dval + cost(dec, start) {
                self.entries.pop();
            } else {
                break;
            }
        }
        // Find the takeover position of the new decision vs the current last.
        let takeover = match self.entries.last() {
            None => pos + 1,
            Some(&(start, dec, dval)) => {
                let incumbent = |q: usize| dval + cost(dec, q);
                // First q in (max(start, pos)+1 ..= horizon] where the new
                // decision is at least as good (suffix property of convexity).
                // Galloping search: in the ascending insert streams produced
                // by the row-major sweeps, the takeover usually sits just
                // after the insert position, so probing base+1, base+2,
                // base+4, ... then binary-searching the bracketed interval is
                // O(log(takeover - pos)) amortized instead of a full-horizon
                // binary search per insert (same monotone predicate, so the
                // takeover found — and every stored value — is identical).
                let base = start.max(pos);
                let mut lo = base + 1;
                let mut hi;
                let mut step = 1usize;
                loop {
                    let probe = base + step;
                    if probe > self.horizon {
                        hi = self.horizon + 1; // horizon+1 = never
                        break;
                    }
                    if candidate(probe) <= incumbent(probe) {
                        hi = probe;
                        break;
                    }
                    lo = probe + 1;
                    step *= 2;
                }
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if candidate(mid) <= incumbent(mid) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        };
        if takeover <= self.horizon {
            self.entries.push((takeover, pos, val));
        }
    }

    /// Best value at query position `q` (must be greater than every inserted
    /// decision position), or `INF` if no decision applies.
    fn query(&self, q: usize, cost: &impl Fn(usize, usize) -> i64) -> i64 {
        let idx = self.entries.partition_point(|&(start, _, _)| start <= q);
        if idx == 0 {
            return INF;
        }
        let (_, dec, dval) = self.entries[idx - 1];
        dval + cost(dec, q)
    }

    /// Position a cursor for a run of queries at positions `>= q` (one binary
    /// search; subsequent [`ConvexDecisionList::query_at`] calls advance it
    /// linearly).  The cursor stays valid across interleaved `insert`s at
    /// positions at or past the last query point: pops only remove entries
    /// whose takeover exceeds the insert position (hence exceeds every
    /// earlier query position), and pushes append after them, so entries at
    /// or below the cursor never move.
    fn seek(&self, q: usize) -> u32 {
        self.entries.partition_point(|&(start, _, _)| start <= q) as u32
    }

    /// Cursor-amortized [`ConvexDecisionList::query`]: identical result,
    /// `O(advance)` instead of `O(log len)`.  Query positions through one
    /// cursor must be non-decreasing.
    fn query_at(&self, cursor: &mut u32, q: usize, cost: &impl Fn(usize, usize) -> i64) -> i64 {
        let mut idx = *cursor as usize;
        while idx < self.entries.len() && self.entries[idx].0 <= q {
            idx += 1;
        }
        *cursor = idx as u32;
        if idx == 0 {
            return INF;
        }
        let (_, dec, dval) = self.entries[idx - 1];
        dval + cost(dec, q)
    }

    /// Self-healing variant of [`ConvexDecisionList::query_at`] for cursors
    /// that persist across interleaved inserts at *arbitrary* positions
    /// (e.g. across packed-GAP rounds, where publish insertions land below
    /// the cursor's last query point).  Inserts pop only from the tail and
    /// push to the tail, so a stale cursor can only be off in one detectable
    /// way — pointing past an entry whose takeover now exceeds `q` — which is
    /// repaired with one binary search.  Identical result to `query`.
    fn query_tracked(
        &self,
        cursor: &mut u32,
        q: usize,
        cost: &impl Fn(usize, usize) -> i64,
    ) -> i64 {
        let len = self.entries.len();
        let mut idx = (*cursor as usize).min(len);
        while idx < len && self.entries[idx].0 <= q {
            idx += 1;
        }
        if idx > 0 && self.entries[idx - 1].0 > q {
            idx = self.entries.partition_point(|&(start, _, _)| start <= q);
        }
        *cursor = idx as u32;
        if idx == 0 {
            return INF;
        }
        let (_, dec, dval) = self.entries[idx - 1];
        dval + cost(dec, q)
    }
}

/// The optimized sequential algorithm `Γ_gap`: row-major evaluation with one
/// [`ConvexDecisionList`] per row (for `Q`) and per column (for `P`).
/// Requires convex gap costs.  `O(nm log(n+m))` work.
pub fn sequential_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    sequential_gap_impl(inst, None)
}

/// [`sequential_gap`] plus a [`GapProvenance`] record: two bits per cell
/// remembering whether the column (`P`) and row (`Q`) candidates were tight
/// at that cell.  The flags come for free (the candidates are evaluated
/// anyway) and let [`try_reconstruct_gap_ops_with_provenance`] trace back in
/// near-linear time instead of the grid-only scan's `O(n·(n+m))` worst case.
pub fn sequential_gap_with_provenance<W1, W2>(
    inst: &GapInstance<'_, W1, W2>,
) -> (GapResult, GapProvenance)
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let mut prov = GapProvenance::new(inst.a.len(), inst.b.len());
    let result = sequential_gap_impl(inst, Some(&mut prov));
    (result, prov)
}

fn sequential_gap_impl<W1, W2>(
    inst: &GapInstance<'_, W1, W2>,
    mut prov: Option<&mut GapProvenance>,
) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (n, m) = (inst.a.len(), inst.b.len());
    let mut d = vec![vec![INF; m + 1]; n + 1];
    let mut row_struct: Vec<ConvexDecisionList> =
        (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
    let mut col_struct: Vec<ConvexDecisionList> =
        (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
    let mut probes = 0u64;
    for i in 0..=n {
        for j in 0..=m {
            let value = if i == 0 && j == 0 {
                0
            } else {
                let p = col_struct[j].query(i, &inst.w1);
                let q = row_struct[i].query(j, &inst.w2);
                probes += 2;
                let mut best = p.min(q);
                if i > 0 && j > 0 && inst.matches(i, j) {
                    best = best.min(d[i - 1][j - 1]);
                }
                if let Some(prov) = prov.as_deref_mut() {
                    // `P == best` iff some i' < i explains the value with a
                    // gap in A, and symmetrically for `Q` (gap in B).
                    prov.record(i, j, p == best, q == best);
                }
                best
            };
            d[i][j] = value;
            row_struct[i].insert(j, value, &inst.w2);
            col_struct[j].insert(i, value, &inst.w1);
            metrics.add_edges(3);
        }
    }
    metrics.add_probes(probes);
    metrics.add_states(((n + 1) * (m + 1)) as u64);
    let cost = d[n][m];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// Parallel GAP: the grid DAG is evaluated frontier by frontier
/// (anti-diagonals `i + j = const`), all cells of a frontier in parallel, with
/// the same per-row/per-column convex decision structures as
/// [`sequential_gap`] (each structure receives exactly one insertion per
/// frontier, performed in parallel across rows/columns).  Work `O(nm log n)`.
pub fn parallel_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let d = run_phase_parallel(GapCordon::new(inst), &metrics);
    let cost = d[inst.a.len()][inst.b.len()];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for the parallel GAP evaluation: each round
/// processes one anti-diagonal frontier of the grid DAG.
pub struct GapCordon<'i, 'a, W1, W2> {
    inst: &'i GapInstance<'a, W1, W2>,
    d: Vec<Vec<i64>>,
    row_struct: Vec<ConvexDecisionList>,
    col_struct: Vec<ConvexDecisionList>,
    diag: usize,
    n: usize,
    m: usize,
    /// Reused per-round frontier-value buffer (grown once to the widest
    /// anti-diagonal).
    values: Vec<i64>,
}

impl<'i, 'a, W1, W2> GapCordon<'i, 'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Initialize the DP grid and seed the per-row/per-column structures with
    /// the boundary cell.
    pub fn new(inst: &'i GapInstance<'a, W1, W2>) -> Self {
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut d = vec![vec![INF; m + 1]; n + 1];
        d[0][0] = 0;
        let mut row_struct: Vec<ConvexDecisionList> =
            (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
        let mut col_struct: Vec<ConvexDecisionList> =
            (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
        row_struct[0].insert(0, 0, &inst.w2);
        col_struct[0].insert(0, 0, &inst.w1);
        GapCordon {
            inst,
            d,
            row_struct,
            col_struct,
            diag: 1,
            n,
            m,
            values: Vec::new(),
        }
    }
}

impl<W1, W2> PhaseParallel for GapCordon<'_, '_, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// The completed DP grid.
    type Output = Vec<Vec<i64>>;

    fn is_done(&self) -> bool {
        self.diag > self.n + self.m
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (inst, diag, n, m) = (self.inst, self.diag, self.n, self.m);
        // Cells (i, j) with i + j = diag; non-empty for every 1 <= diag <= n+m.
        let i_lo = diag.saturating_sub(m);
        let i_hi = diag.min(n);
        let d_ref = &self.d;
        let row_ref = &self.row_struct;
        let col_ref = &self.col_struct;
        let cells = i_hi - i_lo + 1;
        let grain = round_min_grain(cells);
        // Reuse the frontier-value buffer across rounds (`collect_into_vec`
        // refills it in place).
        let mut values = std::mem::take(&mut self.values);
        (i_lo..=i_hi)
            .into_par_iter()
            .map(|i| {
                let j = diag - i;
                let p = col_ref[j].query(i, &inst.w1);
                let q = row_ref[i].query(j, &inst.w2);
                let mut best = p.min(q);
                if i > 0 && j > 0 && inst.matches(i, j) {
                    best = best.min(d_ref[i - 1][j - 1]);
                }
                best
            })
            .with_min_len(grain)
            .collect_into_vec(&mut values);
        // Write the frontier values, then insert each cell into its row and
        // column structure (one insertion per structure, all structures
        // disjoint, so the two loops parallelize over rows and columns).
        for (off, &v) in values.iter().enumerate() {
            let i = i_lo + off;
            let j = diag - i;
            self.d[i][j] = v;
        }
        let w2 = &inst.w2;
        let w1 = &inst.w1;
        self.row_struct[i_lo..=i_hi]
            .par_iter_mut()
            .enumerate()
            .with_min_len(grain)
            .for_each(|(off, rs)| {
                let i = i_lo + off;
                let j = diag - i;
                rs.insert(j, values[off], w2);
            });
        let j_lo = diag - i_hi;
        let j_hi = diag - i_lo;
        let d_now = &self.d;
        self.col_struct[j_lo..=j_hi]
            .par_iter_mut()
            .enumerate()
            .with_min_len(grain)
            .for_each(|(off, cs)| {
                let j = j_lo + off;
                let i = diag - j;
                cs.insert(i, d_now[i][j], w1);
            });
        self.values = values;
        metrics.add_edges(3 * cells as u64);
        metrics.add_probes(2 * cells as u64);
        self.diag += 1;
        cells
    }

    fn finish(self) -> Self::Output {
        self.d
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per anti-diagonal: the grid depth n + m.
        Some((self.n + self.m) as u64)
    }
}

// ---------------------------------------------------------------------------
// Packed cordon (Theorem 5.2): rounds = effective depth instead of n + m.
// ---------------------------------------------------------------------------

/// Packed parallel GAP (Theorem 5.2): identical values and work as
/// [`parallel_gap`], but the round count equals the instance's *effective
/// depth* `k` — the longest chain of strict tentative-value improvements —
/// instead of the grid depth `n + m`.
///
/// Each round finalizes the entire *safe set*: every cell whose tentative
/// value (computed from already-finalized cells) provably equals its final DP
/// value.  A cell is kept back (Bad) exactly when a cell finalized in the
/// same round strictly improves its tentative, or when one of its
/// predecessors is kept back; one wasted probe per row per round is charged
/// to `wasted_states`.
pub fn parallel_gap_packed<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let d = run_phase_parallel(PackedGapCordon::new(inst), &metrics);
    let cost = d[inst.a.len()][inst.b.len()];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// [`parallel_gap_packed`] with a forced speculative block count — a testing
/// hook that bypasses the grain policy's `available_parallelism()` cap so
/// block-boundary behavior (including one row per block) can be exercised
/// deterministically on any host.  The count is clamped to the number of
/// candidate rows each round; `1` is exactly the sequential sweep.
pub fn parallel_gap_packed_with_blocks<W1, W2>(
    inst: &GapInstance<'_, W1, W2>,
    blocks: usize,
) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let d = run_phase_parallel(
        PackedGapCordon::new(inst).with_block_count(blocks),
        &metrics,
    );
    let cost = d[inst.a.len()][inst.b.len()];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// Within-round veto checks scan the finalized run directly (early-exit on
/// the first improving predecessor) while the run is at most this long;
/// longer runs upgrade to a `ConvexDecisionList` band.  Runs on the bench
/// workloads average 1–2 cells, so the bands almost never materialize.
const BAND_BRUTE_MAX: usize = 32;

/// Minimum candidate rows per speculative block (see
/// [`pardp_parutils::GrainHint::block_count`] for the `available_parallelism`
/// cap that sits on top).
const MIN_BLOCK_ROWS: usize = 64;

/// Floor of the per-row speculation horizon.  Each block speculates at most
/// `max(SPEC_CAP_MIN, 2 × previous round's longest run)` cells per row; the
/// fix-up computes anything past the horizon on demand, so the cap only
/// bounds wasted work, never correctness.
const SPEC_CAP_MIN: usize = 64;

/// Scratch for one speculative block of rows (reused across rounds).
///
/// `vals` caches, for every visited cell, the *pure* round-start tentative —
/// `min` of the frozen global column/row queries and the previous-round
/// diagonal.  That is exactly the value the sequential fix-up would compute
/// from scratch, so consuming the cache cannot change any decision (see the
/// module docs for the speculative-veto sweep invariant).  The block's own
/// veto simulation only decides how far to speculate.
struct GapBlock {
    /// Assigned candidate rows `lo..=hi` (empty when `lo > hi`).
    lo: usize,
    hi: usize,
    /// Per row: offset of its cached tentatives in `vals` (pushed at row
    /// start, so in-block column/diagonal lookups can index earlier rows).
    offs: Vec<u32>,
    /// Per row: absolute column end (exclusive) of the cached prefix.
    cache_end: Vec<u32>,
    /// Per row: speculative watermark — the first column the block's veto
    /// simulation could not settle.
    spec_fin: Vec<u32>,
    /// Cached tentatives, rows concatenated (each row starts at `r_start`).
    vals: Vec<i64>,
    /// Block-local cursors into the frozen global column lists.
    col_cursor: Vec<u32>,
    col_cursor_epoch: Vec<u64>,
    /// Block-local within-round column runs (speculative settlements).
    col_run_start: Vec<u32>,
    col_run_len: Vec<u32>,
    col_run_epoch: Vec<u64>,
    /// Block-local veto lists, built only past `BAND_BRUTE_MAX`.
    col_band: Vec<ConvexDecisionList>,
    row_band: ConvexDecisionList,
    epoch: u64,
    probes: u64,
}

impl GapBlock {
    fn new() -> Self {
        GapBlock {
            lo: 1,
            hi: 0,
            offs: Vec::new(),
            cache_end: Vec::new(),
            spec_fin: Vec::new(),
            vals: Vec::new(),
            col_cursor: Vec::new(),
            col_cursor_epoch: Vec::new(),
            col_run_start: Vec::new(),
            col_run_len: Vec::new(),
            col_run_epoch: Vec::new(),
            col_band: Vec::new(),
            row_band: ConvexDecisionList::new(0),
            epoch: 0,
            probes: 0,
        }
    }
}

/// Speculatively solve one block of rows against the round-start snapshot.
///
/// Reads only frozen state (the global decision lists, `r_start`, and grid
/// cells finalized in previous rounds), so any number of blocks can run in
/// parallel.  Caches the pure tentative of every visited cell and simulates
/// the veto rules with block-local knowledge only to bound the horizon; a
/// same-round diagonal predecessor outside the block stops the row (the one
/// dependency the snapshot cannot decide).
#[allow(clippy::too_many_arguments)]
fn speculate_block<W1, W2>(
    blk: &mut GapBlock,
    inst: &GapInstance<'_, W1, W2>,
    d: &[Vec<i64>],
    row_struct: &[ConvexDecisionList],
    col_struct: &[ConvexDecisionList],
    r_start: &[usize],
    cap: usize,
    n: usize,
    m: usize,
) where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let (w1, w2) = (&inst.w1, &inst.w2);
    blk.epoch += 1;
    if blk.col_cursor.len() < m + 1 {
        blk.col_cursor.resize(m + 1, 0);
        blk.col_cursor_epoch.resize(m + 1, 0);
        blk.col_run_start.resize(m + 1, 0);
        blk.col_run_len.resize(m + 1, 0);
        blk.col_run_epoch.resize(m + 1, 0);
        blk.col_band
            .resize_with(m + 1, || ConvexDecisionList::new(n));
    }
    blk.vals.clear();
    blk.offs.clear();
    blk.cache_end.clear();
    blk.spec_fin.clear();
    let mut probes = 0u64;
    // Block-local cutoff: exact for the first block (whose rows see the true
    // state above), optimistic for later blocks (their fix-up applies the
    // real one).
    let mut cutoff = m + 1;
    for i in blk.lo..=blk.hi {
        let start = r_start[i];
        let row_off = blk.vals.len() as u32;
        blk.offs.push(row_off);
        let mut j = start;
        // Settled prefix of this row in the simulation (fix-up may differ).
        let mut fin = start;
        if start < cutoff {
            let limit = cutoff.min(start + cap).min(m + 1);
            let mut row_cur = row_struct[i].seek(start);
            let mut row_list = false;
            while j < limit {
                // Pure round-start tentative (cached below even when the
                // simulation stops here: purity is what the fix-up relies
                // on, not the simulation's verdict).
                if blk.col_cursor_epoch[j] != blk.epoch {
                    blk.col_cursor_epoch[j] = blk.epoch;
                    blk.col_cursor[j] = col_struct[j].seek(i);
                }
                let mut t = col_struct[j].query_at(&mut blk.col_cursor[j], i, w1);
                t = t.min(row_struct[i].query_at(&mut row_cur, j, w2));
                probes += 2;
                let mut diag_new = INF;
                let mut barrier = false;
                if i > 0 && j > 0 && inst.matches(i, j) {
                    if j - 1 < r_start[i - 1] {
                        t = t.min(d[i - 1][j - 1]);
                    } else if i > blk.lo {
                        let prev = i - 1 - blk.lo;
                        if ((j - 1) as u32) < blk.spec_fin[prev] {
                            let off = blk.offs[prev] as usize + (j - 1 - r_start[i - 1]);
                            diag_new = blk.vals[off];
                        } else {
                            barrier = true;
                        }
                    } else {
                        // Same-round diagonal in another block.
                        barrier = true;
                    }
                }
                blk.vals.push(t);
                if barrier {
                    j += 1;
                    break;
                }
                // Veto simulation against block-local predecessors.
                let mut veto = diag_new < t;
                if !veto && blk.col_run_epoch[j] == blk.epoch {
                    let len = blk.col_run_len[j] as usize;
                    if len > BAND_BRUTE_MAX {
                        probes += 1;
                        veto = blk.col_band[j].query(i, w1) < t;
                    } else {
                        let first = blk.col_run_start[j] as usize;
                        for ip in (first..first + len).rev() {
                            probes += 1;
                            let v = blk.vals[blk.offs[ip - blk.lo] as usize + (j - r_start[ip])];
                            if v + w1(ip, i) < t {
                                veto = true;
                                break;
                            }
                        }
                    }
                }
                if !veto && j > start {
                    if row_list {
                        probes += 1;
                        veto = blk.row_band.query(j, w2) < t;
                    } else {
                        for jp in (start..j).rev() {
                            probes += 1;
                            let v = blk.vals[row_off as usize + (jp - start)];
                            if v + w2(jp, j) < t {
                                veto = true;
                                break;
                            }
                        }
                    }
                }
                if veto {
                    j += 1;
                    break;
                }
                // Settle (i, j) in the simulation.
                fin = j + 1;
                let run = j - start + 1;
                if row_list {
                    blk.row_band.insert(j, t, w2);
                } else if run > BAND_BRUTE_MAX {
                    blk.row_band.reset(m);
                    for jp in start..=j {
                        blk.row_band
                            .insert(jp, blk.vals[row_off as usize + (jp - start)], w2);
                    }
                    row_list = true;
                }
                if blk.col_run_epoch[j] != blk.epoch {
                    blk.col_run_epoch[j] = blk.epoch;
                    blk.col_run_start[j] = i as u32;
                    blk.col_run_len[j] = 1;
                } else {
                    blk.col_run_len[j] += 1;
                    let len = blk.col_run_len[j] as usize;
                    match len.cmp(&(BAND_BRUTE_MAX + 1)) {
                        std::cmp::Ordering::Equal => {
                            blk.col_band[j].reset(n);
                            let first = blk.col_run_start[j] as usize;
                            for ip in first..=i {
                                let v =
                                    blk.vals[blk.offs[ip - blk.lo] as usize + (j - r_start[ip])];
                                blk.col_band[j].insert(ip, v, w1);
                            }
                        }
                        std::cmp::Ordering::Greater => {
                            blk.col_band[j].insert(i, t, w1);
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                j += 1;
            }
        }
        blk.cache_end.push(j as u32);
        blk.spec_fin.push(fin as u32);
        cutoff = cutoff.min(fin);
    }
    blk.probes = probes;
}

/// [`PhaseParallel`] instance for the packed GAP evaluation.
///
/// The finalized region is always a *staircase* (a down-set of the grid): row
/// `i` is finalized exactly on columns `0..r[i]`, with `r` non-increasing in
/// `i`.  Each round extends every watermark as far as the safe-set rule
/// allows:
///
/// * a cell's tentative `T` is the best reachable value through cells
///   finalized *before* this round (global row/column structures, plus the
///   diagonal match edge),
/// * a cell is **safe** iff every unfinalized predecessor is safe and no
///   predecessor finalized *this* round strictly improves `T`.  Within-round
///   predecessors are checked against the finalized run directly (or a band
///   structure once the run is long); cross-row blocking is the `cutoff`
///   watermark minimum, which also keeps the staircase invariant.
///
/// Every cell whose predecessors were all finalized before the round is safe
/// by construction, so each round finalizes at least the whole ready
/// wavefront — rounds never exceed `n + m` and match the effective depth
/// exactly (pinned against a brute-force oracle in the tests).
///
/// The round is executed as a block-parallel speculative sweep (speculation
/// against the round-start snapshot, then an exact sequential fix-up — see
/// the module docs), so grids, rounds, and frontiers are identical at any
/// thread count and any block count.
pub struct PackedGapCordon<'i, 'a, W1, W2> {
    inst: &'i GapInstance<'a, W1, W2>,
    d: Vec<Vec<i64>>,
    /// Global structures over cells finalized in *previous* rounds.
    row_struct: Vec<ConvexDecisionList>,
    col_struct: Vec<ConvexDecisionList>,
    /// `r[i]` = first unfinalized column of row `i` (`m + 1` = row done).
    r: Vec<usize>,
    /// Snapshot of `r` at the start of the current round (kept equal to `r`
    /// between rounds by a delta re-sync over the touched row range).
    r_start: Vec<usize>,
    /// Persistent self-healing cursors into the global lists (see
    /// `ConvexDecisionList::query_tracked`): queries resume near where the
    /// previous round left off instead of re-binary-searching.
    col_cursor: Vec<u32>,
    row_cursor: Vec<u32>,
    /// Per-column within-round finalization runs (contiguous row ranges, by
    /// the staircase invariant).
    col_run_start: Vec<u32>,
    col_run_len: Vec<u32>,
    col_run_epoch: Vec<u64>,
    /// Per-column veto lists, built only when a run outgrows the brute scan.
    col_band: Vec<ConvexDecisionList>,
    /// Veto list for the row currently being swept, ditto.
    row_band: ConvexDecisionList,
    epoch: u64,
    /// First row that can still make progress (rows above are finalized).
    row_lo: usize,
    n: usize,
    m: usize,
    /// Speculative block scratch (reused across rounds).
    blocks: Vec<GapBlock>,
    /// Longest single-row run of the previous round (speculation cap input).
    prev_max_run: usize,
    /// Testing hook: force the block count instead of the grain policy's.
    forced_blocks: Option<usize>,
}

impl<'i, 'a, W1, W2> PackedGapCordon<'i, 'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Initialize the DP grid, the staircase watermarks, and the structures.
    pub fn new(inst: &'i GapInstance<'a, W1, W2>) -> Self {
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut d = vec![vec![INF; m + 1]; n + 1];
        d[0][0] = 0;
        let mut row_struct: Vec<ConvexDecisionList> =
            (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
        let mut col_struct: Vec<ConvexDecisionList> =
            (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
        row_struct[0].insert(0, 0, &inst.w2);
        col_struct[0].insert(0, 0, &inst.w1);
        let mut r = vec![0usize; n + 1];
        r[0] = 1;
        PackedGapCordon {
            inst,
            d,
            row_struct,
            col_struct,
            r_start: r.clone(),
            r,
            col_cursor: vec![0; m + 1],
            row_cursor: vec![0; n + 1],
            col_run_start: vec![0; m + 1],
            col_run_len: vec![0; m + 1],
            col_run_epoch: vec![0; m + 1],
            col_band: (0..=m).map(|_| ConvexDecisionList::new(n)).collect(),
            row_band: ConvexDecisionList::new(m),
            epoch: 0,
            row_lo: 0,
            n,
            m,
            blocks: Vec::new(),
            prev_max_run: 0,
            forced_blocks: None,
        }
    }

    /// Force the speculative block count (testing hook — see
    /// [`parallel_gap_packed_with_blocks`]).  Clamped to the candidate row
    /// count each round; `1` disables speculation entirely.
    pub fn with_block_count(mut self, blocks: usize) -> Self {
        self.forced_blocks = Some(blocks.max(1));
        self
    }
}

impl<W1, W2> PhaseParallel for PackedGapCordon<'_, '_, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// The completed DP grid.
    type Output = Vec<Vec<i64>>;

    fn is_done(&self) -> bool {
        // `r` is non-increasing, so the last row's watermark bounds them all.
        self.r[self.n] > self.m
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (inst, n, m) = (self.inst, self.n, self.m);
        let (w1, w2) = (&inst.w1, &inst.w2);
        self.epoch += 1;
        while self.row_lo <= n && self.r[self.row_lo] > m {
            self.row_lo += 1;
        }
        let row_lo = self.row_lo;
        let mut probes = 0u64;
        let mut wasted = 0u64;

        // --- Speculative phase: blocks of rows against the snapshot. ------
        let rows_avail = n - row_lo + 1;
        let nblocks = match self.forced_blocks {
            Some(b) => b.clamp(1, rows_avail),
            None => round_block_count(rows_avail, MIN_BLOCK_ROWS),
        };
        if nblocks > 1 {
            while self.blocks.len() < nblocks {
                self.blocks.push(GapBlock::new());
            }
            let chunk = rows_avail.div_ceil(nblocks);
            for (k, blk) in self.blocks[..nblocks].iter_mut().enumerate() {
                blk.lo = (row_lo + k * chunk).min(n + 1);
                blk.hi = (row_lo + (k + 1) * chunk).min(n + 1) - 1;
            }
            let cap = SPEC_CAP_MIN.max(2 * self.prev_max_run);
            let (d, row_struct, col_struct, r_start) =
                (&self.d, &self.row_struct, &self.col_struct, &self.r_start);
            self.blocks[..nblocks]
                .par_iter_mut()
                .with_min_len(1)
                .for_each(|blk| {
                    speculate_block(blk, inst, d, row_struct, col_struct, r_start, cap, n, m);
                });
            for blk in &self.blocks[..nblocks] {
                probes += blk.probes;
            }
        }

        // --- Sequential fix-up: the exact sweep, consuming cached
        // tentatives where the speculation got that far. ------------------
        let epoch = self.epoch;
        let PackedGapCordon {
            d,
            row_struct,
            col_struct,
            r,
            r_start,
            col_cursor,
            row_cursor,
            col_run_start,
            col_run_len,
            col_run_epoch,
            col_band,
            row_band,
            blocks,
            prev_max_run,
            ..
        } = self;
        let mut finalized = 0usize;
        // Touched column range of this round (for the parallel publish phase).
        let (mut col_lo, mut col_hi) = (m + 1, 0usize);
        let mut row_hi = row_lo;
        let mut max_run = 0usize;
        let mut bi = 0usize; // block pointer (blocks cover ascending rows)
                             // `cutoff` = min over rows above of the post-round watermark: a cell
                             // (i, j) with j >= cutoff has an unfinalized column predecessor that
                             // this round does not resolve, so it cannot be safe.  Rows above
                             // `row_lo` are fully finalized and impose no cutoff.
        let mut cutoff = m + 1;
        for i in row_lo..=n {
            if cutoff == 0 {
                break;
            }
            row_hi = i;
            let start = r[i];
            if start >= cutoff {
                // Blocked at its first unfinalized cell by the column above;
                // the new watermark equals the old one (>= cutoff already).
                continue;
            }
            // Cached tentatives for this row, if a block speculated it.
            let (cache, cache_end): (&[i64], usize) = if nblocks > 1 {
                while bi < nblocks && blocks[bi].hi < i {
                    bi += 1;
                }
                if bi < nblocks && i >= blocks[bi].lo {
                    let k = i - blocks[bi].lo;
                    let off = blocks[bi].offs[k] as usize;
                    let end = blocks[bi].cache_end[k] as usize;
                    (&blocks[bi].vals[off..off + (end - start)], end)
                } else {
                    (&[], start)
                }
            } else {
                (&[], start)
            };
            let (above, below) = d.split_at_mut(i);
            let drow = &mut below[0];
            let mut row_list = false;
            let mut j = start;
            let mut vetoed = false;
            while j < cutoff {
                // Tentative from cells finalized before this round: the
                // cached speculative value is the same pure function of the
                // snapshot, so cache hits and fresh computes are
                // interchangeable bit for bit.
                let mut t = if j < cache_end {
                    cache[j - start]
                } else {
                    let tc = col_struct[j].query_tracked(&mut col_cursor[j], i, w1);
                    probes += 2;
                    tc.min(row_struct[i].query_tracked(&mut row_cursor[i], j, w2))
                };
                // The diagonal predecessor is always finalized here (it lies
                // strictly left of the cutoff): merge it into the tentative
                // if it predates the round (idempotent for cache hits, which
                // already carry the merge), veto on it if it is from this
                // round and strictly improving.
                let mut diag_new = INF;
                if i > 0 && j > 0 && inst.matches(i, j) {
                    if j - 1 < r_start[i - 1] {
                        t = t.min(above[i - 1][j - 1]);
                    } else {
                        diag_new = above[i - 1][j - 1];
                    }
                }
                // Veto: a cell finalized this round strictly improves the
                // tentative => the cell's value is not settled yet (Bad).
                let mut veto = diag_new < t;
                if !veto && col_run_epoch[j] == epoch {
                    let len = col_run_len[j] as usize;
                    if len > BAND_BRUTE_MAX {
                        probes += 1;
                        veto = col_band[j].query(i, w1) < t;
                    } else {
                        let first = col_run_start[j] as usize;
                        for ip in (first..first + len).rev() {
                            probes += 1;
                            if above[ip][j] + w1(ip, i) < t {
                                veto = true;
                                break;
                            }
                        }
                    }
                }
                if !veto && j > start {
                    if row_list {
                        probes += 1;
                        veto = row_band.query(j, w2) < t;
                    } else {
                        for jp in (start..j).rev() {
                            probes += 1;
                            if drow[jp] + w2(jp, j) < t {
                                veto = true;
                                break;
                            }
                        }
                    }
                }
                if veto {
                    wasted += 1;
                    vetoed = true;
                    break;
                }
                drow[j] = t;
                // Register (i, j) in the within-round veto state.
                let run = j - start + 1;
                if row_list {
                    row_band.insert(j, t, w2);
                } else if run > BAND_BRUTE_MAX {
                    row_band.reset(m);
                    for jp in start..=j {
                        row_band.insert(jp, drow[jp], w2);
                    }
                    row_list = true;
                }
                if col_run_epoch[j] != epoch {
                    col_run_epoch[j] = epoch;
                    col_run_start[j] = i as u32;
                    col_run_len[j] = 1;
                } else {
                    col_run_len[j] += 1;
                    let len = col_run_len[j] as usize;
                    match len.cmp(&(BAND_BRUTE_MAX + 1)) {
                        std::cmp::Ordering::Equal => {
                            col_band[j].reset(n);
                            let first = col_run_start[j] as usize;
                            for ip in first..i {
                                col_band[j].insert(ip, above[ip][j], w1);
                            }
                            col_band[j].insert(i, t, w1);
                        }
                        std::cmp::Ordering::Greater => {
                            col_band[j].insert(i, t, w1);
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                finalized += 1;
                j += 1;
            }
            // Over-speculated cells the fix-up never consumed.
            let consumed = if vetoed { j + 1 } else { j };
            wasted += cache_end.saturating_sub(consumed.max(start)) as u64;
            if j > start {
                col_lo = col_lo.min(start);
                col_hi = col_hi.max(j);
                max_run = max_run.max(j - start);
            }
            r[i] = j;
            cutoff = cutoff.min(j);
        }
        *prev_max_run = max_run;
        // Publish this round's cells into the global structures: each row and
        // each column receives a contiguous, independent run of insertions
        // (the staircase invariant makes per-column row ranges contiguous).
        if finalized > 0 {
            let (rs, rstart, d) = (&*r, &*r_start, &*d);
            let grain_rows = round_min_grain(row_hi - row_lo + 1);
            row_struct[row_lo..=row_hi]
                .par_iter_mut()
                .enumerate()
                .with_min_len(grain_rows)
                .for_each(|(off, st)| {
                    let i = row_lo + off;
                    for j in rstart[i]..rs[i] {
                        st.insert(j, d[i][j], w2);
                    }
                });
            let grain_cols = round_min_grain(col_hi - col_lo);
            let (run_start, run_len, run_epoch) = (&*col_run_start, &*col_run_len, &*col_run_epoch);
            col_struct[col_lo..col_hi]
                .par_iter_mut()
                .enumerate()
                .with_min_len(grain_cols)
                .for_each(|(off, st)| {
                    let j = col_lo + off;
                    // Rows finalized in column j this round (a contiguous
                    // range by the staircase invariant) were registered in
                    // the column-run tables during the sweep — no binary
                    // search over the watermarks needed.
                    if run_epoch[j] != epoch {
                        return;
                    }
                    let first = run_start[j] as usize;
                    for i in first..first + run_len[j] as usize {
                        st.insert(i, d[i][j], w1);
                    }
                });
        }
        // Re-sync the snapshot over the touched rows only (every other row's
        // watermark is unchanged, so `r_start == r` holds for the next round
        // without an O(n) copy).
        r_start[row_lo..=row_hi].copy_from_slice(&r[row_lo..=row_hi]);
        metrics.add_edges(3 * finalized as u64);
        metrics.add_probes(probes);
        metrics.add_wasted(wasted);
        finalized
    }

    fn finish(self) -> Self::Output {
        self.d
    }

    fn round_budget(&self) -> Option<u64> {
        // The effective depth never exceeds the grid depth n + m.
        Some((self.n + self.m) as u64)
    }
}

// ---------------------------------------------------------------------------
// Alignment reconstruction.
// ---------------------------------------------------------------------------

/// One move of an optimal GAP alignment, as recovered by
/// [`reconstruct_gap_ops`].  Positions are 1-based, matching the DP indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapOp {
    /// Align `A[i]` with `B[j]` (the characters are equal).
    Match {
        /// Position in `A`.
        i: usize,
        /// Position in `B`.
        j: usize,
    },
    /// Delete the block `A[l+1..=r]` at cost `w1(l, r)`.
    GapA {
        /// Left endpoint (exclusive).
        l: usize,
        /// Right endpoint (inclusive).
        r: usize,
    },
    /// Delete the block `B[l+1..=r]` at cost `w2(l, r)`.
    GapB {
        /// Left endpoint (exclusive).
        l: usize,
        /// Right endpoint (inclusive).
        r: usize,
    },
}

/// Traceback failure: no predecessor explains the value at cell `(i, j)` —
/// the grid is not a valid GAP DP grid for the instance (or the provenance
/// record belongs to a different grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapTracebackError {
    /// Row of the unexplained cell.
    pub i: usize,
    /// Column of the unexplained cell.
    pub j: usize,
    /// The unexplained value `d[i][j]`.
    pub value: i64,
}

impl core::fmt::Display for GapTracebackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "not a valid GAP DP grid at cell ({}, {}): value {} has no predecessor",
            self.i, self.j, self.value
        )
    }
}

impl std::error::Error for GapTracebackError {}

/// Per-cell predecessor flags recorded by [`sequential_gap_with_provenance`]:
/// two bits per grid cell (packed, `(n+1)(m+1)/4` bytes) saying whether the
/// column candidate `P` (a gap in `A`) and/or the row candidate `Q` (a gap in
/// `B`) attained the cell's final value.
#[derive(Debug, Clone)]
pub struct GapProvenance {
    bits: Vec<u64>,
    cols: usize,
}

impl GapProvenance {
    fn new(n: usize, m: usize) -> Self {
        let cells = (n + 1) * (m + 1);
        GapProvenance {
            bits: vec![0u64; (2 * cells).div_ceil(64)],
            cols: m + 1,
        }
    }

    #[inline]
    fn slot(&self, i: usize, j: usize) -> (usize, u32) {
        let k = 2 * (i * self.cols + j);
        (k >> 6, (k & 63) as u32)
    }

    #[inline]
    fn record(&mut self, i: usize, j: usize, a_tight: bool, b_tight: bool) {
        let (word, off) = self.slot(i, j);
        self.bits[word] |= ((a_tight as u64) | ((b_tight as u64) << 1)) << off;
    }

    /// Did a gap in `A` (some `i' < i`) attain `d[i][j]`?
    #[inline]
    pub fn a_tight(&self, i: usize, j: usize) -> bool {
        let (word, off) = self.slot(i, j);
        (self.bits[word] >> off) & 1 != 0
    }

    /// Did a gap in `B` (some `j' < j`) attain `d[i][j]`?
    #[inline]
    pub fn b_tight(&self, i: usize, j: usize) -> bool {
        let (word, off) = self.slot(i, j);
        (self.bits[word] >> off) & 2 != 0
    }
}

/// Trace one optimal alignment back through a completed DP grid `d` (as
/// returned by any of the GAP evaluations).  Deterministic tie-breaking:
/// prefer a match, then the shortest gap in `A`, then the shortest gap in
/// `B` — so identical grids always reconstruct identical alignments.
///
/// # Panics
///
/// Panics if `d` is not a valid DP grid for `inst` (no predecessor explains
/// some cell's value).  Use [`try_reconstruct_gap_ops`] for a `Result`, and
/// [`try_reconstruct_gap_ops_with_provenance`] for the near-linear variant.
pub fn reconstruct_gap_ops<W1, W2>(inst: &GapInstance<'_, W1, W2>, d: &[Vec<i64>]) -> Vec<GapOp>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    match try_reconstruct_gap_ops(inst, d) {
        Ok(ops) => ops,
        // analyze: allow(no-panics): documented panicking facade over the
        // typed `try_reconstruct_gap_ops` (see the function docs).
        Err(e) => panic!("{e}"),
    }
}

/// Fallible traceback through a completed DP grid, same tie-breaking as
/// [`reconstruct_gap_ops`].
///
/// Works on any grid with no extra bookkeeping, but each gap op re-derives
/// its predecessor by scanning candidates nearest-first: *successful* scans
/// telescope (their total length is the summed gap length, at most `n + m`),
/// yet a cell whose value is explained only by the other string's gap — or
/// by nothing, on a corrupted grid — pays a full `O(i)` or `O(j)` scan, so
/// the worst case is `O(n·(n+m))`.  When the grid came from
/// [`sequential_gap_with_provenance`], use
/// [`try_reconstruct_gap_ops_with_provenance`] instead: the recorded flags
/// pick the branch in `O(1)` and every scan then succeeds, making traceback
/// `O(n + m)` overall.
pub fn try_reconstruct_gap_ops<W1, W2>(
    inst: &GapInstance<'_, W1, W2>,
    d: &[Vec<i64>],
) -> Result<Vec<GapOp>, GapTracebackError>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let (n, m) = (inst.a.len(), inst.b.len());
    assert_eq!(d.len(), n + 1, "grid has wrong number of rows");
    assert_eq!(d[0].len(), m + 1, "grid has wrong number of columns");
    let (mut i, mut j) = (n, m);
    let mut ops = Vec::new();
    while i > 0 || j > 0 {
        let cur = d[i][j];
        if i > 0 && j > 0 && inst.matches(i, j) && d[i - 1][j - 1] == cur {
            ops.push(GapOp::Match { i, j });
            i -= 1;
            j -= 1;
        } else if let Some(ip) = (0..i).rev().find(|&ip| d[ip][j] + (inst.w1)(ip, i) == cur) {
            ops.push(GapOp::GapA { l: ip, r: i });
            i = ip;
        } else if let Some(jp) = (0..j).rev().find(|&jp| d[i][jp] + (inst.w2)(jp, j) == cur) {
            ops.push(GapOp::GapB { l: jp, r: j });
            j = jp;
        } else {
            return Err(GapTracebackError { i, j, value: cur });
        }
    }
    ops.reverse();
    Ok(ops)
}

/// Near-linear traceback using the provenance flags recorded by
/// [`sequential_gap_with_provenance`]: the branch (match / gap in `A` / gap
/// in `B`) is decided in `O(1)` per op from the flags — with the identical
/// match-first, then-`A`, then-`B` priority as [`reconstruct_gap_ops`], since
/// `a_tight` holds exactly when the grid-only scan would find an `i'` — and
/// the nearest-first predecessor scans are then guaranteed to succeed, so
/// their lengths telescope to the summed gap length: `O(n + m)` total.
///
/// Errors if `d` and `prov` are inconsistent with the instance (e.g. a
/// corrupted grid, or provenance recorded for a different grid).
pub fn try_reconstruct_gap_ops_with_provenance<W1, W2>(
    inst: &GapInstance<'_, W1, W2>,
    d: &[Vec<i64>],
    prov: &GapProvenance,
) -> Result<Vec<GapOp>, GapTracebackError>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let (n, m) = (inst.a.len(), inst.b.len());
    assert_eq!(d.len(), n + 1, "grid has wrong number of rows");
    assert_eq!(d[0].len(), m + 1, "grid has wrong number of columns");
    let (mut i, mut j) = (n, m);
    let mut ops = Vec::new();
    while i > 0 || j > 0 {
        let cur = d[i][j];
        let err = GapTracebackError { i, j, value: cur };
        if i > 0 && j > 0 && inst.matches(i, j) && d[i - 1][j - 1] == cur {
            ops.push(GapOp::Match { i, j });
            i -= 1;
            j -= 1;
        } else if i > 0 && prov.a_tight(i, j) {
            let ip = (0..i)
                .rev()
                .find(|&ip| d[ip][j] + (inst.w1)(ip, i) == cur)
                .ok_or(err)?;
            ops.push(GapOp::GapA { l: ip, r: i });
            i = ip;
        } else if j > 0 && prov.b_tight(i, j) {
            let jp = (0..j)
                .rev()
                .find(|&jp| d[i][jp] + (inst.w2)(jp, j) == cur)
                .ok_or(err)?;
            ops.push(GapOp::GapB { l: jp, r: j });
            j = jp;
        } else {
            return Err(err);
        }
    }
    ops.reverse();
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_string(n: usize, seed: u64, alphabet: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % alphabet) as u8
            })
            .collect()
    }

    #[test]
    fn identical_strings_align_for_free() {
        let a = pseudo_string(30, 1, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        assert_eq!(naive_gap(&inst).cost, 0);
        assert_eq!(sequential_gap(&inst).cost, 0);
        assert_eq!(parallel_gap(&inst).cost, 0);
    }

    #[test]
    fn deleting_everything_when_no_matches() {
        // Disjoint alphabets: the only option is to delete both strings whole.
        let a = vec![0u8; 12];
        let b = vec![1u8; 7];
        let inst = convex_gap_instance(&a, &b, 3, 2, 0);
        let expect = (3 + 2 * 12) + (3 + 2 * 7);
        assert_eq!(naive_gap(&inst).cost, expect);
        assert_eq!(sequential_gap(&inst).cost, expect);
        assert_eq!(parallel_gap(&inst).cost, expect);
    }

    #[test]
    fn optimized_algorithms_match_naive_on_random_inputs() {
        for seed in 0..6 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1), (50, 3, 2)] {
                let a = pseudo_string(28, seed, 3);
                let b = pseudo_string(23, seed + 77, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                let want = naive_gap(&inst);
                let seq = sequential_gap(&inst);
                let par = parallel_gap(&inst);
                assert_eq!(seq.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
                assert_eq!(par.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
            }
        }
    }

    #[test]
    fn asymmetric_gap_costs() {
        // Deleting from A is much more expensive than deleting from B.
        let a = pseudo_string(20, 3, 2);
        let b = pseudo_string(25, 9, 2);
        let inst = GapInstance::new(
            &a,
            &b,
            |l: usize, r: usize| 100 + 10 * (r - l) as i64,
            |l: usize, r: usize| 1 + (r - l) as i64,
        );
        let want = naive_gap(&inst);
        assert_eq!(sequential_gap(&inst).d, want.d);
        assert_eq!(parallel_gap(&inst).d, want.d);
    }

    #[test]
    fn empty_strings() {
        let empty: Vec<u8> = vec![];
        let b = pseudo_string(5, 2, 3);
        let inst = convex_gap_instance(&empty, &b, 4, 1, 1);
        let want = naive_gap(&inst);
        // Splitting the deletion of B into gaps of 2 and 3 beats one gap of 5:
        // (4+2+4) + (4+3+9) = 26 < 4+5+25 = 34.
        assert_eq!(want.cost, 26);
        assert_eq!(sequential_gap(&inst).cost, want.cost);
        assert_eq!(parallel_gap(&inst).cost, want.cost);
        let inst = convex_gap_instance(&empty, &empty, 4, 1, 1);
        assert_eq!(parallel_gap(&inst).cost, 0);
    }

    #[test]
    fn parallel_rounds_equal_grid_depth() {
        let a = pseudo_string(15, 5, 4);
        let b = pseudo_string(10, 6, 4);
        let inst = convex_gap_instance(&a, &b, 2, 1, 1);
        let r = parallel_gap(&inst);
        assert_eq!(r.metrics.rounds, 25);
    }

    #[test]
    fn block_deletion_beats_char_by_char_with_convex_open_cost() {
        // A = B plus an inserted block; with a large opening cost the optimum
        // removes the block with a single gap.
        let mut a = pseudo_string(40, 8, 5);
        let b = a.clone();
        // Insert a block of 6 junk symbols (value 9, absent from b) into a.
        for _ in 0..6 {
            a.insert(20, 9);
        }
        let inst = convex_gap_instance(&a, &b, 30, 1, 0);
        let want = naive_gap(&inst);
        // One gap of length 6 in A: 30 + 6.
        assert_eq!(want.cost, 36);
        assert_eq!(parallel_gap(&inst).cost, 36);
        assert_eq!(sequential_gap(&inst).cost, 36);
    }

    /// Brute-force oracle for the packed schedule: simulate round assignment
    /// cell by cell.  A cell finalizes in round `M` (the latest round among
    /// its predecessors) when the best value through *earlier*-finalized
    /// predecessors already equals its DP value, and in round `M + 1`
    /// otherwise (its tentative still strictly improves in round `M`).  The
    /// maximum over all cells is the instance's effective depth.
    fn effective_depth_oracle<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> u64
    where
        W1: Fn(usize, usize) -> i64 + Sync,
        W2: Fn(usize, usize) -> i64 + Sync,
    {
        let d = naive_gap(inst).d;
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut rd = vec![vec![0u64; m + 1]; n + 1];
        let mut depth = 0;
        for i in 0..=n {
            for j in 0..=m {
                if i == 0 && j == 0 {
                    continue;
                }
                let mut preds: Vec<(u64, i64)> = Vec::new();
                for ip in 0..i {
                    preds.push((rd[ip][j], d[ip][j] + (inst.w1)(ip, i)));
                }
                for jp in 0..j {
                    preds.push((rd[i][jp], d[i][jp] + (inst.w2)(jp, j)));
                }
                if i > 0 && j > 0 && inst.matches(i, j) {
                    preds.push((rd[i - 1][j - 1], d[i - 1][j - 1]));
                }
                let max_r = preds.iter().map(|&(r, _)| r).max().unwrap();
                let older = preds
                    .iter()
                    .filter(|&&(r, _)| r < max_r)
                    .map(|&(_, v)| v)
                    .min()
                    .unwrap_or(INF);
                rd[i][j] = if older == d[i][j] { max_r } else { max_r + 1 };
                depth = depth.max(rd[i][j]);
            }
        }
        depth
    }

    fn assert_packed_depth<W1, W2>(inst: &GapInstance<'_, W1, W2>)
    where
        W1: Fn(usize, usize) -> i64 + Sync,
        W2: Fn(usize, usize) -> i64 + Sync,
    {
        let packed = parallel_gap_packed(inst);
        let depth = effective_depth_oracle(inst);
        assert!(
            packed.metrics.rounds <= depth + 1,
            "packed rounds {} exceed effective depth {depth} + 1",
            packed.metrics.rounds
        );
        assert_eq!(
            packed.metrics.rounds, depth,
            "packed rounds should match the effective depth exactly"
        );
        assert!(packed.metrics.rounds <= (inst.a.len() + inst.b.len()) as u64);
    }

    #[test]
    fn packed_matches_wavefront_and_naive_on_random_inputs() {
        for seed in 0..6 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1), (50, 3, 2)] {
                let a = pseudo_string(28, seed, 3);
                let b = pseudo_string(23, seed + 77, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                let want = naive_gap(&inst);
                let wave = parallel_gap(&inst);
                let packed = parallel_gap_packed(&inst);
                assert_eq!(packed.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
                assert_eq!(packed.d, wave.d, "seed {seed} cost ({open},{ext},{quad})");
                assert!(
                    packed.metrics.rounds <= wave.metrics.rounds,
                    "packing must never use more rounds than the wavefront"
                );
                assert_eq!(
                    reconstruct_gap_ops(&inst, &packed.d),
                    reconstruct_gap_ops(&inst, &wave.d),
                    "identical grids must reconstruct identical alignments"
                );
            }
        }
    }

    #[test]
    fn packed_matches_wavefront_on_adversarial_instances() {
        // Identical strings: the all-match diagonal aligns for free.
        let a = pseudo_string(30, 1, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        let packed = parallel_gap_packed(&inst);
        assert_eq!(packed.cost, 0);
        assert_eq!(packed.d, parallel_gap(&inst).d);

        // Disjoint alphabets: both strings must be deleted whole.
        let z = vec![0u8; 12];
        let o = vec![1u8; 7];
        let inst = convex_gap_instance(&z, &o, 3, 2, 0);
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);

        // Empty strings on either side, and both empty (zero rounds).
        let empty: Vec<u8> = vec![];
        let b = pseudo_string(5, 2, 3);
        let inst = convex_gap_instance(&empty, &b, 4, 1, 1);
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);
        let inst = convex_gap_instance(&b, &empty, 4, 1, 1);
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);
        let inst = convex_gap_instance(&empty, &empty, 4, 1, 1);
        let trivial = parallel_gap_packed(&inst);
        assert_eq!(trivial.cost, 0);
        assert_eq!(trivial.metrics.rounds, 0);

        // Asymmetric costs (deleting from A is much more expensive).
        let a = pseudo_string(20, 3, 2);
        let b = pseudo_string(25, 9, 2);
        let inst = GapInstance::new(
            &a,
            &b,
            |l: usize, r: usize| 100 + 10 * (r - l) as i64,
            |l: usize, r: usize| 1 + (r - l) as i64,
        );
        assert_eq!(parallel_gap_packed(&inst).d, parallel_gap(&inst).d);
    }

    #[test]
    fn packed_rounds_equal_effective_depth() {
        for seed in 0..4 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1)] {
                let a = pseudo_string(18, seed, 3);
                let b = pseudo_string(15, seed + 41, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                assert_packed_depth(&inst);
            }
        }
        // Adversarial shapes.
        let a = pseudo_string(16, 1, 4);
        assert_packed_depth(&convex_gap_instance(&a, &a, 5, 1, 1));
        let z = vec![0u8; 10];
        let o = vec![1u8; 8];
        assert_packed_depth(&convex_gap_instance(&z, &o, 3, 2, 0));
        let empty: Vec<u8> = vec![];
        assert_packed_depth(&convex_gap_instance(&empty, &o, 4, 1, 1));
    }

    #[test]
    fn packed_compresses_rounds_on_shallow_instances() {
        // Disjoint alphabets with an affine cost have effective depth 2: one
        // gap along each axis reaches every cell through round-1 boundary
        // cells.  The wavefront still runs all n + m anti-diagonals; the
        // packed cordon collapses them.
        let z = vec![0u8; 60];
        let o = vec![1u8; 60];
        let inst = convex_gap_instance(&z, &o, 3, 2, 0);
        let wave = parallel_gap(&inst);
        let packed = parallel_gap_packed(&inst);
        assert_eq!(wave.metrics.rounds, 120);
        assert_eq!(packed.d, wave.d);
        assert_eq!(packed.metrics.rounds, 2);

        // An all-match instance is the opposite extreme: the diagonal is a
        // chain of strict improvements, so the effective depth is n — still
        // half the wavefront's 2n rounds.
        let a = pseudo_string(60, 7, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        let wave = parallel_gap(&inst);
        let packed = parallel_gap_packed(&inst);
        assert_eq!(packed.d, wave.d);
        assert_eq!(packed.metrics.rounds, 60);
        assert_eq!(wave.metrics.rounds, 120);
    }

    #[test]
    fn reconstruction_covers_both_strings_and_recomputes_cost() {
        let a = pseudo_string(24, 11, 3);
        let b = pseudo_string(19, 12, 3);
        let inst = convex_gap_instance(&a, &b, 4, 1, 1);
        let res = parallel_gap_packed(&inst);
        let ops = reconstruct_gap_ops(&inst, &res.d);
        let (mut i, mut j, mut cost) = (0usize, 0usize, 0i64);
        for op in &ops {
            match *op {
                GapOp::Match { i: oi, j: oj } => {
                    assert_eq!((oi, oj), (i + 1, j + 1), "match must advance both");
                    assert_eq!(a[oi - 1], b[oj - 1], "matched characters must agree");
                    i = oi;
                    j = oj;
                }
                GapOp::GapA { l, r } => {
                    assert_eq!(l, i, "A-gap must start at the current position");
                    cost += (inst.w1)(l, r);
                    i = r;
                }
                GapOp::GapB { l, r } => {
                    assert_eq!(l, j, "B-gap must start at the current position");
                    cost += (inst.w2)(l, r);
                    j = r;
                }
            }
        }
        assert_eq!((i, j), (a.len(), b.len()), "ops must cover both strings");
        assert_eq!(cost, res.cost, "op costs must recompute the DP optimum");
    }

    #[test]
    fn provenance_traceback_matches_grid_only_traceback() {
        // The provenance flags must pick exactly the branch the grid-only
        // scan would (match first, then shortest A-gap, then shortest
        // B-gap), so the op sequences are identical — including instances
        // dominated by one-sided gaps and by matches.
        for (na, nb, alpha, seed) in [
            (24usize, 19usize, 3u64, 1u64),
            (30, 30, 1, 2),
            (15, 40, 6, 3),
        ] {
            let a = pseudo_string(na, seed, alpha);
            let b = pseudo_string(nb, seed + 7, alpha);
            let inst = convex_gap_instance(&a, &b, 4, 1, 1);
            let (res, prov) = sequential_gap_with_provenance(&inst);
            assert_eq!(
                res.d,
                sequential_gap(&inst).d,
                "provenance must not change the DP"
            );
            let plain = try_reconstruct_gap_ops(&inst, &res.d).unwrap();
            let fast = try_reconstruct_gap_ops_with_provenance(&inst, &res.d, &prov).unwrap();
            assert_eq!(plain, fast, "na {na} nb {nb} alpha {alpha}");
            assert_eq!(plain, reconstruct_gap_ops(&inst, &res.d));
        }
    }

    #[test]
    fn corrupted_grid_reports_the_bad_cell_instead_of_panicking() {
        let a = pseudo_string(12, 5, 3);
        let b = pseudo_string(10, 6, 3);
        let inst = convex_gap_instance(&a, &b, 4, 1, 1);
        let (res, prov) = sequential_gap_with_provenance(&inst);
        let mut bad = res.d.clone();
        bad[a.len()][b.len()] -= 1; // no predecessor can explain this value
        let err = try_reconstruct_gap_ops(&inst, &bad).unwrap_err();
        assert_eq!((err.i, err.j), (a.len(), b.len()));
        assert_eq!(err.value, res.d[a.len()][b.len()] - 1);
        assert!(err.to_string().contains("not a valid GAP DP grid"));
        assert!(try_reconstruct_gap_ops_with_provenance(&inst, &bad, &prov).is_err());
        // The intact grid still reconstructs.
        assert!(try_reconstruct_gap_ops(&inst, &res.d).is_ok());
    }

    #[test]
    fn packed_blocks_match_depth_and_grid_across_block_counts() {
        // The fix-up pass must be an exact replay of the sequential sweep at
        // ANY block count: identical grids, identical per-round frontiers,
        // and rounds still equal to the effective-depth oracle.
        for seed in [0u64, 3] {
            let a = pseudo_string(40, seed, 3);
            let b = pseudo_string(33, seed + 9, 3);
            let inst = convex_gap_instance(&a, &b, 4, 1, 1);
            let want = parallel_gap_packed(&inst);
            let depth = effective_depth_oracle(&inst);
            assert_eq!(want.metrics.rounds, depth);
            // usize::MAX clamps to the candidate row count = one row per
            // block; 1 is the pure sequential sweep (a block of all rows).
            for blocks in [1usize, 2, 3, 7, usize::MAX] {
                let got = parallel_gap_packed_with_blocks(&inst, blocks);
                assert_eq!(got.d, want.d, "seed {seed} blocks {blocks}");
                assert_eq!(got.cost, want.cost, "seed {seed} blocks {blocks}");
                assert_eq!(got.metrics.rounds, depth, "seed {seed} blocks {blocks}");
                assert_eq!(
                    got.metrics.frontier_sizes, want.metrics.frontier_sizes,
                    "seed {seed} blocks {blocks}"
                );
            }
        }
    }

    #[test]
    fn packed_blocks_match_on_adversarial_instances() {
        // Long-run instances exercise the band upgrade paths (row runs of
        // length m on disjoint alphabets, column runs of length n) and the
        // diagonal cross-block barrier (identical strings).
        let a = pseudo_string(44, 1, 4);
        let identical = convex_gap_instance(&a, &a, 5, 1, 1);
        let z = vec![0u8; 48];
        let o = vec![1u8; 41];
        let disjoint = convex_gap_instance(&z, &o, 3, 2, 0);
        for blocks in [2usize, 5, usize::MAX] {
            let got = parallel_gap_packed_with_blocks(&identical, blocks);
            assert_eq!(
                got.d,
                parallel_gap(&identical).d,
                "identical, blocks {blocks}"
            );
            let got = parallel_gap_packed_with_blocks(&disjoint, blocks);
            assert_eq!(
                got.d,
                parallel_gap(&disjoint).d,
                "disjoint, blocks {blocks}"
            );
        }
    }

    #[test]
    fn convex_decision_list_cursor_queries_match_binary_queries() {
        let cost = |l: usize, r: usize| {
            let len = (r - l) as i64;
            5 + 3 * len + 2 * len * len
        };
        let horizon = 80;
        let mut list = ConvexDecisionList::new(horizon);
        let mut state = 99u64;
        // Interleave ascending inserts with an advancing cursor, mirroring
        // the sweep's access pattern: the cursor must stay coherent because
        // inserts only pop entries past the last query position.
        let mut cursor = list.seek(0);
        for pos in 0..60usize {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            list.insert(pos, (state % 90) as i64, &cost);
            let q = pos + 1;
            assert_eq!(
                list.query_at(&mut cursor, q, &cost),
                list.query(q, &cost),
                "q {q}"
            );
        }
        // A fresh seek mid-stream matches too.
        let mut late = list.seek(30);
        for q in 30..=horizon {
            assert_eq!(list.query_at(&mut late, q, &cost), list.query(q, &cost));
        }
    }

    #[test]
    fn convex_decision_list_matches_bruteforce() {
        // Standalone check of the online structure against brute force.
        let cost = |l: usize, r: usize| {
            let len = (r - l) as i64;
            7 + 2 * len + len * len
        };
        let horizon = 60;
        let mut list = ConvexDecisionList::new(horizon);
        let mut inserted: Vec<(usize, i64)> = Vec::new();
        let mut state = 12345u64;
        for pos in 0..40usize {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let val = (state % 50) as i64;
            list.insert(pos, val, &cost);
            inserted.push((pos, val));
            // Query a few positions after pos.
            for q in (pos + 1)..=(pos + 5).min(horizon) {
                let want = inserted.iter().map(|&(p, v)| v + cost(p, q)).min().unwrap();
                assert_eq!(list.query(q, &cost), want, "pos {pos} q {q}");
            }
        }
    }
}
