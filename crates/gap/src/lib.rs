//! The GAP edit-distance problem (Sec. 5.2, Theorem 5.2).
//!
//! GAP aligns two strings `A[1..n]` and `B[1..m]` where a whole block of
//! characters can be deleted at once: deleting `A[l+1..r]` costs `w1(l, r)`
//! and deleting `B[l+1..r]` costs `w2(l, r)`.  The GAP recurrence is
//!
//! ```text
//! P[i][j] = min_{i' < i} D[i'][j] + w1(i', i)        (a gap in A, column GLWS)
//! Q[i][j] = min_{j' < j} D[i][j'] + w2(j', j)        (a gap in B, row GLWS)
//! D[i][j] = min( P[i][j], Q[i][j], D[i-1][j-1] if A[i] = B[j] )
//! ```
//!
//! With convex (or concave) gap costs every row and every column is a GLWS
//! instance, so the optimized sequential algorithm `Γ_gap` runs in
//! `O(nm log n)` instead of `O(n²m)`.  This crate provides
//!
//! * [`naive_gap`] — the direct `O(n²m + nm²)` recurrence (oracle),
//! * [`sequential_gap`] — `Γ_gap`: row-major evaluation with one online
//!   convex decision structure per row and per column (`O(nm log n)`),
//! * [`parallel_gap`] — the parallel evaluation: cells are processed in
//!   staircase frontiers (anti-diagonal wavefronts of the grid DAG), each
//!   frontier in parallel, with the same per-row/per-column structures and
//!   the same `O(nm log n)` work.  The number of frontier rounds reported in
//!   the metrics is the grid depth `n + m - 1`; the fully cordon-packed
//!   variant that compresses rounds to the effective depth `k` (Theorem 5.2)
//!   is discussed in DESIGN.md — the wavefront keeps the identical work and
//!   data structures while being considerably simpler, and on convex costs it
//!   produces identical values (validated against the oracle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// DP recurrences read most naturally with explicit state indices.
#![allow(clippy::needless_range_loop)]

use pardp_core::{run_phase_parallel, PhaseParallel};
use pardp_parutils::{round_min_grain, Metrics, MetricsCollector};
use rayon::prelude::*;

/// A GAP problem instance: two strings plus the two block-deletion cost
/// functions (given as [`GlwsProblem`]-style cost families over positions).
pub struct GapInstance<'a, W1, W2> {
    /// First string (length `n`).
    pub a: &'a [u8],
    /// Second string (length `m`).
    pub b: &'a [u8],
    /// Cost of deleting `A[l+1..=r]`.
    pub w1: W1,
    /// Cost of deleting `B[l+1..=r]`.
    pub w2: W2,
}

/// Result of a GAP computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapResult {
    /// `d[i][j]` = minimum alignment cost of `A[1..=i]` vs `B[1..=j]`.
    pub d: Vec<Vec<i64>>,
    /// Total alignment cost `d[n][m]`.
    pub cost: i64,
    /// Work / round counters.
    pub metrics: Metrics,
}

const INF: i64 = i64::MAX / 4;

impl<'a, W1, W2> GapInstance<'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Create an instance from strings and gap-cost closures.
    pub fn new(a: &'a [u8], b: &'a [u8], w1: W1, w2: W2) -> Self {
        GapInstance { a, b, w1, w2 }
    }

    #[inline]
    fn matches(&self, i: usize, j: usize) -> bool {
        self.a[i - 1] == self.b[j - 1]
    }
}

/// Build a GAP instance with the affine-plus-quadratic convex gap penalty
/// `w(l, r) = open + ext·(r-l) + quad·(r-l)²` on both strings.
pub fn convex_gap_instance<'a>(
    a: &'a [u8],
    b: &'a [u8],
    open: i64,
    ext: i64,
    quad: i64,
) -> GapInstance<'a, impl Fn(usize, usize) -> i64 + Sync, impl Fn(usize, usize) -> i64 + Sync> {
    assert!(quad >= 0, "quadratic coefficient must be non-negative");
    let cost = move |l: usize, r: usize| {
        let len = (r - l) as i64;
        open + ext * len + quad * len * len
    };
    GapInstance::new(a, b, cost, cost)
}

/// Direct evaluation of the GAP recurrence, `O(n²m + nm²)` work.
pub fn naive_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (n, m) = (inst.a.len(), inst.b.len());
    let mut d = vec![vec![INF; m + 1]; n + 1];
    d[0][0] = 0;
    let mut edges = 0u64;
    for i in 0..=n {
        for j in 0..=m {
            if i == 0 && j == 0 {
                continue;
            }
            let mut best = INF;
            for ip in 0..i {
                edges += 1;
                if d[ip][j] < INF {
                    best = best.min(d[ip][j] + (inst.w1)(ip, i));
                }
            }
            for jp in 0..j {
                edges += 1;
                if d[i][jp] < INF {
                    best = best.min(d[i][jp] + (inst.w2)(jp, j));
                }
            }
            if i > 0 && j > 0 && inst.matches(i, j) && d[i - 1][j - 1] < INF {
                edges += 1;
                best = best.min(d[i - 1][j - 1]);
            }
            d[i][j] = best;
        }
    }
    metrics.add_edges(edges);
    metrics.add_states(((n + 1) * (m + 1)) as u64);
    let cost = d[n][m];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

// ---------------------------------------------------------------------------
// Online convex decision structure (shared by the sequential and parallel
// optimized algorithms).
// ---------------------------------------------------------------------------

/// An online best-decision structure for a convex cost: decisions are inserted
/// in increasing position order and queries may come at any later position.
/// Queries do not mutate the structure (binary search over takeover
/// positions), so tentative probes are safe.
#[derive(Debug, Clone)]
struct ConvexDecisionList {
    /// `(takeover, decision, decision_value)` — from `takeover` on (until the
    /// next entry's takeover), `decision` is the best inserted decision.
    entries: Vec<(usize, usize, i64)>,
    horizon: usize,
}

impl ConvexDecisionList {
    fn new(horizon: usize) -> Self {
        ConvexDecisionList {
            entries: Vec::new(),
            horizon,
        }
    }

    /// Insert a decision at `pos` with value `val`; `cost(l, r)` is the gap
    /// cost.  Decisions must be inserted in increasing `pos` order.
    fn insert(&mut self, pos: usize, val: i64, cost: &impl Fn(usize, usize) -> i64) {
        if val >= INF {
            return;
        }
        let candidate = |q: usize| val + cost(pos, q);
        // Pop entries that the new decision dominates from their own takeover.
        while let Some(&(start, dec, dval)) = self.entries.last() {
            if start > pos && candidate(start) <= dval + cost(dec, start) {
                self.entries.pop();
            } else {
                break;
            }
        }
        // Find the takeover position of the new decision vs the current last.
        let takeover = match self.entries.last() {
            None => pos + 1,
            Some(&(start, dec, dval)) => {
                let incumbent = |q: usize| dval + cost(dec, q);
                // First q in (max(start, pos)+1 ..= horizon] where the new
                // decision is at least as good (suffix property of convexity).
                let mut lo = start.max(pos) + 1;
                let mut hi = self.horizon + 1; // horizon+1 = never
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if candidate(mid) <= incumbent(mid) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        };
        if takeover <= self.horizon {
            self.entries.push((takeover, pos, val));
        }
    }

    /// Best value at query position `q` (must be greater than every inserted
    /// decision position), or `INF` if no decision applies.
    fn query(&self, q: usize, cost: &impl Fn(usize, usize) -> i64) -> i64 {
        let idx = self.entries.partition_point(|&(start, _, _)| start <= q);
        if idx == 0 {
            return INF;
        }
        let (_, dec, dval) = self.entries[idx - 1];
        dval + cost(dec, q)
    }
}

/// The optimized sequential algorithm `Γ_gap`: row-major evaluation with one
/// [`ConvexDecisionList`] per row (for `Q`) and per column (for `P`).
/// Requires convex gap costs.  `O(nm log(n+m))` work.
pub fn sequential_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let (n, m) = (inst.a.len(), inst.b.len());
    let mut d = vec![vec![INF; m + 1]; n + 1];
    let mut row_struct: Vec<ConvexDecisionList> =
        (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
    let mut col_struct: Vec<ConvexDecisionList> =
        (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
    let mut probes = 0u64;
    for i in 0..=n {
        for j in 0..=m {
            let value = if i == 0 && j == 0 {
                0
            } else {
                let p = col_struct[j].query(i, &inst.w1);
                let q = row_struct[i].query(j, &inst.w2);
                probes += 2;
                let mut best = p.min(q);
                if i > 0 && j > 0 && inst.matches(i, j) {
                    best = best.min(d[i - 1][j - 1]);
                }
                best
            };
            d[i][j] = value;
            row_struct[i].insert(j, value, &inst.w2);
            col_struct[j].insert(i, value, &inst.w1);
            metrics.add_edges(3);
        }
    }
    metrics.add_probes(probes);
    metrics.add_states(((n + 1) * (m + 1)) as u64);
    let cost = d[n][m];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// Parallel GAP: the grid DAG is evaluated frontier by frontier
/// (anti-diagonals `i + j = const`), all cells of a frontier in parallel, with
/// the same per-row/per-column convex decision structures as
/// [`sequential_gap`] (each structure receives exactly one insertion per
/// frontier, performed in parallel across rows/columns).  Work `O(nm log n)`.
pub fn parallel_gap<W1, W2>(inst: &GapInstance<'_, W1, W2>) -> GapResult
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    let metrics = MetricsCollector::new();
    let d = run_phase_parallel(GapCordon::new(inst), &metrics);
    let cost = d[inst.a.len()][inst.b.len()];
    GapResult {
        d,
        cost,
        metrics: metrics.snapshot(),
    }
}

/// [`PhaseParallel`] instance for the parallel GAP evaluation: each round
/// processes one anti-diagonal frontier of the grid DAG.
pub struct GapCordon<'i, 'a, W1, W2> {
    inst: &'i GapInstance<'a, W1, W2>,
    d: Vec<Vec<i64>>,
    row_struct: Vec<ConvexDecisionList>,
    col_struct: Vec<ConvexDecisionList>,
    diag: usize,
    n: usize,
    m: usize,
    /// Reused per-round frontier-value buffer (grown once to the widest
    /// anti-diagonal).
    values: Vec<i64>,
}

impl<'i, 'a, W1, W2> GapCordon<'i, 'a, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// Initialize the DP grid and seed the per-row/per-column structures with
    /// the boundary cell.
    pub fn new(inst: &'i GapInstance<'a, W1, W2>) -> Self {
        let (n, m) = (inst.a.len(), inst.b.len());
        let mut d = vec![vec![INF; m + 1]; n + 1];
        d[0][0] = 0;
        let mut row_struct: Vec<ConvexDecisionList> =
            (0..=n).map(|_| ConvexDecisionList::new(m)).collect();
        let mut col_struct: Vec<ConvexDecisionList> =
            (0..=m).map(|_| ConvexDecisionList::new(n)).collect();
        row_struct[0].insert(0, 0, &inst.w2);
        col_struct[0].insert(0, 0, &inst.w1);
        GapCordon {
            inst,
            d,
            row_struct,
            col_struct,
            diag: 1,
            n,
            m,
            values: Vec::new(),
        }
    }
}

impl<W1, W2> PhaseParallel for GapCordon<'_, '_, W1, W2>
where
    W1: Fn(usize, usize) -> i64 + Sync,
    W2: Fn(usize, usize) -> i64 + Sync,
{
    /// The completed DP grid.
    type Output = Vec<Vec<i64>>;

    fn is_done(&self) -> bool {
        self.diag > self.n + self.m
    }

    fn round(&mut self, metrics: &MetricsCollector) -> usize {
        let (inst, diag, n, m) = (self.inst, self.diag, self.n, self.m);
        // Cells (i, j) with i + j = diag; non-empty for every 1 <= diag <= n+m.
        let i_lo = diag.saturating_sub(m);
        let i_hi = diag.min(n);
        let d_ref = &self.d;
        let row_ref = &self.row_struct;
        let col_ref = &self.col_struct;
        let cells = i_hi - i_lo + 1;
        let grain = round_min_grain(cells);
        // Reuse the frontier-value buffer across rounds (`collect_into_vec`
        // refills it in place).
        let mut values = std::mem::take(&mut self.values);
        (i_lo..=i_hi)
            .into_par_iter()
            .map(|i| {
                let j = diag - i;
                let p = col_ref[j].query(i, &inst.w1);
                let q = row_ref[i].query(j, &inst.w2);
                let mut best = p.min(q);
                if i > 0 && j > 0 && inst.matches(i, j) {
                    best = best.min(d_ref[i - 1][j - 1]);
                }
                best
            })
            .with_min_len(grain)
            .collect_into_vec(&mut values);
        // Write the frontier values, then insert each cell into its row and
        // column structure (one insertion per structure, all structures
        // disjoint, so the two loops parallelize over rows and columns).
        for (off, &v) in values.iter().enumerate() {
            let i = i_lo + off;
            let j = diag - i;
            self.d[i][j] = v;
        }
        let w2 = &inst.w2;
        let w1 = &inst.w1;
        self.row_struct[i_lo..=i_hi]
            .par_iter_mut()
            .enumerate()
            .with_min_len(grain)
            .for_each(|(off, rs)| {
                let i = i_lo + off;
                let j = diag - i;
                rs.insert(j, values[off], w2);
            });
        let j_lo = diag - i_hi;
        let j_hi = diag - i_lo;
        let d_now = &self.d;
        self.col_struct[j_lo..=j_hi]
            .par_iter_mut()
            .enumerate()
            .with_min_len(grain)
            .for_each(|(off, cs)| {
                let j = j_lo + off;
                let i = diag - j;
                cs.insert(i, d_now[i][j], w1);
            });
        self.values = values;
        metrics.add_edges(3 * cells as u64);
        metrics.add_probes(2 * cells as u64);
        self.diag += 1;
        cells
    }

    fn finish(self) -> Self::Output {
        self.d
    }

    fn round_budget(&self) -> Option<u64> {
        // One round per anti-diagonal: the grid depth n + m.
        Some((self.n + self.m) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_string(n: usize, seed: u64, alphabet: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % alphabet) as u8
            })
            .collect()
    }

    #[test]
    fn identical_strings_align_for_free() {
        let a = pseudo_string(30, 1, 4);
        let inst = convex_gap_instance(&a, &a, 5, 1, 1);
        assert_eq!(naive_gap(&inst).cost, 0);
        assert_eq!(sequential_gap(&inst).cost, 0);
        assert_eq!(parallel_gap(&inst).cost, 0);
    }

    #[test]
    fn deleting_everything_when_no_matches() {
        // Disjoint alphabets: the only option is to delete both strings whole.
        let a = vec![0u8; 12];
        let b = vec![1u8; 7];
        let inst = convex_gap_instance(&a, &b, 3, 2, 0);
        let expect = (3 + 2 * 12) + (3 + 2 * 7);
        assert_eq!(naive_gap(&inst).cost, expect);
        assert_eq!(sequential_gap(&inst).cost, expect);
        assert_eq!(parallel_gap(&inst).cost, expect);
    }

    #[test]
    fn optimized_algorithms_match_naive_on_random_inputs() {
        for seed in 0..6 {
            for &(open, ext, quad) in &[(2i64, 1i64, 0i64), (10, 0, 1), (50, 3, 2)] {
                let a = pseudo_string(28, seed, 3);
                let b = pseudo_string(23, seed + 77, 3);
                let inst = convex_gap_instance(&a, &b, open, ext, quad);
                let want = naive_gap(&inst);
                let seq = sequential_gap(&inst);
                let par = parallel_gap(&inst);
                assert_eq!(seq.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
                assert_eq!(par.d, want.d, "seed {seed} cost ({open},{ext},{quad})");
            }
        }
    }

    #[test]
    fn asymmetric_gap_costs() {
        // Deleting from A is much more expensive than deleting from B.
        let a = pseudo_string(20, 3, 2);
        let b = pseudo_string(25, 9, 2);
        let inst = GapInstance::new(
            &a,
            &b,
            |l: usize, r: usize| 100 + 10 * (r - l) as i64,
            |l: usize, r: usize| 1 + (r - l) as i64,
        );
        let want = naive_gap(&inst);
        assert_eq!(sequential_gap(&inst).d, want.d);
        assert_eq!(parallel_gap(&inst).d, want.d);
    }

    #[test]
    fn empty_strings() {
        let empty: Vec<u8> = vec![];
        let b = pseudo_string(5, 2, 3);
        let inst = convex_gap_instance(&empty, &b, 4, 1, 1);
        let want = naive_gap(&inst);
        // Splitting the deletion of B into gaps of 2 and 3 beats one gap of 5:
        // (4+2+4) + (4+3+9) = 26 < 4+5+25 = 34.
        assert_eq!(want.cost, 26);
        assert_eq!(sequential_gap(&inst).cost, want.cost);
        assert_eq!(parallel_gap(&inst).cost, want.cost);
        let inst = convex_gap_instance(&empty, &empty, 4, 1, 1);
        assert_eq!(parallel_gap(&inst).cost, 0);
    }

    #[test]
    fn parallel_rounds_equal_grid_depth() {
        let a = pseudo_string(15, 5, 4);
        let b = pseudo_string(10, 6, 4);
        let inst = convex_gap_instance(&a, &b, 2, 1, 1);
        let r = parallel_gap(&inst);
        assert_eq!(r.metrics.rounds, 25);
    }

    #[test]
    fn block_deletion_beats_char_by_char_with_convex_open_cost() {
        // A = B plus an inserted block; with a large opening cost the optimum
        // removes the block with a single gap.
        let mut a = pseudo_string(40, 8, 5);
        let b = a.clone();
        // Insert a block of 6 junk symbols (value 9, absent from b) into a.
        for _ in 0..6 {
            a.insert(20, 9);
        }
        let inst = convex_gap_instance(&a, &b, 30, 1, 0);
        let want = naive_gap(&inst);
        // One gap of length 6 in A: 30 + 6.
        assert_eq!(want.cost, 36);
        assert_eq!(parallel_gap(&inst).cost, 36);
        assert_eq!(sequential_gap(&inst).cost, 36);
    }

    #[test]
    fn convex_decision_list_matches_bruteforce() {
        // Standalone check of the online structure against brute force.
        let cost = |l: usize, r: usize| {
            let len = (r - l) as i64;
            7 + 2 * len + len * len
        };
        let horizon = 60;
        let mut list = ConvexDecisionList::new(horizon);
        let mut inserted: Vec<(usize, i64)> = Vec::new();
        let mut state = 12345u64;
        for pos in 0..40usize {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let val = (state % 50) as i64;
            list.insert(pos, val, &cost);
            inserted.push((pos, val));
            // Query a few positions after pos.
            for q in (pos + 1)..=(pos + 5).min(horizon) {
                let want = inserted.iter().map(|&(p, v)| v + cost(p, q)).min().unwrap();
                assert_eq!(list.query(q, &cost), want, "pos {pos} q {q}");
            }
        }
    }
}
