//! # parallel-dp
//!
//! A Rust reproduction of *"Parallel and (Nearly) Work-Efficient Dynamic
//! Programming"* (Ding, Gu, Sun — SPAA 2024): the **Cordon Algorithm**
//! framework for phase-parallel dynamic programming, and its instantiations
//! for LIS, sparse LCS, convex/concave generalized least-weight subsequence
//! (GLWS), k-GLWS, GAP edit distance, optimal alphabetic trees, Tree-GLWS and
//! OBST — each with a naive oracle, the optimized sequential algorithm the
//! paper parallelizes, and the parallel cordon algorithm, all instrumented
//! with work/round counters.
//!
//! ## Quick start
//!
//! ```
//! use parallel_dp::prelude::*;
//!
//! // Parallel LIS (Theorem 3.1): rounds == LIS length.
//! let a = vec![7i64, 3, 6, 8, 1, 4, 2, 5];
//! let lis = parallel_lis(&a);
//! assert_eq!(lis.length, 3);
//!
//! // Parallel convex GLWS (Algorithm 1) on a post-office instance.
//! let post = PostOfficeProblem::new(vec![0, 1, 10, 11, 20, 21], 4);
//! let glws = parallel_convex_glws(&post);
//! assert_eq!(glws.d[6], 15);                  // three offices, cost 5 each
//! assert_eq!(glws.metrics.rounds, 3);          // rounds == #offices (Lemma 4.5)
//! ```
//!
//! The individual crates are re-exported as modules below; `prelude` pulls in
//! the most common entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pardp_core as core;
pub use pardp_gap as gap;
pub use pardp_glws as glws;
pub use pardp_lcs as lcs;
pub use pardp_lis as lis;
pub use pardp_oat as oat;
pub use pardp_obst as obst;
pub use pardp_parutils as parutils;
pub use pardp_tournament as tournament;
pub use pardp_treedp as treedp;
pub use pardp_workloads as workloads;

/// The most commonly used types and functions, re-exported flat.
pub mod prelude {
    pub use pardp_core::{prefix_doubling_cordon, run_phase_parallel, PhaseParallel};
    pub use pardp_gap::{convex_gap_instance, naive_gap, parallel_gap, sequential_gap, GapInstance};
    pub use pardp_glws::{
        naive_glws, naive_kglws, parallel_concave_glws, parallel_convex_glws, parallel_kglws,
        sequential_concave_glws, sequential_convex_glws, ConcaveGapCost, ConvexGapCost,
        GlwsProblem, GlwsResult, LinearGapCost, PostOfficeProblem,
    };
    pub use pardp_lcs::{
        dense_lcs, matching_pairs, parallel_lcs_of, parallel_sparse_lcs, sequential_sparse_lcs,
        LcsResult, MatchPair,
    };
    pub use pardp_lis::{naive_lis, parallel_lis, sequential_lis, LisResult};
    pub use pardp_oat::{garsia_wachs, interval_dp_oat, oat_height_bound, OatResult};
    pub use pardp_obst::{knuth_obst, naive_obst, parallel_obst, ObstResult};
    pub use pardp_parutils::{with_threads, Metrics, MetricsCollector};
    pub use pardp_tournament::{TieRule, TournamentTree};
    pub use pardp_treedp::{
        naive_tree_glws, parallel_tree_glws, sequential_tree_glws, TreeGlwsInstance,
    };
    pub use pardp_workloads as workloads;
}
