//! # parallel-dp
//!
//! A Rust reproduction of *"Parallel and (Nearly) Work-Efficient Dynamic
//! Programming"* (Ding, Gu, Sun — SPAA 2024): the **Cordon Algorithm**
//! framework for phase-parallel dynamic programming, and its instantiations
//! for LIS, sparse LCS, convex/concave generalized least-weight subsequence
//! (GLWS), k-GLWS, GAP edit distance, optimal alphabetic trees, Tree-GLWS and
//! OBST — each with a naive oracle, the optimized sequential algorithm the
//! paper parallelizes, and the parallel cordon algorithm, all instrumented
//! with work/round counters.
//!
//! ## Quick start
//!
//! ```
//! use parallel_dp::prelude::*;
//!
//! // Parallel LIS (Theorem 3.1): rounds == LIS length.
//! let a = vec![7i64, 3, 6, 8, 1, 4, 2, 5];
//! let lis = parallel_lis(&a);
//! assert_eq!(lis.length, 3);
//!
//! // Parallel convex GLWS (Algorithm 1) on a post-office instance.
//! let post = PostOfficeProblem::new(vec![0, 1, 10, 11, 20, 21], 4);
//! let glws = parallel_convex_glws(&post);
//! assert_eq!(glws.d[6], 15);                  // three offices, cost 5 each
//! assert_eq!(glws.metrics.rounds, 3);          // rounds == #offices (Lemma 4.5)
//! ```
//!
//! The individual crates are re-exported as modules below; `prelude` pulls in
//! the most common entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardp_core::{try_run_phase_parallel_with_budget, PhaseParallel, StallError};
use pardp_parutils::{Metrics, MetricsCollector};

pub use pardp_core as core;
pub use pardp_gap as gap;
pub use pardp_glws as glws;
pub use pardp_lcs as lcs;
pub use pardp_lis as lis;
pub use pardp_oat as oat;
pub use pardp_obst as obst;
pub use pardp_parutils as parutils;
pub use pardp_tournament as tournament;
pub use pardp_treedp as treedp;
pub use pardp_workloads as workloads;

/// Unified entry point for running any [`PhaseParallel`] instance through the
/// shared cordon engine, with optional round-budget tightening.
///
/// Every parallel algorithm in the workspace is an instance of the same
/// engine; this solver makes that explicit at the facade level:
///
/// ```
/// use parallel_dp::prelude::*;
///
/// let solver = CordonSolver::new();
/// let a = vec![7i64, 3, 6, 8, 1, 4, 2, 5];
/// let run = solver.run(LisCordon::new(&a));
/// let (d, length) = run.output;
/// assert_eq!(length, 3);
/// assert_eq!(run.metrics.rounds, 3);                     // Theorem 3.1
/// assert_eq!(run.metrics.frontier_sizes, vec![3, 3, 2]); // per-round telemetry
/// assert_eq!(d, vec![1, 1, 2, 3, 1, 2, 2, 3]);
/// ```
///
/// The same call shape works for `LcsCordon`, `ConvexGlwsCordon`,
/// `ConcaveGlwsCordon`, `KGlwsCordon`, `GapCordon`, `TreeGlwsCordon`,
/// `HldTreeGlwsCordon`, `ObstCordon`, `ValleyOatCordon` — and for
/// router-produced `EitherCordon` values such as `tree_glws_cordon_auto`'s
/// (cheaper Tree-GLWS cordon from an O(n) shape probe) and
/// `oat_cordon_auto`'s (polylog-round valley OAT above a size cutoff,
/// interval cordon below it).
#[derive(Debug, Clone, Copy, Default)]
pub struct CordonSolver {
    round_budget: Option<u64>,
}

/// Output of a [`CordonSolver`] run: the instance's result plus the engine's
/// round/work telemetry.
#[derive(Debug, Clone)]
pub struct CordonOutcome<T> {
    /// Whatever the instance's `finish()` produced.
    pub output: T,
    /// Rounds, per-round frontier sizes, and work counters.
    pub metrics: Metrics,
}

impl CordonSolver {
    /// Solver with no caller-side budget (instances still enforce their own).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tighten the stall guard: abort any run exceeding `rounds` rounds, even
    /// if the instance's own budget is looser.
    pub fn with_round_budget(rounds: u64) -> Self {
        CordonSolver {
            round_budget: Some(rounds),
        }
    }

    /// Run `instance` to completion.
    ///
    /// # Panics
    ///
    /// Panics with the typed stall message if the instance stalls or exceeds
    /// the round budget (see `pardp_core::StallError`).
    pub fn run<P: PhaseParallel>(&self, instance: P) -> CordonOutcome<P::Output> {
        match self.try_run(instance) {
            Ok(outcome) => outcome,
            // analyze: allow(no-panics): documented panicking facade over the
            // typed `try_run` (see the `# Panics` docs above).
            Err(err) => panic!("{err}"),
        }
    }

    /// Run `instance` to completion, returning the typed [`StallError`] on
    /// failure instead of panicking.
    pub fn try_run<P: PhaseParallel>(
        &self,
        instance: P,
    ) -> Result<CordonOutcome<P::Output>, StallError> {
        let metrics = MetricsCollector::new();
        let output = try_run_phase_parallel_with_budget(instance, &metrics, self.round_budget)?;
        Ok(CordonOutcome {
            output,
            metrics: metrics.snapshot(),
        })
    }
}

/// The most commonly used types and functions, re-exported flat.
pub mod prelude {
    pub use crate::{CordonOutcome, CordonSolver};
    pub use pardp_core::{
        prefix_doubling_cordon, run_phase_parallel, try_run_phase_parallel,
        try_run_phase_parallel_with_budget, EitherCordon, PhaseParallel, StallError,
    };
    pub use pardp_gap::{
        convex_gap_instance, naive_gap, parallel_gap, sequential_gap, GapCordon, GapInstance,
    };
    pub use pardp_glws::{
        naive_glws, naive_kglws, parallel_concave_glws, parallel_convex_glws, parallel_kglws,
        sequential_concave_glws, sequential_convex_glws, ConcaveGapCost, ConcaveGlwsCordon,
        ConvexGapCost, ConvexGlwsCordon, GlwsProblem, GlwsResult, KGlwsCordon, LinearGapCost,
        PostOfficeProblem,
    };
    pub use pardp_lcs::{
        dense_lcs, matching_pairs, parallel_lcs_of, parallel_sparse_lcs, sequential_sparse_lcs,
        LcsCordon, LcsResult, MatchPair,
    };
    pub use pardp_lis::{naive_lis, parallel_lis, sequential_lis, LisCordon, LisResult};
    pub use pardp_oat::{
        garsia_wachs, interval_dp_oat, oat_cordon_auto, oat_height_bound, parallel_oat,
        parallel_oat_auto, parallel_oat_valley, IntervalOatCordon, OatLayout, OatResult,
        ValleyOatCordon,
    };
    pub use pardp_obst::{knuth_obst, naive_obst, parallel_obst, ObstCordon, ObstResult};
    pub use pardp_parutils::{with_threads, Metrics, MetricsCollector};
    pub use pardp_tournament::{TieRule, TournamentTree};
    pub use pardp_treedp::{
        choose_tree_glws_strategy,
        hld::{HeavyLightDecomposition, TreeShapeStats},
        naive_tree_glws, parallel_tree_glws, parallel_tree_glws_auto, parallel_tree_glws_hld,
        sequential_tree_glws, tree_glws_cordon_auto, CostShape, HldTreeGlwsCordon, TreeGlwsCordon,
        TreeGlwsInstance, TreeGlwsStrategy,
    };
    pub use pardp_workloads as workloads;
}
