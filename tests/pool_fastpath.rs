//! The per-round dispatch fast path: sub-grain rounds bypass the pool.
//!
//! When `round_min_grain(len) >= len` a round runs entirely on the calling
//! thread — the rayon shim executes single-grain loops inline and the
//! tournament tree keeps sub-grain extractions sequential — so the round must
//! push **zero** jobs to the pool's injector and wake **zero** workers.  The
//! shim exposes cumulative dispatch counters (`rayon::dispatch_diagnostics`,
//! a shim-only extension) precisely so this contract can be pinned instead of
//! eyeballed from profiles.
//!
//! The whole file is one test function: the counters are process-global, so a
//! concurrently running sibling test that legitimately forks would pollute
//! the deltas.

use parallel_dp::parutils::with_threads;
use parallel_dp::workloads;
use rayon::prelude::*;

#[test]
fn sub_grain_rounds_push_no_jobs_and_wake_no_workers() {
    // Warm the pool: spawn the workers and let any one-time lazy init (pool
    // structures, TLS) happen outside the measured region.
    let warm = workloads::lis_with_length(100_000, 6, 7);
    let warm_result = with_threads(8, || parallel_dp::lis::parallel_lis(&warm));
    assert_eq!(warm_result.length, 6);

    // Sub-grain workload: n < SEQ_CUTOFF, so every round's frontier (and the
    // tree build) is below the grain hint and must stay inline even with 8
    // threads installed.
    let a = workloads::lis_with_length(1_500, 10, 3);
    let expected = parallel_dp::lis::sequential_lis(&a);

    let (pushes_before, wakeups_before) = rayon::dispatch_diagnostics();
    let run = with_threads(8, || parallel_dp::lis::parallel_lis(&a));
    let (pushes_after, wakeups_after) = rayon::dispatch_diagnostics();

    assert_eq!(run.d, expected.d);
    assert_eq!(
        pushes_after - pushes_before,
        0,
        "a sub-grain run must not touch the injector"
    );
    assert_eq!(
        wakeups_after - wakeups_before,
        0,
        "a sub-grain run must not wake any worker"
    );

    // Packed GAP on a small instance: every round offers fewer candidate
    // rows than twice the speculative block floor (MIN_BLOCK_ROWS = 64), so
    // the block planner returns one block on ANY host — the capped
    // `available_parallelism()` path — and the sweep runs sequentially with
    // sub-grain publish loops.  Even with 8 threads installed, the whole
    // solve must push zero jobs and wake zero workers.
    let (ga, gb) = workloads::gap_strings(120, 110, 4, 9);
    let ginst = parallel_dp::gap::convex_gap_instance(&ga, &gb, 3, 1, 1);
    let expected = parallel_dp::gap::sequential_gap(&ginst);

    let (pushes_before, wakeups_before) = rayon::dispatch_diagnostics();
    let run = with_threads(8, || parallel_dp::gap::parallel_gap_packed(&ginst));
    let (pushes_after, wakeups_after) = rayon::dispatch_diagnostics();

    assert_eq!(run.d, expected.d);
    assert_eq!(
        pushes_after - pushes_before,
        0,
        "a sub-block packed-GAP solve must not touch the injector"
    );
    assert_eq!(
        wakeups_after - wakeups_before,
        0,
        "a sub-block packed-GAP solve must not wake any worker"
    );

    // Sanity check that the counters are live at all: an explicit sub-length
    // `with_min_len` forces the producer to split whatever the grain policy
    // (or the host's core count) would decide, so the non-worker driver
    // thread must push injector jobs.
    let (pushes_before, _) = rayon::dispatch_diagnostics();
    let total = with_threads(8, || {
        (0..100_000i64)
            .into_par_iter()
            .with_min_len(1_000)
            .map(|i| i * 2)
            .sum::<i64>()
    });
    let (pushes_after, _) = rayon::dispatch_diagnostics();
    assert_eq!(total, 100_000 * 99_999);
    assert!(
        pushes_after > pushes_before,
        "an explicitly split loop should fork onto the pool"
    );
}
