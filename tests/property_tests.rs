//! Property-based tests (proptest): the parallel cordon algorithms agree with
//! their naive oracles on arbitrary inputs, and structural invariants hold.

use parallel_dp::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_lis_matches_naive(values in prop::collection::vec(-1000i64..1000, 0..300)) {
        let want = naive_lis(&values);
        let par = parallel_lis(&values);
        let seq = sequential_lis(&values);
        prop_assert_eq!(&par.d, &want.d);
        prop_assert_eq!(&seq.d, &want.d);
        prop_assert_eq!(par.metrics.rounds, want.length as u64);
    }

    #[test]
    fn prop_lcs_matches_dense(
        a in prop::collection::vec(0u8..6, 0..80),
        b in prop::collection::vec(0u8..6, 0..80),
    ) {
        let dense = dense_lcs(&a, &b);
        let pairs = matching_pairs(&a, &b);
        let sparse_par = parallel_sparse_lcs(&pairs);
        let sparse_seq = sequential_sparse_lcs(&pairs);
        prop_assert_eq!(sparse_par.length, dense.length);
        prop_assert_eq!(sparse_seq.length, dense.length);
        prop_assert_eq!(sparse_par.pair_values, sparse_seq.pair_values);
    }

    #[test]
    fn prop_convex_glws_matches_naive(
        gaps in prop::collection::vec(1i64..50, 1..200),
        open in 0i64..5000,
    ) {
        let mut coords = Vec::with_capacity(gaps.len());
        let mut x = 0i64;
        for g in &gaps {
            x += g;
            coords.push(x);
        }
        let p = PostOfficeProblem::new(coords, open);
        let par = parallel_convex_glws(&p);
        let seq = sequential_convex_glws(&p);
        let naive = naive_glws(&p);
        prop_assert_eq!(&par.d, &naive.d);
        prop_assert_eq!(&seq.d, &naive.d);
        prop_assert!(par.check_consistency(&p));
        // Lemma 4.5: rounds never exceed the number of states and equal the
        // depth of the best-decision chain.
        prop_assert_eq!(par.metrics.rounds as usize, par.perfect_depth());
    }

    #[test]
    fn prop_concave_glws_matches_naive(
        n in 1usize..150,
        a in 0i64..200,
        b in 0i64..20,
    ) {
        let p = ConcaveGapCost::new(n, a, b);
        let par = parallel_concave_glws(&p);
        let seq = sequential_concave_glws(&p);
        let naive = naive_glws(&p);
        prop_assert_eq!(&par.d, &naive.d);
        prop_assert_eq!(&seq.d, &naive.d);
    }

    #[test]
    fn prop_kglws_matches_naive(
        gaps in prop::collection::vec(1i64..30, 2..60),
        k in 1usize..8,
    ) {
        let mut coords = Vec::with_capacity(gaps.len());
        let mut x = 0i64;
        for g in &gaps {
            x += g;
            coords.push(x);
        }
        let n = coords.len();
        let k = k.min(n);
        let p = PostOfficeProblem::new(coords, 17);
        let par = parallel_kglws(&p, k);
        let naive = naive_kglws(&p, k);
        prop_assert_eq!(par.layers, naive.layers);
        prop_assert_eq!(par.metrics.rounds as usize, k);
    }

    #[test]
    fn prop_obst_knuth_matches_naive(weights in prop::collection::vec(1u64..500, 0..60)) {
        let naive = naive_obst(&weights);
        prop_assert_eq!(knuth_obst(&weights).cost, naive.cost);
        prop_assert_eq!(parallel_obst(&weights).cost, naive.cost);
    }

    #[test]
    fn prop_garsia_wachs_is_optimal(weights in prop::collection::vec(1u64..200, 1..60)) {
        let gw = garsia_wachs(&weights);
        prop_assert_eq!(gw.cost, interval_dp_oat(&weights));
        // Kraft equality: the depths describe a full binary tree.
        if weights.len() > 1 {
            let kraft: f64 = gw.depths.iter().map(|&d| 0.5f64.powi(d as i32)).sum();
            prop_assert!((kraft - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_gap_optimized_matches_naive(
        a in prop::collection::vec(0u8..3, 0..25),
        b in prop::collection::vec(0u8..3, 0..25),
        open in 0i64..40,
        ext in 0i64..5,
    ) {
        let inst = convex_gap_instance(&a, &b, open, ext, 1);
        let naive = naive_gap(&inst);
        prop_assert_eq!(sequential_gap(&inst).d, naive.d.clone());
        prop_assert_eq!(parallel_gap(&inst).d, naive.d);
    }

    #[test]
    fn prop_engine_driven_lis_matches_naive_oracle(
        values in prop::collection::vec(-500i64..500, 0..250),
    ) {
        // The CordonSolver path (explicit engine entry point) must agree with
        // the naive oracle and report consistent frontier telemetry.
        let run = CordonSolver::new().run(LisCordon::new(&values));
        let (d, length) = run.output;
        let want = naive_lis(&values);
        prop_assert_eq!(&d, &want.d);
        prop_assert_eq!(length, want.length);
        prop_assert_eq!(run.metrics.rounds, want.length as u64);
        prop_assert_eq!(run.metrics.frontier_sizes.len() as u64, run.metrics.rounds);
        prop_assert_eq!(
            run.metrics.frontier_sizes.iter().sum::<u64>(),
            values.len() as u64
        );
    }

    #[test]
    fn prop_engine_driven_glws_matches_naive_oracle(
        gaps in prop::collection::vec(1i64..40, 1..150),
        open in 0i64..3000,
    ) {
        let mut coords = Vec::with_capacity(gaps.len());
        let mut x = 0i64;
        for g in &gaps {
            x += g;
            coords.push(x);
        }
        let p = PostOfficeProblem::new(coords, open);
        let run = CordonSolver::new().run(ConvexGlwsCordon::new(&p));
        let (d, _) = run.output;
        prop_assert_eq!(&d, &naive_glws(&p).d);
        prop_assert_eq!(run.metrics.frontier_sizes.len() as u64, run.metrics.rounds);
    }

    #[test]
    fn prop_tree_glws_parallel_matches_naive(
        parents_seed in 0u64..1000,
        n in 1usize..120,
    ) {
        let parent = parallel_dp::workloads::random_tree(n, (parents_seed % 100) as u32, parents_seed);
        let lens = parallel_dp::workloads::tree_edge_lengths(n, 5, parents_seed);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, |du, dv| {
            let len = (dv - du) as i64;
            9 + len * len
        }, |d, _| d);
        let naive = naive_tree_glws(&inst);
        let par = parallel_tree_glws(&inst);
        prop_assert_eq!(par.d, naive.d);
    }
}
