//! Invariant tests for the Cordon framework itself (Theorem 2.1) and the
//! shared substrates, run through the public facade.

use parallel_dp::core::{prefix_doubling_cordon, EdgeWeightedDag, Objective};
use parallel_dp::prelude::*;

#[test]
fn cordon_equals_topological_on_random_layered_dags() {
    for seed in 0..20u64 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 60;
        let objective = if seed % 2 == 0 {
            Objective::Minimize
        } else {
            Objective::Maximize
        };
        let mut dag = EdgeWeightedDag::new(n, objective);
        dag.set_boundary(0, 0);
        for i in 1..n {
            if next() % 3 == 0 {
                dag.set_boundary(i, (next() % 50) as i64);
            }
            for j in i.saturating_sub(8)..i {
                if next() % 3 == 0 {
                    dag.add_edge(j, i, (next() % 21) as i64 - 10);
                }
            }
        }
        let run = dag.solve_cordon();
        assert_eq!(run.values, dag.solve_topological(), "seed {seed}");
        // Every state is finalized exactly once.
        let mut seen = vec![false; n];
        for frontier in &run.frontiers {
            for &s in frontier {
                assert!(!seen[s], "state {s} finalized twice");
                seen[s] = true;
            }
        }
        assert!(seen.into_iter().all(|x| x));
    }
}

#[test]
fn prefix_doubling_waste_is_bounded() {
    // Wasted probes never exceed useful probes plus one batch, for any
    // sentinel position.
    let n = 4096;
    for sentinel_at in [2usize, 3, 10, 100, 1000, 4096] {
        let (cordon, stats) = prefix_doubling_cordon(0, n, |lo, hi| {
            if (lo..=hi).contains(&(sentinel_at - 1)) {
                Some(sentinel_at)
            } else {
                None
            }
        });
        assert_eq!(cordon, sentinel_at);
        let useful = cordon - 1;
        assert!(
            stats.wasted <= useful + 1,
            "sentinel {sentinel_at}: wasted {} useful {useful}",
            stats.wasted
        );
    }
}

#[test]
fn tournament_tree_drains_in_lis_rounds() {
    let a = workloads_sequence();
    let keys: Vec<i64> = a.clone();
    let mut tree = TournamentTree::new(&keys, TieRule::TiesAreRecords);
    let lis = parallel_lis(&a);
    let mut rounds = 0;
    let mut total = 0;
    loop {
        let r = tree.extract_prefix_minima();
        if r.is_empty() {
            break;
        }
        rounds += 1;
        total += r.len();
    }
    assert_eq!(rounds, lis.length);
    assert_eq!(total, a.len());
}

fn workloads_sequence() -> Vec<i64> {
    parallel_dp::workloads::random_sequence(5_000, 1 << 20, 77)
}

#[test]
fn metrics_work_proxy_scales_near_linearly_for_glws() {
    // Doubling n should roughly double the parallel work proxy (within 3x),
    // supporting the O(n log n) work claim.
    let run = |n: usize| {
        let inst = parallel_dp::workloads::post_office_instance(n, 64, 9);
        let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
        parallel_convex_glws(&p).metrics.work_proxy()
    };
    let w1 = run(20_000);
    let w2 = run(40_000);
    assert!(w2 < w1 * 3, "work grew super-linearly: {w1} -> {w2}");
}
