//! Counting-allocator proof that the `SEQ_CUTOFF` sequential path is
//! allocation- and synchronization-free.
//!
//! `GrainHint::min_grain` returns the full loop length for loops below
//! `SEQ_CUTOFF`, which makes the rayon shim execute them as a single inline
//! grain.  This test pins the two properties that make that path a true fast
//! path: once scratch buffers have reached their high-water mark, a sub-grain
//! `collect_into_vec` round performs **zero** heap allocations, and it never
//! synchronizes with the pool (zero injector pushes, zero worker wakeups).
//!
//! Lives in its own integration-test binary (like `alloc_counting.rs`) so no
//! sibling test thread can allocate concurrently and pollute the counter.

use parallel_dp::parutils::{round_min_grain, with_threads, SEQ_CUTOFF};
use rayon::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` — every pointer/layout obligation is
// forwarded unchanged, and the counter bump has no effect on allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we forward
    // `layout` to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same `layout` the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (ptr from this
    // allocator, matching layout); all three arguments forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System` via our `alloc`, layout unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded
    // unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System` via our `alloc`, layout unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn seq_cutoff_path_is_allocation_and_synchronization_free() {
    let len = SEQ_CUTOFF - 1;
    let grain = round_min_grain(len);
    assert!(
        grain >= len,
        "a sub-cutoff loop must resolve to a single grain (got {grain} for {len})"
    );

    with_threads(8, || {
        let mut target: Vec<i64> = Vec::new();
        // Warm-up: grow the target to its high-water mark.
        (0..len)
            .into_par_iter()
            .with_min_len(grain)
            .map(|i| i as i64)
            .collect_into_vec(&mut target);
        assert_eq!(target.len(), len);

        // Let the freshly spawned workers finish their (allocating) thread
        // startup and park; the measured region below must only see the
        // calling thread's behavior.
        std::thread::sleep(std::time::Duration::from_millis(100));

        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let (pushes_before, wakeups_before) = rayon::dispatch_diagnostics();
        for round in 0..64i64 {
            (0..len)
                .into_par_iter()
                .with_min_len(round_min_grain(len))
                .map(|i| i as i64 + round)
                .collect_into_vec(&mut target);
        }
        let allocs_after = ALLOCATIONS.load(Ordering::Relaxed);
        let (pushes_after, wakeups_after) = rayon::dispatch_diagnostics();

        assert_eq!(target[0], 63);
        assert_eq!(
            allocs_after - allocs_before,
            0,
            "sub-cutoff rounds must not allocate"
        );
        assert_eq!(
            pushes_after - pushes_before,
            0,
            "sub-cutoff rounds must not push pool jobs"
        );
        assert_eq!(
            wakeups_after - wakeups_before,
            0,
            "sub-cutoff rounds must not wake workers"
        );
    });
}
