//! Tree-shape property tests for the work-efficient Tree-GLWS cordon
//! (Theorem 5.3): on every tree shape the workloads crate can generate, and
//! under both convex and concave transition costs, `HldTreeGlwsCordon` must
//! agree with the naive ancestor-scan oracle *and* the baseline depth-frontier
//! cordon on DP values and reconstructed best decisions — plus the work-bound
//! regression guard that pins the heavy-light version to near-linear work on
//! the shape where the baseline is quadratic.

use parallel_dp::prelude::*;
use parallel_dp::workloads;
use workloads::tree_height;

/// Convex transition cost: opening cost plus squared gap length.
fn convex_w(du: u64, dv: u64) -> i64 {
    let len = (dv - du) as i64;
    15 + len * len
}

/// Concave transition cost: capped-linear gap length (concave, saturating).
fn concave_w(du: u64, dv: u64) -> i64 {
    let len = dv - du;
    6 + 5 * len.min(11) as i64
}

/// Concave transition cost: integer square root of the gap length.
fn sqrt_w(du: u64, dv: u64) -> i64 {
    let len = dv - du;
    2 + len.isqrt() as i64
}

/// Every tree shape the generators produce, as `(name, parent)` pairs.
fn shapes(n: usize, seed: u64) -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("path", workloads::path_tree(n)),
        ("star", workloads::star_tree(n)),
        ("caterpillar", workloads::caterpillar_tree(n, n / 3, seed)),
        ("balanced", workloads::balanced_tree(n, 3)),
        (
            "random-attachment",
            workloads::random_attachment_tree(n, seed),
        ),
        ("random-biased", workloads::random_tree(n, 70, seed)),
    ]
}

fn check_agreement<W>(name: &str, parent: Vec<usize>, lens: &[u64], w: W, shape: CostShape)
where
    W: Fn(u64, u64) -> i64 + Sync + Copy,
{
    let height = tree_height(&parent);
    let inst = TreeGlwsInstance::new(parent, lens, 3, w, |d, u| d + (u % 4) as i64);
    let naive = naive_tree_glws(&inst);
    let baseline = parallel_tree_glws(&inst);
    let hld = parallel_tree_glws_hld(&inst, shape);
    assert_eq!(hld.d, naive.d, "{name}: values vs naive");
    assert_eq!(hld.best, naive.best, "{name}: decisions vs naive");
    assert_eq!(hld.d, baseline.d, "{name}: values vs baseline cordon");
    assert_eq!(
        hld.best, baseline.best,
        "{name}: decisions vs baseline cordon"
    );
    assert_eq!(
        hld.metrics.rounds as usize, height,
        "{name}: rounds == height"
    );
    assert_eq!(
        hld.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
        "{name}: identical depth frontiers"
    );
    // Shape-router property: whichever cordon the probe picks for this shape,
    // the routed run is indistinguishable from both alternatives on (d, best)
    // and on the round schedule — routing may only change wall clock/work.
    let auto = parallel_tree_glws_auto(&inst, shape);
    assert_eq!(auto.d, naive.d, "{name}: routed values vs naive");
    assert_eq!(auto.best, naive.best, "{name}: routed decisions vs naive");
    assert_eq!(
        auto.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
        "{name}: routed run keeps the depth frontiers"
    );
}

#[test]
fn hld_cordon_agrees_on_every_shape_with_convex_costs() {
    for seed in 0..3 {
        for (name, parent) in shapes(220, seed) {
            let lens = workloads::tree_edge_lengths(220, 4, seed + 50);
            check_agreement(name, parent, &lens, convex_w, CostShape::Convex);
        }
    }
}

#[test]
fn hld_cordon_agrees_on_every_shape_with_concave_costs() {
    for seed in 0..3 {
        for (name, parent) in shapes(220, seed) {
            let lens = workloads::tree_edge_lengths(220, 4, seed + 90);
            check_agreement(name, parent.clone(), &lens, concave_w, CostShape::Concave);
            check_agreement(name, parent, &lens, sqrt_w, CostShape::Concave);
        }
    }
}

/// The documented quadratic behaviour of the baseline: on an n-node path each
/// node rescans its whole ancestor chain, exactly n(n+1)/2 transition
/// evaluations.  A failing guard if anyone "optimizes" the baseline — it is
/// kept as the shape-oblivious oracle and ablation partner, not for speed.
#[test]
fn baseline_cordon_is_quadratic_on_a_path() {
    let n = 2_000usize;
    let parent = workloads::path_tree(n);
    let lens = vec![1u64; n + 1];
    let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
    let r = parallel_tree_glws(&inst);
    assert_eq!(r.metrics.edges_relaxed, (n * (n + 1) / 2) as u64);
}

/// Work-bound regression guard (the acceptance bar of the Theorem 5.3 issue):
/// on a 100k-node path the HLD cordon must match the sequential 1-D GLWS
/// oracle exactly and keep its measured work under `C · n · log n`, which is
/// asymptotically (and here concretely, by ~250×) below the baseline cordon's
/// analytic n(n+1)/2 rescan count asserted above.
#[test]
fn hld_work_is_near_linear_on_a_100k_path() {
    let n = 100_000usize;
    let parent = workloads::path_tree(n);
    let lens = workloads::tree_edge_lengths(n, 3, 17);
    let inst = TreeGlwsInstance::new(parent, &lens, 7, convex_w, |d, _| d);
    let hld = parallel_tree_glws_hld(&inst, CostShape::Convex);

    // On a path, Tree-GLWS is exactly the 1-D GLWS over the node distances:
    // the O(n log n) sequential Galil–Park algorithm is a feasible oracle at
    // this size (the naive ancestor scan would be 5·10^9 evaluations).
    let dist: Vec<u64> = inst.dist.clone();
    let oracle = sequential_convex_glws(&parallel_dp::glws::cost::ClosureCost::new(
        n,
        7,
        |j, i| convex_w(dist[j], dist[i]),
        |d, _| d,
    ));
    assert_eq!(hld.d, oracle.d, "HLD must match the sequential oracle");

    let log = (usize::BITS - n.leading_zeros()) as u64;
    let bound = 12 * n as u64 * log;
    assert!(
        hld.metrics.work_proxy() <= bound,
        "HLD work {} exceeds C·n·log n = {bound}",
        hld.metrics.work_proxy()
    );
    let baseline_analytic = (n as u64) * (n as u64 + 1) / 2;
    assert!(
        hld.metrics.work_proxy() * 100 < baseline_analytic,
        "HLD work {} is not asymptotically below the baseline's {}",
        hld.metrics.work_proxy(),
        baseline_analytic
    );
    assert_eq!(hld.metrics.rounds as usize, n, "a path has n depth levels");
}

/// Stall-guard coverage for the new instance, mirroring
/// `tests/engine_round_accounting.rs`: an impossible round budget must
/// surface the typed `StallError` with the shared message constants.
#[test]
fn hld_cordon_trips_the_typed_stall_guard() {
    use parallel_dp::core::{STALL_BUDGET_MSG, STALL_NO_PROGRESS_MSG};
    let parent = workloads::caterpillar_tree(300, 100, 5);
    let lens = workloads::tree_edge_lengths(300, 4, 5);
    let height = tree_height(&parent);
    let inst = TreeGlwsInstance::new(parent, &lens, 0, convex_w, |d, _| d);
    let err = CordonSolver::with_round_budget(height as u64 - 1)
        .try_run(HldTreeGlwsCordon::new(&inst, CostShape::Convex))
        .unwrap_err();
    match &err {
        StallError::BudgetExhausted {
            budget,
            states_finalized,
        } => {
            assert_eq!(*budget, height as u64 - 1);
            assert!(*states_finalized > 0, "earlier rounds did settle nodes");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert!(err.to_string().contains(STALL_BUDGET_MSG));
    assert!(!err.to_string().contains(STALL_NO_PROGRESS_MSG));
    // The exact height succeeds and reports one round per level.
    let run = CordonSolver::with_round_budget(height as u64)
        .run(HldTreeGlwsCordon::new(&inst, CostShape::Convex));
    assert_eq!(run.metrics.rounds as usize, height);
}

/// The shape probe's routing decisions on the unambiguous generator shapes,
/// plus the facade solver driving a router-produced `EitherCordon` directly —
/// the integration path `CordonSolver::run(tree_glws_cordon_auto(..))`.
#[test]
fn shape_router_decisions_and_solver_integration() {
    let n = 220usize;
    assert_eq!(
        choose_tree_glws_strategy(&TreeShapeStats::new(&workloads::path_tree(n))),
        TreeGlwsStrategy::Hld,
        "a path must route to the work-efficient cordon"
    );
    assert_eq!(
        choose_tree_glws_strategy(&TreeShapeStats::new(&workloads::star_tree(n))),
        TreeGlwsStrategy::Baseline,
        "a star must route to the ancestor-rescan cordon"
    );
    assert_eq!(
        choose_tree_glws_strategy(&TreeShapeStats::new(&workloads::balanced_tree(n, 3))),
        TreeGlwsStrategy::Baseline,
        "a balanced tree must route to the ancestor-rescan cordon"
    );

    // Both router outcomes through the facade solver, checked against naive.
    for parent in [workloads::path_tree(n), workloads::balanced_tree(n, 3)] {
        let lens = workloads::tree_edge_lengths(n, 4, 77);
        let height = tree_height(&parent);
        let inst = TreeGlwsInstance::new(parent, &lens, 3, convex_w, |d, _| d);
        let naive = naive_tree_glws(&inst);
        let run = CordonSolver::new().run(tree_glws_cordon_auto(&inst, CostShape::Convex));
        let (d, best) = run.output;
        assert_eq!(d, naive.d, "solver-driven routed cordon: values");
        assert_eq!(best, naive.best, "solver-driven routed cordon: decisions");
        assert_eq!(run.metrics.rounds as usize, height, "rounds == height");
    }
}

/// Heavier cross-shape stress at sizes where the baseline's O(n·h) is already
/// painful on deep shapes; `#[ignore]`-gated locally, run by the CI
/// `--include-ignored` step.
#[test]
#[ignore = "tree stress sweep; run via cargo test -- --ignored (CI's stress step does)"]
fn hld_stress_sweep_on_large_trees() {
    // Deep: caterpillar with a 10k spine (baseline does ~10^8 rescans).
    let n = 20_000usize;
    let parent = workloads::caterpillar_tree(n, n / 2, 11);
    let lens = workloads::tree_edge_lengths(n, 3, 11);
    let inst = TreeGlwsInstance::new(parent, &lens, 1, convex_w, |d, u| d + (u % 2) as i64);
    let base = parallel_tree_glws(&inst);
    let hld = parallel_tree_glws_hld(&inst, CostShape::Convex);
    assert_eq!(hld.d, base.d);
    assert_eq!(hld.best, base.best);
    assert!(hld.metrics.work_proxy() * 10 < base.metrics.work_proxy());

    // Shallow: random attachment at 50k, convex and concave.
    let n = 50_000usize;
    let parent = workloads::random_attachment_tree(n, 23);
    let lens = workloads::tree_edge_lengths(n, 4, 23);
    let convex = TreeGlwsInstance::new(parent.clone(), &lens, 0, convex_w, |d, _| d);
    let base = parallel_tree_glws(&convex);
    let hld = parallel_tree_glws_hld(&convex, CostShape::Convex);
    assert_eq!(hld.d, base.d);
    assert_eq!(hld.best, base.best);
    let concave = TreeGlwsInstance::new(parent, &lens, 0, concave_w, |d, _| d);
    let base = parallel_tree_glws(&concave);
    let hld = parallel_tree_glws_hld(&concave, CostShape::Concave);
    assert_eq!(hld.d, base.d);
    assert_eq!(hld.best, base.best);
}
