//! Stress test for the threaded pool: a 100k-node path tree driven through
//! the work-efficient HLD Tree-GLWS cordon at 8 threads.
//!
//! A path is the adversarial shape for the driver: 100 000 rounds with a
//! one-node frontier each, so the run exercises the round loop, the grain
//! policy's stay-sequential decision, the envelope pushes and the reused
//! round scratch 100 000 times under an oversubscribed pool.
//!
//! Gated behind `#[ignore]` because it is a stress test, not a correctness
//! gate.  Run it explicitly with:
//!
//! ```text
//! RAYON_NUM_THREADS=8 cargo test --release --test threaded_stress -- --ignored
//! ```
//!
//! (the test also pins the pool itself via `with_threads(8)`, so plain
//! `cargo test -- --ignored` works too).

use parallel_dp::parutils::with_threads;
use parallel_dp::treedp::{parallel_tree_glws_hld, CostShape, TreeGlwsInstance};
use parallel_dp::workloads;

#[test]
#[ignore = "stress test; run with --ignored (see module docs)"]
fn hld_tree_glws_on_a_100k_path_under_8_threads() {
    let n = 100_000;
    let parent = workloads::path_tree(n);
    let lens = workloads::tree_edge_lengths(n, 10, 21);
    let inst = TreeGlwsInstance::new(parent, &lens, 0, |du, dv| (dv - du) as i64, |d, _| d);

    let stressed = with_threads(8, || parallel_tree_glws_hld(&inst, CostShape::Convex));
    assert_eq!(stressed.metrics.rounds, n as u64, "one round per path node");
    assert_eq!(stressed.metrics.max_frontier(), 1);

    // Bit-identical to the inline single-threaded run.
    let inline = with_threads(1, || parallel_tree_glws_hld(&inst, CostShape::Convex));
    assert_eq!(stressed.d, inline.d);
    assert_eq!(stressed.best, inline.best);
}
