//! Round-accounting tests for the unified phase-parallel engine: the paper's
//! round-count theorems asserted *through the shared driver*, the per-round
//! frontier telemetry every parallel algorithm now reports, and the typed
//! stall guard.

use parallel_dp::prelude::*;
use parallel_dp::workloads;

/// frontier_sizes must be one entry per round and sum to the states the
/// driver finalized.
fn assert_frontier_telemetry_consistent(m: &Metrics) {
    assert_eq!(m.frontier_sizes.len() as u64, m.rounds);
    assert_eq!(m.frontier_sizes.iter().sum::<u64>(), m.states_finalized);
    assert!(m.frontier_sizes.iter().all(|&f| f > 0));
}

#[test]
fn lis_rounds_equal_lis_length_through_the_driver() {
    // Theorem 3.1: the cordon LIS finishes in exactly k rounds.
    for &(n, k) in &[(2_000usize, 1usize), (2_000, 37), (2_000, 2_000)] {
        let a = workloads::lis_with_length(n, k, 5);
        let run = CordonSolver::new().run(LisCordon::new(&a));
        let (_, length) = run.output;
        assert_eq!(length as usize, k);
        assert_eq!(run.metrics.rounds as usize, k);
        assert_frontier_telemetry_consistent(&run.metrics);
        assert_eq!(run.metrics.states_finalized as usize, n);
    }
}

#[test]
fn convex_glws_rounds_equal_segment_count_through_the_driver() {
    // Lemma 4.5: the convex cordon runs in exactly as many rounds as the
    // number of segments (post offices) in the optimal solution.
    for &(n, k) in &[(3_000usize, 3usize), (3_000, 57)] {
        let inst = workloads::post_office_instance(n, k, 1);
        let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
        let result = parallel_convex_glws(&p);
        assert_eq!(result.decision_depth(n), k, "optimal segment count");
        assert_eq!(result.metrics.rounds as usize, k, "rounds == #segments");
        assert_eq!(result.metrics.rounds as usize, result.perfect_depth());
        assert_frontier_telemetry_consistent(&result.metrics);
    }
}

#[test]
fn every_parallel_algorithm_reports_per_round_frontiers() {
    // LIS
    let a = workloads::random_sequence(500, 1 << 16, 3);
    assert_frontier_telemetry_consistent(&parallel_lis(&a).metrics);

    // Sparse LCS
    let pairs: Vec<MatchPair> = workloads::lcs_pairs_with(400, 23, 4)
        .into_iter()
        .map(|(i, j)| MatchPair { i, j })
        .collect();
    assert_frontier_telemetry_consistent(&parallel_sparse_lcs(&pairs).metrics);

    // Convex GLWS
    let inst = workloads::post_office_instance(600, 9, 5);
    let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
    assert_frontier_telemetry_consistent(&parallel_convex_glws(&p).metrics);

    // Concave GLWS
    let c = ConcaveGapCost::new(300, 20, 3);
    assert_frontier_telemetry_consistent(&parallel_concave_glws(&c).metrics);

    // k-GLWS: one round per layer, each frontier spanning a full layer.
    let kg = parallel_kglws(&p, 4);
    assert_eq!(kg.metrics.rounds, 4);
    assert_frontier_telemetry_consistent(&kg.metrics);

    // GAP: anti-diagonal frontiers of the grid.
    let (s1, s2) = workloads::gap_strings(40, 35, 4, 7);
    let gi = convex_gap_instance(&s1, &s2, 4, 1, 1);
    let gr = parallel_gap(&gi);
    assert_eq!(gr.metrics.rounds as usize, 40 + 35);
    assert_frontier_telemetry_consistent(&gr.metrics);

    // Tree-GLWS: one frontier per depth level — for both the baseline cordon
    // and the work-efficient heavy-light one, which share their frontiers.
    let parent = workloads::random_tree(300, 60, 9);
    let lens = workloads::tree_edge_lengths(300, 4, 9);
    let ti = TreeGlwsInstance::new(
        parent,
        &lens,
        0,
        |du, dv| {
            let len = (dv - du) as i64;
            12 + len * len
        },
        |d, _| d,
    );
    let tree_base = parallel_tree_glws(&ti);
    assert_frontier_telemetry_consistent(&tree_base.metrics);
    let tree_hld = parallel_tree_glws_hld(&ti, CostShape::Convex);
    assert_frontier_telemetry_consistent(&tree_hld.metrics);
    assert_eq!(
        tree_hld.metrics.frontier_sizes,
        tree_base.metrics.frontier_sizes
    );

    // OBST: one frontier per diagonal.
    let w = workloads::positive_weights(60, 1000, 2);
    let ob = parallel_obst(&w);
    assert_eq!(ob.metrics.rounds, 59);
    assert_frontier_telemetry_consistent(&ob.metrics);

    // OAT through the same interval cordon.
    assert_frontier_telemetry_consistent(&parallel_oat(&w).metrics);

    // Valley OAT (Theorem 5.1): frontiers are combines per weight-doubling
    // round, summing to n - 1 total combines in O(log W) rounds.
    let vw = workloads::positive_weights(500, 1 << 12, 2);
    let valley = parallel_oat_valley(&vw);
    assert_frontier_telemetry_consistent(&valley.metrics);
    assert_eq!(valley.metrics.states_finalized, 499);
    assert!(
        valley.metrics.rounds <= oat_height_bound(&vw) as u64,
        "valley rounds {} exceed the Lemma 5.1 budget",
        valley.metrics.rounds
    );

    // The explicit-DAG reference.
    use parallel_dp::core::{EdgeWeightedDag, Objective};
    let mut dag = EdgeWeightedDag::new(50, Objective::Maximize);
    let seq = workloads::random_sequence(50, 100, 11);
    for i in 0..50 {
        dag.set_boundary(i, 1);
        for j in 0..i {
            if seq[j] < seq[i] {
                dag.add_edge(j, i, 1);
            }
        }
    }
    assert_frontier_telemetry_consistent(&dag.solve_cordon().metrics);
}

#[test]
fn kglws_frontier_sizes_are_the_layer_widths() {
    let inst = workloads::post_office_instance(100, 5, 8);
    let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
    let r = parallel_kglws(&p, 3);
    // Layer k' holds the states k'..=n: n + 1 - k' of them.
    assert_eq!(r.metrics.frontier_sizes, vec![100, 99, 98]);
}

#[test]
fn cordon_solver_budget_override_trips_the_typed_stall_guard() {
    let a = workloads::lis_with_length(1_000, 50, 2);
    // 50 rounds are needed; a budget of 10 must fail with the typed error.
    let err = CordonSolver::with_round_budget(10)
        .try_run(LisCordon::new(&a))
        .unwrap_err();
    match err {
        StallError::BudgetExhausted { budget, .. } => assert_eq!(budget, 10),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    // A budget of exactly 50 succeeds.
    let run = CordonSolver::with_round_budget(50).run(LisCordon::new(&a));
    assert_eq!(run.metrics.rounds, 50);
}

#[test]
fn hld_tree_cordon_budget_equals_height_through_the_driver() {
    // The work-efficient Tree-GLWS keeps the baseline's round theorem:
    // exactly one round per depth level, and the driver's budget guard is
    // armed with the height.
    let parent = workloads::caterpillar_tree(400, 120, 2);
    let lens = workloads::tree_edge_lengths(400, 3, 2);
    let inst = TreeGlwsInstance::new(
        parent,
        &lens,
        0,
        |du, dv| {
            let len = (dv - du) as i64;
            9 + len * len
        },
        |d, _| d,
    );
    let run = CordonSolver::new().run(HldTreeGlwsCordon::new(&inst, CostShape::Convex));
    assert_frontier_telemetry_consistent(&run.metrics);
    let err = CordonSolver::with_round_budget(run.metrics.rounds / 2)
        .try_run(HldTreeGlwsCordon::new(&inst, CostShape::Convex))
        .unwrap_err();
    match err {
        StallError::BudgetExhausted { budget, .. } => assert_eq!(budget, run.metrics.rounds / 2),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn valley_oat_cordon_budget_and_router_through_the_driver() {
    // The valley cordon arms the driver's budget guard with its doubling
    // bound (<= log2(total weight) + O(1) rounds, far below n - 1); the
    // solver must run it — and the size-routed EitherCordon — like any
    // other instance.
    let w = workloads::valley_weights(3_000, 1 << 14, 4);
    let run = CordonSolver::new().run(ValleyOatCordon::new(&w));
    assert_frontier_telemetry_consistent(&run.metrics);
    assert_eq!(run.metrics.states_finalized, 2_999);
    assert!(
        run.metrics.rounds < 60,
        "rounds {} not polylog",
        run.metrics.rounds
    );
    assert_eq!(run.output.cost, interval_dp_oat(&w));

    let routed = CordonSolver::new().run(oat_cordon_auto(&w));
    assert_eq!(routed.output, run.output);
    assert_eq!(routed.metrics.rounds, run.metrics.rounds);

    // An impossible budget trips the typed stall guard, not a panic.
    let err = CordonSolver::with_round_budget(1)
        .try_run(ValleyOatCordon::new(&w))
        .unwrap_err();
    match err {
        StallError::BudgetExhausted { budget, .. } => assert_eq!(budget, 1),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn stall_errors_render_the_shared_message_constants() {
    use parallel_dp::core::{STALL_BUDGET_MSG, STALL_NO_PROGRESS_MSG};
    let no_progress = StallError::NoProgress {
        rounds_completed: 7,
    };
    assert!(no_progress.to_string().contains(STALL_NO_PROGRESS_MSG));
    let budget = StallError::BudgetExhausted {
        budget: 3,
        states_finalized: 12,
    };
    assert!(budget.to_string().contains(STALL_BUDGET_MSG));
}

#[test]
fn solver_metrics_match_the_wrapper_functions() {
    // CordonSolver::run and the per-problem wrappers drive the same engine,
    // so their telemetry must agree exactly.
    let a = workloads::random_sequence(800, 1 << 12, 13);
    let via_wrapper = parallel_lis(&a);
    let via_solver = CordonSolver::new().run(LisCordon::new(&a));
    assert_eq!(via_solver.metrics, via_wrapper.metrics);
    let (d, length) = via_solver.output;
    assert_eq!(d, via_wrapper.d);
    assert_eq!(length, via_wrapper.length);
}
