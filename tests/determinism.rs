//! Thread-count determinism of the phase-parallel engine.
//!
//! The cordon algorithms are deterministic by construction: every round's
//! frontier is a pure function of the instance, and the rayon shim's reduce
//! combiners merge grains in index order with tie rules matching `std::iter`
//! (see `crates/compat/README.md`).  These tests pin that contract end to
//! end — the engine must produce bit-identical results whether the threaded
//! pool is off (1 thread, fully inline) or on with any worker count.

use parallel_dp::parutils::with_threads;
use parallel_dp::treedp::{
    parallel_tree_glws_hld, sequential_tree_glws, CostShape, TreeGlwsInstance,
};
use parallel_dp::workloads;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn lis_results_are_bit_identical_across_thread_counts() {
    let a = workloads::lis_with_length(20_000, 150, 3);
    let baseline = with_threads(1, || parallel_dp::lis::parallel_lis(&a));
    for t in THREAD_COUNTS {
        let run = with_threads(t, || parallel_dp::lis::parallel_lis(&a));
        assert_eq!(run.d, baseline.d, "LIS d[] differs at {t} threads");
        assert_eq!(run.length, baseline.length);
        assert_eq!(
            run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
            "LIS round schedule differs at {t} threads"
        );
    }
    assert_eq!(
        baseline.length,
        parallel_dp::lis::sequential_lis(&a).length,
        "parallel LIS disagrees with the sequential baseline"
    );
}

#[test]
fn gap_results_are_bit_identical_across_thread_counts() {
    let (a, b) = workloads::gap_strings(220, 180, 4, 5);
    let inst = parallel_dp::gap::convex_gap_instance(&a, &b, 3, 1, 1);
    let baseline = with_threads(1, || parallel_dp::gap::parallel_gap(&inst));
    for t in THREAD_COUNTS {
        let run = with_threads(t, || parallel_dp::gap::parallel_gap(&inst));
        assert_eq!(run.d, baseline.d, "GAP grid differs at {t} threads");
        assert_eq!(run.cost, baseline.cost);
        assert_eq!(
            run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
            "GAP round schedule differs at {t} threads"
        );
    }
    assert_eq!(
        baseline.cost,
        parallel_dp::gap::sequential_gap(&inst).cost,
        "parallel GAP disagrees with the sequential baseline"
    );
}

#[test]
fn packed_gap_results_are_bit_identical_across_thread_counts() {
    let (a, b) = workloads::gap_strings(220, 180, 4, 5);
    let inst = parallel_dp::gap::convex_gap_instance(&a, &b, 3, 1, 1);
    let baseline = with_threads(1, || parallel_dp::gap::parallel_gap_packed(&inst));
    for t in THREAD_COUNTS {
        let run = with_threads(t, || parallel_dp::gap::parallel_gap_packed(&inst));
        assert_eq!(run.d, baseline.d, "packed GAP grid differs at {t} threads");
        assert_eq!(run.cost, baseline.cost);
        assert_eq!(
            run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
            "packed GAP round schedule differs at {t} threads"
        );
    }
    // The packed cordon must agree with the wavefront cordon cell for cell
    // while using no more rounds (Theorem 5.2: rounds = effective depth).
    let wave = with_threads(1, || parallel_dp::gap::parallel_gap(&inst));
    assert_eq!(baseline.d, wave.d, "packed and wavefront GAP grids differ");
    assert!(
        baseline.metrics.rounds <= wave.metrics.rounds,
        "packed GAP must not use more rounds than the wavefront"
    );
}

#[test]
fn packed_gap_is_bit_identical_across_speculative_block_counts() {
    // The block-parallel speculative sweep must be invisible: any forced
    // block count (1 = pure sequential sweep, n = one row per block) at any
    // thread count reproduces the auto-blocked run bit for bit — same grid,
    // same round schedule (rounds == effective depth, pinned in the gap
    // crate's unit tests), same frontier sizes.
    let (a, b) = workloads::gap_strings(220, 180, 4, 5);
    let inst = parallel_dp::gap::convex_gap_instance(&a, &b, 3, 1, 1);
    let baseline = with_threads(1, || parallel_dp::gap::parallel_gap_packed(&inst));
    for t in THREAD_COUNTS {
        for blocks in [1usize, 2, 8, usize::MAX] {
            let run = with_threads(t, || {
                parallel_dp::gap::parallel_gap_packed_with_blocks(&inst, blocks)
            });
            assert_eq!(
                run.d, baseline.d,
                "packed GAP grid differs at {t} threads, {blocks} blocks"
            );
            assert_eq!(run.cost, baseline.cost);
            assert_eq!(
                run.metrics.rounds, baseline.metrics.rounds,
                "round count differs at {t} threads, {blocks} blocks"
            );
            assert_eq!(
                run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
                "round schedule differs at {t} threads, {blocks} blocks"
            );
        }
    }
}

#[test]
fn valley_oat_results_are_bit_identical_across_thread_counts() {
    use parallel_dp::oat::{garsia_wachs, parallel_oat_auto, parallel_oat_valley};
    // Profiles covering both router arms and all parallel-phase behaviours:
    // random (many valleys), valley/mountain (two long slopes), equal
    // weights (pure sequential-sweep rounds).
    let profiles = [
        ("random", workloads::positive_weights(6_000, 1 << 16, 7)),
        ("valley", workloads::valley_weights(6_000, 1 << 16, 8)),
        ("mountain", workloads::mountain_weights(6_000, 1 << 16, 9)),
        ("equal", workloads::equal_weights(4_096, 5)),
    ];
    for (name, w) in profiles {
        let baseline = with_threads(1, || parallel_oat_valley(&w));
        for t in THREAD_COUNTS {
            let run = with_threads(t, || parallel_oat_valley(&w));
            assert_eq!(
                run.depths, baseline.depths,
                "{name}: depths differ at {t} threads"
            );
            assert_eq!(run.cost, baseline.cost);
            assert_eq!(
                run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
                "{name}: round schedule differs at {t} threads"
            );
            let routed = with_threads(t, || parallel_oat_auto(&w));
            assert_eq!(routed.depths, baseline.depths, "{name}: router diverges");
        }
        let seq = garsia_wachs(&w);
        assert_eq!(
            baseline.cost, seq.cost,
            "{name}: valley OAT disagrees with Garsia–Wachs"
        );
    }
}

#[test]
fn auto_routed_tree_glws_is_bit_identical_across_thread_counts() {
    use parallel_dp::treedp::parallel_tree_glws_auto;
    // One shape per router outcome: deep (HLD cordon) and shallow (baseline).
    let deep = workloads::caterpillar_tree(4_000, 2_000, 21);
    let shallow = workloads::balanced_tree(4_000, 8);
    for (name, parent) in [("caterpillar", deep), ("balanced", shallow)] {
        let n = parent.len() - 1;
        let lens = workloads::tree_edge_lengths(n, 50, 10);
        let inst = TreeGlwsInstance::new(parent, &lens, 0, |du, dv| (dv - du) as i64, |d, _| d);
        let baseline = with_threads(1, || parallel_tree_glws_auto(&inst, CostShape::Convex));
        for t in THREAD_COUNTS {
            let run = with_threads(t, || parallel_tree_glws_auto(&inst, CostShape::Convex));
            assert_eq!(run.d, baseline.d, "{name}: d[] differs at {t} threads");
            assert_eq!(
                run.best, baseline.best,
                "{name}: decisions differ at {t} threads"
            );
            assert_eq!(
                run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
                "{name}: round schedule differs at {t} threads"
            );
        }
        let seq = sequential_tree_glws(&inst);
        assert_eq!(baseline.d, seq.d, "{name}: auto router disagrees with seq");
    }
}

#[test]
fn hld_tree_glws_results_are_bit_identical_across_thread_counts() {
    let n = 8_000;
    let parent = workloads::random_tree(n, 3, 9);
    let lens = workloads::tree_edge_lengths(n, 50, 10);
    let inst = TreeGlwsInstance::new(parent, &lens, 0, |du, dv| (dv - du) as i64, |d, _| d);
    let baseline = with_threads(1, || parallel_tree_glws_hld(&inst, CostShape::Convex));
    for t in THREAD_COUNTS {
        let run = with_threads(t, || parallel_tree_glws_hld(&inst, CostShape::Convex));
        assert_eq!(
            run.d, baseline.d,
            "HLD Tree-GLWS d[] differs at {t} threads"
        );
        assert_eq!(
            run.best, baseline.best,
            "HLD Tree-GLWS decisions differ at {t} threads"
        );
        assert_eq!(
            run.metrics.frontier_sizes, baseline.metrics.frontier_sizes,
            "HLD Tree-GLWS round schedule differs at {t} threads"
        );
    }
    let seq = sequential_tree_glws(&inst);
    assert_eq!(
        baseline.d, seq.d,
        "parallel HLD Tree-GLWS disagrees with the sequential baseline"
    );
}
