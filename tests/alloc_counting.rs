//! Counting-allocator proof of the zero-allocation round loop.
//!
//! After the arena/scratch work, a cordon round on the single-threaded inline
//! path must perform no heap allocation once warm-up has grown every buffer to
//! its high-water mark: OBST writes into flat preallocated triangular tables,
//! and the driver pre-sizes the metrics frontier log via
//! `MetricsCollector::reserve_rounds`.  This test drives an `ObstCordon`
//! exactly the way `run_phase_parallel` does and asserts the allocation
//! counter does not move during steady-state rounds.
//!
//! The test pins the pool to one thread (`with_threads(1)`): the threaded
//! fork path boxes jobs per fork by design, so the zero-allocation contract
//! is specific to inline execution (small frontiers and `threads = 1`).
//! It lives in its own integration-test binary so no sibling test thread can
//! allocate concurrently and pollute the counter.

use parallel_dp::core::PhaseParallel;
use parallel_dp::obst::{knuth_obst, ObstCordon};
use parallel_dp::parutils::{with_threads, MetricsCollector};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` — every pointer/layout obligation is
// forwarded unchanged, and the counter bump has no effect on allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we forward
    // `layout` to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same `layout` the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (ptr from this
    // allocator, matching layout); all three arguments forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System` via our `alloc`, layout unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded
    // unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System` via our `alloc`, layout unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn obst_rounds_allocate_nothing_after_warm_up() {
    let n = 256;
    let weights: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101 + 1).collect();
    let expected = knuth_obst(&weights).cost;

    with_threads(1, || {
        let metrics = MetricsCollector::new();
        let mut cordon = ObstCordon::new(&weights);
        // Mirror the driver: pre-size the frontier log for the full budget.
        let budget = cordon.round_budget().expect("obst declares a budget") as usize;
        metrics.reserve_rounds(budget);

        // Warm-up: a few rounds to fault in any lazy state.
        let mut rounds = 0;
        while !cordon.is_done() && rounds < 8 {
            let frontier = cordon.round(&metrics);
            metrics.record_round(frontier as u64);
            rounds += 1;
        }
        assert!(
            !cordon.is_done(),
            "instance too small to measure steady state"
        );

        // Steady state: every remaining round must leave the counter alone.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        while !cordon.is_done() {
            let frontier = cordon.round(&metrics);
            metrics.record_round(frontier as u64);
            rounds += 1;
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "cordon rounds allocated {} times over {} steady-state rounds",
            after - before,
            rounds - 8
        );

        // The run still computes the right answer.
        let tables = cordon.finish();
        assert_eq!(tables.cost(), expected);
        assert_eq!(metrics.snapshot().rounds, budget as u64);
    });
}
