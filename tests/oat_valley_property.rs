//! Cross-validation of the polylog-round valley OAT (Theorem 5.1) against
//! both sequential oracles on random and adversarial weight profiles, plus
//! the Lemma 5.1 round-count assertion that separates it from the interval
//! cordon's `n - 1` rounds.

use parallel_dp::oat::{
    garsia_wachs, interval_dp_oat, oat_height_bound, parallel_oat, parallel_oat_auto,
    parallel_oat_valley, OAT_VALLEY_MIN_N,
};
use parallel_dp::workloads;

/// A depth sequence is realizable as an ordered full binary tree iff the
/// classic stack merge reduces it to a single root of depth 0.
fn alphabetically_realizable(depths: &[u32]) -> bool {
    let mut stack: Vec<u32> = Vec::new();
    for &d in depths {
        let mut cur = d;
        while stack.last() == Some(&cur) {
            if cur == 0 {
                return false;
            }
            stack.pop();
            cur -= 1;
        }
        stack.push(cur);
    }
    stack == [0]
}

fn check_profile(name: &str, w: &[u64]) {
    let valley = parallel_oat_valley(w);
    let gw = garsia_wachs(w);
    assert_eq!(
        valley.cost, gw.cost,
        "{name}: cost disagrees with Garsia–Wachs"
    );
    let recomputed: u64 = w
        .iter()
        .zip(&valley.depths)
        .map(|(&a, &d)| a * d as u64)
        .sum();
    assert_eq!(
        recomputed, valley.cost,
        "{name}: depths must attain the cost"
    );
    assert!(
        alphabetically_realizable(&valley.depths),
        "{name}: depth vector is not realizable as an ordered tree"
    );
    assert_eq!(
        valley.height,
        *valley.depths.iter().max().unwrap(),
        "{name}: height must be max depth"
    );
    assert!(
        valley.height <= oat_height_bound(w),
        "{name}: height {} exceeds the Lemma 5.1 bound",
        valley.height
    );
    // Theorem 5.1's point: rounds are bounded by the same O(log W) quantity
    // as the tree height (the combine threshold doubles every round), not by
    // n - 1 like the interval cordon.
    assert!(
        valley.metrics.rounds <= oat_height_bound(w) as u64,
        "{name}: rounds {} exceed the Lemma 5.1 budget {}",
        valley.metrics.rounds,
        oat_height_bound(w)
    );
    assert_eq!(valley.metrics.states_finalized, (w.len() - 1) as u64);
}

#[test]
fn valley_oat_matches_oracles_on_random_profiles() {
    for seed in 0..4 {
        for &n in &[100usize, 500, 2_000] {
            let w = workloads::positive_weights(n, 1 << 16, seed);
            check_profile("random", &w);
            // Quadratic oracle only at the smaller sizes.
            if n <= 500 {
                assert_eq!(parallel_oat_valley(&w).cost, interval_dp_oat(&w));
            }
        }
        let s = workloads::skewed_weights(800, 1 << 20, 64, seed);
        check_profile("skewed", &s);
    }
}

#[test]
fn valley_oat_matches_oracles_on_adversarial_profiles() {
    check_profile("equal", &workloads::equal_weights(2_048, 9));
    check_profile("equal-odd", &workloads::equal_weights(1_777, 3));
    check_profile("exponential", &workloads::exponential_weights(600, 2, 40));
    check_profile("exponential-3", &workloads::exponential_weights(600, 3, 25));
    check_profile("valley", &workloads::valley_weights(3_000, 1 << 16, 11));
    check_profile("mountain", &workloads::mountain_weights(3_000, 1 << 16, 11));
}

#[test]
fn valley_rounds_are_polylog_where_the_interval_cordon_is_linear() {
    let w = workloads::positive_weights(4_000, 1 << 16, 5);
    let valley = parallel_oat_valley(&w);
    let interval = parallel_oat(&w);
    assert_eq!(valley.cost, interval.cost);
    assert_eq!(
        interval.metrics.rounds, 3_999,
        "interval cordon: one round per diagonal"
    );
    assert!(
        valley.metrics.rounds < 100,
        "valley cordon rounds {} must be polylog, not linear",
        valley.metrics.rounds
    );
}

#[test]
fn auto_router_agrees_with_both_arms_around_the_cutoff() {
    for n in [
        2usize,
        OAT_VALLEY_MIN_N - 1,
        OAT_VALLEY_MIN_N,
        OAT_VALLEY_MIN_N + 1,
        300,
    ] {
        let w = workloads::positive_weights(n, 1 << 10, 17);
        let auto = parallel_oat_auto(&w);
        assert_eq!(auto.cost, interval_dp_oat(&w), "n {n}");
        let recomputed: u64 = w
            .iter()
            .zip(&auto.depths)
            .map(|(&a, &d)| a * d as u64)
            .sum();
        assert_eq!(recomputed, auto.cost, "n {n}");
    }
}
