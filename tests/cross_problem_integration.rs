//! Cross-crate integration tests: exercise the public facade end-to-end on the
//! workload generators, and check the relationships between problems that the
//! paper uses (LIS <-> LCS reduction, GLWS <-> k-GLWS, OAT <-> interval DP,
//! post-office workloads <-> Lemma 4.5 round counts).

use parallel_dp::prelude::*;
use parallel_dp::workloads;

#[test]
fn lis_lcs_reduction_round_trip() {
    // LIS of a sequence == LCS of the sequence with its sorted self (Sec. 3).
    let a = workloads::random_sequence(400, 1_000_000, 9);
    let lis = parallel_lis(&a);
    let mut sorted = a.clone();
    sorted.sort_unstable();
    let a32: Vec<i64> = a.clone();
    let lcs = parallel_lcs_of(&a32, &sorted);
    assert_eq!(lis.length, lcs.length);
}

#[test]
fn generated_lis_length_matches_request_and_rounds() {
    for &(n, k) in &[(2_000usize, 1usize), (2_000, 40), (2_000, 2_000)] {
        let a = workloads::lis_with_length(n, k, 5);
        let r = parallel_lis(&a);
        assert_eq!(r.length as usize, k);
        assert_eq!(r.metrics.rounds as usize, k);
        assert_eq!(sequential_lis(&a).length as usize, k);
    }
}

#[test]
fn post_office_workload_has_planted_depth() {
    for &(n, k) in &[(3_000usize, 3usize), (3_000, 60)] {
        let inst = workloads::post_office_instance(n, k, 1);
        let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
        let par = parallel_convex_glws(&p);
        let seq = sequential_convex_glws(&p);
        assert_eq!(par.d, seq.d);
        assert_eq!(par.decision_depth(n), k, "optimal office count");
        assert_eq!(par.metrics.rounds as usize, k, "Lemma 4.5: rounds == k");
    }
}

#[test]
fn kglws_at_optimal_k_matches_unconstrained_glws() {
    let inst = workloads::post_office_instance(800, 7, 3);
    let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
    let free = parallel_convex_glws(&p);
    let k = free.decision_depth(800);
    let fixed = parallel_kglws(&p, k);
    assert_eq!(fixed.total_cost(), free.d[800]);
    // Fewer clusters than optimal can only cost more.
    if k > 1 {
        assert!(parallel_kglws(&p, k - 1).total_cost() >= free.d[800]);
    }
}

#[test]
fn lcs_workload_pairs_reproduce_requested_k() {
    for &(l, k) in &[(5_000usize, 17usize), (5_000, 500)] {
        let pairs: Vec<MatchPair> = workloads::lcs_pairs_with(l, k, 8)
            .into_iter()
            .map(|(i, j)| MatchPair { i, j })
            .collect();
        let par = parallel_sparse_lcs(&pairs);
        let seq = sequential_sparse_lcs(&pairs);
        assert_eq!(par.length as usize, k);
        assert_eq!(seq.length as usize, k);
        assert_eq!(par.metrics.rounds as usize, k);
    }
}

#[test]
fn oat_and_obst_interval_dps_agree() {
    // The OAT interval oracle and the OBST crate's Knuth DP compute the same
    // quantity on leaf weights.
    let w = workloads::positive_weights(300, 10_000, 6);
    assert_eq!(interval_dp_oat(&w), knuth_obst(&w).cost);
    assert_eq!(garsia_wachs(&w).cost, parallel_obst(&w).cost);
}

#[test]
fn gap_of_identical_strings_is_free_and_lcs_is_full() {
    let (a, _) = workloads::gap_strings(300, 300, 4, 2);
    let inst = convex_gap_instance(&a, &a, 5, 1, 1);
    assert_eq!(parallel_gap(&inst).cost, 0);
    assert_eq!(parallel_lcs_of(&a, &a).length as usize, a.len());
}

#[test]
fn tree_glws_on_a_path_equals_sequence_glws() {
    let n = 300usize;
    let parent: Vec<usize> = (0..=n).map(|v| v.saturating_sub(1)).collect();
    let lens = vec![1u64; n + 1];
    let tree = TreeGlwsInstance::new(
        parent,
        &lens,
        0,
        |du, dv| {
            let len = (dv - du) as i64;
            50 + len * len
        },
        |d, _| d,
    );
    let tree_res = parallel_tree_glws(&tree);
    let line = ConvexGapCost::new(n, 50, 0, 1);
    let line_res = parallel_convex_glws(&line);
    assert_eq!(tree_res.d, line_res.d);
}

#[test]
fn explicit_dag_cordon_reproduces_lis_frontiers() {
    // Theorem 2.1 cross-check: the generic cordon driver on the explicit LIS
    // DAG finalizes states in the same rounds as the specialized algorithm.
    use parallel_dp::core::{EdgeWeightedDag, Objective};
    let a = workloads::random_sequence(80, 1000, 4);
    let mut dag = EdgeWeightedDag::new(a.len(), Objective::Maximize);
    for i in 0..a.len() {
        dag.set_boundary(i, 1);
        for j in 0..i {
            if a[j] < a[i] {
                dag.add_edge(j, i, 1);
            }
        }
    }
    let run = dag.solve_cordon();
    let lis = parallel_lis(&a);
    assert_eq!(run.rounds() as u32, lis.length);
    let values: Vec<u32> = run.values.iter().map(|&v| v as u32).collect();
    assert_eq!(values, lis.d);
}

#[test]
fn with_threads_controls_the_pool() {
    let inst = workloads::post_office_instance(20_000, 100, 4);
    let p = PostOfficeProblem::new(inst.coords, inst.open_cost);
    let multi = parallel_convex_glws(&p);
    let single = with_threads(1, || parallel_convex_glws(&p));
    assert_eq!(multi.d, single.d);
    assert_eq!(multi.metrics.rounds, single.metrics.rounds);
}
